//! Vendored, dependency-free subset of `criterion`.
//!
//! This environment has no network access, so the real `criterion` crate
//! cannot be fetched. This crate implements the API surface the workspace's
//! benches use — [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — over plain
//! `std::time::Instant` wall-clock measurement.
//!
//! Each benchmark warms up briefly, then records `sample_size` samples and
//! prints `min` / `median` / `max` per-iteration times in criterion's
//! familiar `time: [low mid high]` format. Statistical analysis (outlier
//! detection, regression against saved baselines) is out of scope.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The vendored harness always
/// times the routine per batch element, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per sample.
    SmallInput,
    /// Large inputs: one per sample.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Timing loop handed to `bench_function` closures.
pub struct Bencher {
    samples: usize,
    /// Per-sample mean iteration times, filled by `iter`/`iter_batched`.
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            recorded: Vec::with_capacity(samples),
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run for ~50ms or 3 iterations, whichever is longer.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters > 1_000_000 {
                break;
            }
        }
        // Pick an iteration count per sample aiming at ~10ms per sample.
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000)
                as u32
        };
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.recorded.push(start.elapsed() / iters_per_sample);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples recorded per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark if it matches the CLI filter.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches(&full_name) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.criterion.report(&full_name, &mut bencher.recorded);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards everything after `--` plus `--bench`; treat
        // the first non-flag argument as a substring filter, like criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Applies CLI configuration (kept for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        if self.matches(&name) {
            let mut bencher = Bencher::new(self.default_sample_size);
            f(&mut bencher);
            self.report(&name, &mut bencher.recorded);
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn report(&self, name: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let max = samples[samples.len() - 1];
        println!(
            "{name:<50} time: [{} {} {}]",
            format_duration(min),
            format_duration(median),
            format_duration(max)
        );
    }
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.recorded.len(), 5);
    }

    #[test]
    fn iter_batched_records_samples() {
        let mut b = Bencher::new(4);
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.recorded.len(), 4);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(3)).ends_with("ms"));
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).bench_function("b", |b| {
                ran = true;
                b.iter(|| 0)
            });
            g.finish();
        }
        assert!(ran);
    }
}
