//! Vendored, dependency-free subset of `rayon`.
//!
//! This environment has no network access, so the real `rayon` crate cannot
//! be fetched. This crate implements the slice of rayon's API the workspace
//! uses — [`join`], [`scope`], `par_iter()` / `par_chunks()` /
//! `into_par_iter()` with `map` / `collect` / `sum` / `for_each` — on top of
//! `std::thread::scope`, with two properties the AppealNet evaluation engine
//! depends on:
//!
//! 1. **Determinism.** Work is split into contiguous index ranges and results
//!    are concatenated in index order, so every reduction observes the same
//!    operand order regardless of thread scheduling. Two runs of the same
//!    parallel pipeline produce identical results.
//! 2. **Graceful degradation.** When the input is smaller than the chunking
//!    threshold (`with_min_len`) or only one thread is available, everything
//!    runs inline on the calling thread with zero spawn overhead.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (if set) or
//! `std::thread::available_parallelism()`.

use std::ops::Range;
use std::sync::OnceLock;

/// Number of worker threads parallel operations may use.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// `a` runs on the calling thread; `b` runs on a scoped worker thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// A scope in which tasks can be spawned that borrow from the environment.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Creates a scope, runs `f` in it and waits for all spawned tasks.
///
/// Panics from spawned tasks propagate when the scope exits, like rayon.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task in the scope. The task receives the scope so it can
    /// spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Splits `0..n` into at most `current_num_threads()` contiguous ranges of at
/// least `min_len` items each.
fn split_ranges(n: usize, min_len: usize) -> Vec<Range<usize>> {
    let threads = current_num_threads();
    let chunk = n.div_ceil(threads).max(min_len.max(1));
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Core executor: applies `run` to contiguous index ranges (in parallel when
/// worthwhile) and concatenates the per-range outputs in index order.
fn execute<R, F>(n: usize, min_len: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> Vec<R> + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let ranges = split_ranges(n, min_len);
    if ranges.len() <= 1 {
        return run(0..n);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(|| run(r))).collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon worker panicked"));
        }
        out
    })
}

/// Ordered collection target of a parallel iterator (rayon's
/// `FromParallelIterator`, restricted to ordered buffers).
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in index order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// A mapped parallel iterator over an indexable source.
///
/// Created by `ParallelIterator::map`; consumed by `collect`, `sum`,
/// `reduce` or `for_each`. All reductions happen in index order, so they are
/// deterministic even for non-associative operations (e.g. float addition).
pub struct Map<I, F> {
    source: I,
    f: F,
}

/// Types that can hand out their `index`-th item to a worker thread.
///
/// Borrowing sources (slices, chunks) tie `Item` to the *data* lifetime they
/// already hold, not to `&self`, so mapped items can outlive the iterator
/// adapters themselves.
pub trait IndexedSource: Sync + Sized {
    /// Item handed to the mapping closure.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Returns `true` if the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `index`-th item.
    fn get(&self, index: usize) -> Self::Item;
}

/// A parallel iterator over an [`IndexedSource`].
pub struct ParIter<I> {
    source: I,
    min_len: usize,
}

impl<I: IndexedSource> ParIter<I> {
    /// Sets the minimum number of items processed per thread. Inputs smaller
    /// than this run inline on the calling thread — the chunking-policy hook
    /// used to keep tiny (smoke-scale) workloads overhead-free.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps each item through `f`.
    pub fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(I::Item) -> R + Sync,
        R: Send,
    {
        Map { source: self, f }
    }

    /// Runs `f` on every item (parallel, order of side effects unspecified).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I::Item) + Sync,
    {
        let src = &self.source;
        execute(src.len(), self.min_len, |range| {
            for i in range {
                f(src.get(i));
            }
            Vec::<()>::new()
        });
    }
}

impl<I, F, R> Map<ParIter<I>, F>
where
    I: IndexedSource,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    /// Materializes the mapped items in index order.
    fn run(self) -> Vec<R> {
        let src = &self.source.source;
        let f = &self.f;
        execute(src.len(), self.source.min_len, |range| {
            range.map(|i| f(src.get(i))).collect()
        })
    }

    /// Collects the mapped items, preserving index order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered(self.run())
    }

    /// Sums the mapped items in index order (deterministic for floats).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.run().into_iter().sum()
    }

    /// Reduces the mapped items in index order, starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

// --- Sources -----------------------------------------------------------

/// A slice source (`par_iter`).
pub struct SliceSource<'data, T: Sync>(&'data [T]);

impl<'data, T: Sync> IndexedSource for SliceSource<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, index: usize) -> &'data T {
        &self.0[index]
    }
}

/// A chunked slice source (`par_chunks`).
pub struct ChunksSource<'data, T: Sync> {
    data: &'data [T],
    chunk: usize,
}

impl<'data, T: Sync> IndexedSource for ChunksSource<'data, T> {
    type Item = &'data [T];

    fn len(&self) -> usize {
        self.data.len().div_ceil(self.chunk)
    }

    fn get(&self, index: usize) -> &'data [T] {
        let start = index * self.chunk;
        let end = (start + self.chunk).min(self.data.len());
        &self.data[start..end]
    }
}

/// A `usize` range source (`(0..n).into_par_iter()`).
pub struct RangeSource(Range<usize>);

impl IndexedSource for RangeSource {
    type Item = usize;

    fn len(&self) -> usize {
        self.0.end.saturating_sub(self.0.start)
    }

    fn get(&self, index: usize) -> usize {
        self.0.start + index
    }
}

/// An owned `Vec` source (`vec.into_par_iter()`); items are cloned out per
/// worker, which the workspace only uses for cheap (`Copy`-ish) items.
pub struct VecSource<T: Sync + Clone>(Vec<T>);

impl<T: Sync + Clone + Send> IndexedSource for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, index: usize) -> T {
        self.0[index].clone()
    }
}

// --- Entry-point traits (rayon's prelude) ------------------------------

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter;

    /// Borrowing parallel iterator over the collection.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParIter<SliceSource<'data, T>>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            source: SliceSource(self),
            min_len: 1,
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParIter<SliceSource<'data, T>>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            source: SliceSource(self.as_slice()),
            min_len: 1,
        }
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Consuming parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParIter<RangeSource>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: RangeSource(self),
            min_len: 1,
        }
    }
}

impl<T: Sync + Clone + Send> IntoParallelIterator for Vec<T> {
    type Iter = ParIter<VecSource<T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: VecSource(self),
            min_len: 1,
        }
    }
}

/// `par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of `chunk_size` items.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter {
            source: ChunksSource {
                data: self,
                chunk: chunk_size,
            },
            min_len: 1,
        }
    }
}

/// Rayon-style glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn sum_is_deterministic_and_correct() {
        let v: Vec<f64> = (0..5_000).map(|i| (i as f64).sqrt()).collect();
        let a: f64 = v.par_iter().map(|&x| x).sum();
        let b: f64 = v.par_iter().map(|&x| x).sum();
        let seq: f64 = v.iter().sum();
        assert_eq!(a, b, "parallel sum must be deterministic");
        assert_eq!(a, seq, "index-order reduction must match sequential");
    }

    #[test]
    fn par_chunks_covers_everything_once() {
        let v: Vec<usize> = (0..103).collect();
        let chunks: Vec<Vec<usize>> = v.par_chunks(10).map(|c| c.to_vec()).collect();
        assert_eq!(chunks.len(), 11);
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, v);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn with_min_len_forces_inline_execution() {
        // min_len >= n means a single range, processed on this thread.
        let v = vec![1, 2, 3];
        let out: Vec<i32> = v.par_iter().with_min_len(100).map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scope_spawn_writes_disjoint_slots() {
        let mut slots = [0usize; 8];
        scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i * 3);
            }
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn reduce_in_index_order() {
        let v: Vec<u32> = (1..=5).collect();
        let product = v.par_iter().map(|&x| x).reduce(|| 1, |a, b| a * b);
        assert_eq!(product, 120);
    }

    #[test]
    fn for_each_visits_all_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let v: Vec<usize> = (0..1000).collect();
        v.par_iter().for_each(|&x| {
            counter.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 499_500);
    }
}
