//! Vendored, dependency-free subset of `rayon`.
//!
//! This environment has no network access, so the real `rayon` crate cannot
//! be fetched. This crate implements the slice of rayon's API the workspace
//! uses — [`join`], [`scope`], `par_iter()` / `par_chunks()` /
//! `into_par_iter()` with `map` / `collect` / `sum` / `for_each` — on top of
//! a lazily started **persistent worker pool**, with three properties the
//! AppealNet evaluation engine depends on:
//!
//! 1. **Determinism.** Work is split into contiguous index ranges and results
//!    are concatenated in index order, so every reduction observes the same
//!    operand order regardless of thread scheduling. Two runs of the same
//!    parallel pipeline produce identical results.
//! 2. **Graceful degradation.** When the input is smaller than the chunking
//!    threshold (`with_min_len`) or only one thread is available, everything
//!    runs inline on the calling thread with zero spawn overhead.
//! 3. **Worker persistence.** `current_num_threads() - 1` named worker
//!    threads are spawned once, on the first parallel operation, and live
//!    for the rest of the process. Thread-local state on a worker — most
//!    importantly the kernel scratch arenas in `appeal_tensor` — survives
//!    across parallel calls, which is what extends the serving engine's
//!    zero-allocation steady state to spawned GEMM row bands and sharded
//!    batch workers.
//!
//! Tasks are queued into one shared injector; a thread waiting for its
//! scope/join to finish **helps execute queued tasks** instead of blocking,
//! so nested scopes cannot deadlock and the caller participates in its own
//! fan-out (caller + pool = `current_num_threads()` runnable lanes, never
//! more — the pool also caps total parallelism where the old transient-spawn
//! design could oversubscribe with nested regions). Panics in spawned tasks
//! are captured and propagated when the owning scope exits, like rayon.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (if set) or
//! `std::thread::available_parallelism()`.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Number of worker threads parallel operations may use.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// A queued unit of work. Closures borrowing scope-local data are
/// lifetime-erased to `'static` when enqueued; soundness comes from every
/// scope waiting for its own task count to reach zero before returning (see
/// [`ScopeData`] and the wait-guard in [`scope`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the injector queue, the workers and every waiter.
struct PoolShared {
    /// The global FIFO injector. Coarse tasks (row bands, batch shards) make
    /// the single lock uncontended in practice.
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed **and** when a scope's last task
    /// finishes; workers and scope-waiters both sleep on it.
    cv: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    /// Number of persistent worker threads (0 on a single-thread config —
    /// then everything runs inline and no threads are ever spawned).
    workers: usize,
}

/// The process-wide pool, spawned lazily on the first parallel operation.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = current_num_threads().saturating_sub(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        });
        for i in 0..workers {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(&sh))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, workers }
    })
}

/// Body of a persistent worker: pop a job, run it, repeat forever. Jobs
/// never unwind (spawn wraps them in `catch_unwind`), so a worker lives for
/// the life of the process and its thread-local state (kernel scratch
/// arenas) persists across parallel calls.
fn worker_loop(shared: &PoolShared) {
    let mut guard = shared.queue.lock().expect("pool queue poisoned");
    loop {
        if let Some(job) = guard.pop_front() {
            drop(guard);
            job();
            guard = shared.queue.lock().expect("pool queue poisoned");
        } else {
            guard = shared.cv.wait(guard).expect("pool queue poisoned");
        }
    }
}

fn push_job(job: Job) {
    let sh = &pool().shared;
    sh.queue.lock().expect("pool queue poisoned").push_back(job);
    sh.cv.notify_all();
}

/// Per-scope completion state. `pending` counts spawned-but-unfinished
/// tasks; the first captured panic is stashed and re-thrown when the scope
/// exits.
struct ScopeData {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeData {
    fn new() -> Self {
        Self {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }

    /// Marks one task finished and wakes waiters if it was the last. The
    /// lock round-trip before notifying pairs with the waiter's
    /// check-under-lock, so no wakeup can be lost.
    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let sh = &pool().shared;
            drop(sh.queue.lock().expect("pool queue poisoned"));
            sh.cv.notify_all();
        }
    }

    /// Waits until every task spawned on this scope has finished, executing
    /// queued jobs (of any scope) while waiting instead of blocking — this
    /// is what makes nested scopes deadlock-free and lets the caller
    /// participate in its own fan-out.
    fn wait(&self) {
        let sh = &pool().shared;
        loop {
            if self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let mut q = sh.queue.lock().expect("pool queue poisoned");
            if let Some(job) = q.pop_front() {
                drop(q);
                job();
                continue;
            }
            if self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            drop(sh.cv.wait(q).expect("pool queue poisoned"));
        }
    }
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
///
/// `a` runs on the calling thread; `b` runs on a pool worker (or inline
/// when only one thread is configured). Panics from `b` propagate to the
/// caller once both sides have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || pool().workers == 0 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut rb_slot: Option<RB> = None;
    let ra = scope(|s| {
        let slot = &mut rb_slot;
        s.spawn(move |_| *slot = Some(b()));
        a()
    });
    (ra, rb_slot.expect("rayon::join worker produced no result"))
}

/// A scope in which tasks can be spawned that borrow from the environment.
///
/// `data == None` is the inline mode used when the pool has no workers:
/// spawned tasks run immediately on the calling thread.
pub struct Scope<'scope, 'env: 'scope> {
    data: Option<Arc<ScopeData>>,
    _marker: PhantomData<&'scope mut &'env ()>,
}

/// Creates a scope, runs `f` in it and waits for all spawned tasks — even
/// if `f` unwinds, so borrowed data stays valid for every queued task.
///
/// Panics from spawned tasks propagate when the scope exits, like rayon.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    if pool().workers == 0 {
        let s = Scope {
            data: None,
            _marker: PhantomData,
        };
        return f(&s);
    }
    let data = Arc::new(ScopeData::new());
    let s = Scope {
        data: Some(Arc::clone(&data)),
        _marker: PhantomData,
    };
    /// Waits for the scope's tasks on drop, so an unwinding scope body
    /// cannot free data that queued tasks still borrow.
    struct WaitGuard<'a>(&'a ScopeData);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.0.wait();
        }
    }
    let guard = WaitGuard(&data);
    let result = f(&s);
    drop(guard);
    if let Some(payload) = data.panic.lock().expect("scope panic slot poisoned").take() {
        resume_unwind(payload);
    }
    result
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task in the scope. The task receives the scope so it can
    /// spawn further tasks; it runs on a pool worker or on any thread
    /// currently waiting for a scope (inline immediately when the pool has
    /// no workers).
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let data = match &self.data {
            None => return f(self),
            Some(data) => data,
        };
        data.pending.fetch_add(1, Ordering::AcqRel);
        let task_data = Arc::clone(data);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let task_scope: Scope<'scope, 'env> = Scope {
                data: Some(Arc::clone(&task_data)),
                _marker: PhantomData,
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&task_scope))) {
                let mut slot = task_data.panic.lock().expect("scope panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            drop(task_scope);
            task_data.finish_one();
        });
        // SAFETY (lifetime erasure): the job may borrow `'scope`/`'env`
        // data, but `scope` waits (via its drop guard) until `pending`
        // reaches zero before those borrows can expire, and the job itself
        // keeps the `ScopeData` alive through its own `Arc`.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        push_job(job);
    }
}

/// Splits `0..n` into at most `current_num_threads()` contiguous ranges of at
/// least `min_len` items each.
fn split_ranges(n: usize, min_len: usize) -> Vec<Range<usize>> {
    let threads = current_num_threads();
    let chunk = n.div_ceil(threads).max(min_len.max(1));
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Core executor: applies `run` to contiguous index ranges (in parallel when
/// worthwhile) and concatenates the per-range outputs in index order.
///
/// The first range runs on the calling thread while pool workers take the
/// rest; the caller then helps drain the queue until its own ranges are
/// done, so caller + workers = `current_num_threads()` runnable lanes.
fn execute<R, F>(n: usize, min_len: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> Vec<R> + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let ranges = split_ranges(n, min_len);
    if ranges.len() <= 1 {
        return run(0..n);
    }
    let mut slots: Vec<Option<Vec<R>>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    scope(|s| {
        let run = &run;
        let mut jobs = ranges.into_iter().zip(slots.iter_mut());
        let first = jobs.next();
        for (range, slot) in jobs {
            s.spawn(move |_| *slot = Some(run(range)));
        }
        if let Some((range, slot)) = first {
            *slot = Some(run(range));
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(slot.expect("parallel range produced no result"));
    }
    out
}

/// Ordered collection target of a parallel iterator (rayon's
/// `FromParallelIterator`, restricted to ordered buffers).
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in index order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// A mapped parallel iterator over an indexable source.
///
/// Created by `ParallelIterator::map`; consumed by `collect`, `sum`,
/// `reduce` or `for_each`. All reductions happen in index order, so they are
/// deterministic even for non-associative operations (e.g. float addition).
pub struct Map<I, F> {
    source: I,
    f: F,
}

/// Types that can hand out their `index`-th item to a worker thread.
///
/// Borrowing sources (slices, chunks) tie `Item` to the *data* lifetime they
/// already hold, not to `&self`, so mapped items can outlive the iterator
/// adapters themselves.
pub trait IndexedSource: Sync + Sized {
    /// Item handed to the mapping closure.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// Returns `true` if the source has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `index`-th item.
    fn get(&self, index: usize) -> Self::Item;
}

/// A parallel iterator over an [`IndexedSource`].
pub struct ParIter<I> {
    source: I,
    min_len: usize,
}

impl<I: IndexedSource> ParIter<I> {
    /// Sets the minimum number of items processed per thread. Inputs smaller
    /// than this run inline on the calling thread — the chunking-policy hook
    /// used to keep tiny (smoke-scale) workloads overhead-free.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps each item through `f`.
    pub fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(I::Item) -> R + Sync,
        R: Send,
    {
        Map { source: self, f }
    }

    /// Runs `f` on every item (parallel, order of side effects unspecified).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I::Item) + Sync,
    {
        let src = &self.source;
        execute(src.len(), self.min_len, |range| {
            for i in range {
                f(src.get(i));
            }
            Vec::<()>::new()
        });
    }
}

impl<I, F, R> Map<ParIter<I>, F>
where
    I: IndexedSource,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    /// Materializes the mapped items in index order.
    fn run(self) -> Vec<R> {
        let src = &self.source.source;
        let f = &self.f;
        execute(src.len(), self.source.min_len, |range| {
            range.map(|i| f(src.get(i))).collect()
        })
    }

    /// Collects the mapped items, preserving index order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered(self.run())
    }

    /// Sums the mapped items in index order (deterministic for floats).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.run().into_iter().sum()
    }

    /// Reduces the mapped items in index order, starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

// --- Sources -----------------------------------------------------------

/// A slice source (`par_iter`).
pub struct SliceSource<'data, T: Sync>(&'data [T]);

impl<'data, T: Sync> IndexedSource for SliceSource<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, index: usize) -> &'data T {
        &self.0[index]
    }
}

/// A chunked slice source (`par_chunks`).
pub struct ChunksSource<'data, T: Sync> {
    data: &'data [T],
    chunk: usize,
}

impl<'data, T: Sync> IndexedSource for ChunksSource<'data, T> {
    type Item = &'data [T];

    fn len(&self) -> usize {
        self.data.len().div_ceil(self.chunk)
    }

    fn get(&self, index: usize) -> &'data [T] {
        let start = index * self.chunk;
        let end = (start + self.chunk).min(self.data.len());
        &self.data[start..end]
    }
}

/// A `usize` range source (`(0..n).into_par_iter()`).
pub struct RangeSource(Range<usize>);

impl IndexedSource for RangeSource {
    type Item = usize;

    fn len(&self) -> usize {
        self.0.end.saturating_sub(self.0.start)
    }

    fn get(&self, index: usize) -> usize {
        self.0.start + index
    }
}

/// An owned `Vec` source (`vec.into_par_iter()`); items are cloned out per
/// worker, which the workspace only uses for cheap (`Copy`-ish) items.
pub struct VecSource<T: Sync + Clone>(Vec<T>);

impl<T: Sync + Clone + Send> IndexedSource for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, index: usize) -> T {
        self.0[index].clone()
    }
}

// --- Entry-point traits (rayon's prelude) ------------------------------

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter;

    /// Borrowing parallel iterator over the collection.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParIter<SliceSource<'data, T>>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            source: SliceSource(self),
            min_len: 1,
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParIter<SliceSource<'data, T>>;

    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            source: SliceSource(self.as_slice()),
            min_len: 1,
        }
    }
}

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Consuming parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParIter<RangeSource>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: RangeSource(self),
            min_len: 1,
        }
    }
}

impl<T: Sync + Clone + Send> IntoParallelIterator for Vec<T> {
    type Iter = ParIter<VecSource<T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: VecSource(self),
            min_len: 1,
        }
    }
}

/// `par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of `chunk_size` items.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter {
            source: ChunksSource {
                data: self,
                chunk: chunk_size,
            },
            min_len: 1,
        }
    }
}

/// Rayon-style glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn sum_is_deterministic_and_correct() {
        let v: Vec<f64> = (0..5_000).map(|i| (i as f64).sqrt()).collect();
        let a: f64 = v.par_iter().map(|&x| x).sum();
        let b: f64 = v.par_iter().map(|&x| x).sum();
        let seq: f64 = v.iter().sum();
        assert_eq!(a, b, "parallel sum must be deterministic");
        assert_eq!(a, seq, "index-order reduction must match sequential");
    }

    #[test]
    fn par_chunks_covers_everything_once() {
        let v: Vec<usize> = (0..103).collect();
        let chunks: Vec<Vec<usize>> = v.par_chunks(10).map(|c| c.to_vec()).collect();
        assert_eq!(chunks.len(), 11);
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, v);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn with_min_len_forces_inline_execution() {
        // min_len >= n means a single range, processed on this thread.
        let v = vec![1, 2, 3];
        let out: Vec<i32> = v.par_iter().with_min_len(100).map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scope_spawn_writes_disjoint_slots() {
        let mut slots = [0usize; 8];
        scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i * 3);
            }
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    /// Best-effort request for a multi-thread pool: must run before the
    /// first rayon call in the process to take effect (the thread count is
    /// cached once). Every assertion below also holds in inline mode, so
    /// losing the race to another test is harmless.
    fn request_threads() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
    }

    #[test]
    fn workers_are_persistent_across_parallel_calls() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        request_threads();
        // With transient spawning the set of observed thread ids would grow
        // with every scope; a persistent pool (plus the caller) is bounded
        // by current_num_threads().
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..8 {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        ids.lock().unwrap().insert(std::thread::current().id());
                    });
                }
            });
        }
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct <= current_num_threads(),
            "saw {distinct} distinct threads for {} configured",
            current_num_threads()
        );
    }

    #[test]
    fn scope_propagates_spawned_panic() {
        request_threads();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom from task"));
            });
        }));
        assert!(caught.is_err(), "spawned panic must reach the scope caller");
        // The pool must remain usable after a panicked task.
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v[99], 100);
    }

    #[test]
    fn nested_scopes_complete_without_deadlock() {
        request_threads();
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    count.fetch_add(1, Ordering::Relaxed);
                    // Tasks spawn further tasks into the same scope.
                    s.spawn(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_runs_both_sides_under_pool() {
        request_threads();
        let (a, b) = join(
            || (0..1000).map(|i| i as u64).sum::<u64>(),
            || (0..1000).map(|i| (i * 2) as u64).sum::<u64>(),
        );
        assert_eq!(a, 499_500);
        assert_eq!(b, 999_000);
    }

    #[test]
    fn reduce_in_index_order() {
        let v: Vec<u32> = (1..=5).collect();
        let product = v.par_iter().map(|&x| x).reduce(|| 1, |a, b| a * b);
        assert_eq!(product, 120);
    }

    #[test]
    fn for_each_visits_all_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let v: Vec<usize> = (0..1000).collect();
        v.par_iter().for_each(|&x| {
            counter.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 499_500);
    }
}
