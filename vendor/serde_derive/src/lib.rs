//! Vendored, dependency-free subset of `serde_derive`.
//!
//! This environment has no network access, so the real `serde` /
//! `serde_derive` crates cannot be fetched. This proc-macro crate hand-parses
//! the derive input token stream (no `syn`/`quote`) and generates
//! implementations of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits, which target deterministic JSON text.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation);
//! * `#[serde(...)]` attributes are **not** supported and generics are
//!   rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or of one enum variant.
enum Fields {
    /// `struct Foo;`
    Unit,
    /// `struct Foo { a: A, b: B }`
    Named(Vec<String>),
    /// `struct Foo(A, B);`
    Tuple(usize),
}

/// The parsed derive input.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (JSON writer) for the annotated item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (marker impl) for the annotated item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// --- Parsing -----------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consumes tokens of one type expression, stopping after the `,` that ends
/// it (or at end of stream). Tracks `<`/`>` depth so commas inside generic
/// arguments are not mistaken for field separators.
fn skip_type(iter: &mut TokenIter) {
    let mut depth = 0i64;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    iter.next();
                    return;
                }
                _ => {}
            }
        }
        iter.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(id)) => {
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => {
                        return Err(format!("expected `:` after field `{id}`, found {other:?}"))
                    }
                }
                fields.push(id.to_string());
                skip_type(&mut iter);
            }
            Some(other) => return Err(format!("unexpected token in fields: {other:?}")),
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant: one more than the
/// number of top-level commas, unless the stream is empty.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i64;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in stream {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(id)) => {
                let fields = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream())?);
                        iter.next();
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(count_tuple_fields(g.stream()));
                        iter.next();
                        f
                    }
                    _ => Fields::Unit,
                };
                // Skip an explicit discriminant (`= expr`) and the trailing comma.
                skip_type(&mut iter);
                variants.push((id.to_string(), fields));
            }
            Some(other) => return Err(format!("unexpected token in enum body: {other:?}")),
        }
    }
}

// --- Code generation ---------------------------------------------------

/// `out.push_str("...");` with the given raw JSON text (escaped as needed).
fn push_lit(code: &mut String, text: &str) {
    code.push_str("out.push_str(");
    code.push_str(&format!("{text:?}"));
    code.push_str(");");
}

/// Statements serializing named fields (accessed via `prefix`) as a JSON object body.
fn named_body(code: &mut String, fields: &[String], prefix: &str) {
    code.push_str("out.push_str(\"{\");");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            code.push_str("out.push(',');");
        }
        push_lit(code, &format!("\"{f}\":"));
        code.push_str(&format!("serde::Serialize::write_json(&{prefix}{f}, out);"));
    }
    code.push_str("out.push_str(\"}\");");
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            match fields {
                Fields::Unit => push_lit(&mut body, "null"),
                Fields::Named(fs) => named_body(&mut body, fs, "self."),
                Fields::Tuple(1) => {
                    body.push_str("serde::Serialize::write_json(&self.0, out);");
                }
                Fields::Tuple(n) => {
                    body.push_str("out.push('[');");
                    for i in 0..*n {
                        if i > 0 {
                            body.push_str("out.push(',');");
                        }
                        body.push_str(&format!("serde::Serialize::write_json(&self.{i}, out);"));
                    }
                    body.push_str("out.push(']');");
                }
            }
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms.push_str(&format!("{name}::{vname} => {{"));
                        push_lit(&mut arms, &format!("\"{vname}\""));
                        arms.push_str("}\n");
                    }
                    Fields::Named(fs) => {
                        let pat = fs.join(", ");
                        arms.push_str(&format!("{name}::{vname} {{ {pat} }} => {{"));
                        push_lit(&mut arms, &format!("{{\"{vname}\":"));
                        named_body(&mut arms, fs, "");
                        arms.push_str("out.push_str(\"}\");}\n");
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        arms.push_str(&format!("{name}::{vname}({}) => {{", binds.join(", ")));
                        push_lit(&mut arms, &format!("{{\"{vname}\":"));
                        if *n == 1 {
                            arms.push_str("serde::Serialize::write_json(f0, out);");
                        } else {
                            arms.push_str("out.push('[');");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    arms.push_str("out.push(',');");
                                }
                                arms.push_str(&format!("serde::Serialize::write_json({b}, out);"));
                            }
                            arms.push_str("out.push(']');");
                        }
                        arms.push_str("out.push_str(\"}\");}\n");
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut String) {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{}}"
    )
}
