//! Vendored, dependency-free subset of `serde`.
//!
//! This environment has no network access, so the real `serde` crate cannot
//! be fetched. This crate provides the two traits the workspace derives —
//! [`Serialize`] and [`Deserialize`] — with an API shaped around what the
//! repository actually needs: deterministic JSON text output (consumed by the
//! vendored `serde_json::to_string`) for artifact types, reports and the
//! byte-identical determinism tests.
//!
//! Differences from real serde, by design:
//! * [`Serialize`] writes JSON directly instead of driving a generic
//!   `Serializer`; output is byte-deterministic for a given value.
//! * [`Deserialize`] is a marker trait (nothing in the workspace parses JSON
//!   back yet); deriving it compiles and records intent.
//! * `#[serde(...)]` attributes and generic types are not supported.

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON text.
///
/// Implementations must be deterministic: the same value always produces the
/// same bytes (the workspace's determinism tests compare serialized output).
pub trait Serialize {
    /// Appends the JSON representation of `self` to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: the JSON representation as a fresh `String`.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Marker for types whose serialized form is intended to round-trip.
///
/// The vendored shim does not implement parsing; the derive exists so the
/// workspace's `#[derive(Serialize, Deserialize)]` annotations compile
/// unchanged against real serde later.
pub trait Deserialize {}

/// Escapes and appends a string literal in JSON form.
fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_display_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_display_serialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_float_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's Display prints the shortest representation that
                    // round-trips, which is deterministic.
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no Infinity/NaN; match serde_json's lossy `null`.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_float_serialize!(f32, f64);

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Deserialize for String {}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_json_str(self.encode_utf8(&mut buf), out);
    }
}

impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {}

macro_rules! impl_tuple_serialize {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )+};
}

impl_tuple_serialize!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(k.as_ref(), out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize_to_json() {
        assert_eq!(3u32.to_json(), "3");
        assert_eq!((-4i64).to_json(), "-4");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f32.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("a\"b\\c\nd".to_json(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn containers_serialize_recursively() {
        assert_eq!(vec![1u8, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(7u8).to_json(), "7");
        assert_eq!(Option::<u8>::None.to_json(), "null");
        assert_eq!((1u8, "x").to_json(), r#"[1,"x"]"#);
        assert_eq!([0.5f64, 0.25].to_json(), "[0.5,0.25]");
    }
}
