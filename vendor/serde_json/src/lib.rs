//! Vendored, dependency-free subset of `serde_json`.
//!
//! Provides [`to_string`] / [`to_string_pretty`] / [`to_vec`] over the
//! vendored `serde::Serialize` trait. Output is deterministic: the same value
//! always produces the same bytes, which the workspace's determinism tests
//! rely on. Parsing is not implemented (nothing in the workspace reads JSON
//! back yet).

use std::fmt;

/// Serialization error.
///
/// The vendored serializer is infallible in practice; the error type exists
/// so call sites match real serde_json's `Result`-returning API.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T>(value: &T) -> Result<String>
where
    T: serde::Serialize + ?Sized,
{
    Ok(value.to_json())
}

/// Serializes `value` to JSON bytes.
pub fn to_vec<T>(value: &T) -> Result<Vec<u8>>
where
    T: serde::Serialize + ?Sized,
{
    Ok(value.to_json().into_bytes())
}

/// Serializes `value` to an indented JSON string (2-space indent).
pub fn to_string_pretty<T>(value: &T) -> Result<String>
where
    T: serde::Serialize + ?Sized,
{
    Ok(prettify(&value.to_json()))
}

/// Re-indents a compact JSON string. Walks the text tracking string literals
/// so structural characters inside strings are left alone.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&next) = chars.peek() {
                    if (c == '{' && next == '}') || (c == '[' && next == ']') {
                        out.push(next);
                        chars.next();
                        continue;
                    }
                }
                indent += 1;
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_string_matches_serialize() {
        assert_eq!(to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
    }

    #[test]
    fn pretty_indents_and_preserves_strings() {
        let pretty = to_string_pretty(&vec!["a{b".to_string(), "c".to_string()]).unwrap();
        assert_eq!(pretty, "[\n  \"a{b\",\n  \"c\"\n]");
    }

    #[test]
    fn to_vec_is_utf8_of_to_string() {
        let v = vec![0.5f32];
        assert_eq!(to_vec(&v).unwrap(), to_string(&v).unwrap().into_bytes());
    }
}
