//! The paper's motivating scenario (Section III): a robot vacuum cleaner
//! classifies obstacles with a small on-device network and appeals the odd
//! long-tail inputs (a cat in a strange pose, an occluded chair) to the cloud.
//!
//! This example trains an AppealNet system, deploys it as a serving
//! [`Engine`] with a real hardware/link model and the paper's Eq. 1 threshold
//! policy, streams a batch of "camera frames" through it and reports
//! accuracy, offload rate, energy and latency compared to edge-only and
//! cloud-only deployments.
//!
//! ```text
//! cargo run --release --example robot_vacuum
//! ```

use appeal_dataset::prelude::*;
use appeal_hw::prelude::*;
use appeal_models::prelude::*;
use appealnet_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // The robot's hardware: a mobile-class SoC talking to a cloud GPU over Wi-Fi.
    let hardware = SystemModel::new(
        DeviceSpec::mobile_soc(),
        DeviceSpec::cloud_gpu(),
        LinkSpec::wifi(),
    );
    println!("edge device : {}", hardware.edge);
    println!("cloud       : {}", hardware.cloud);
    println!("uplink      : {}\n", hardware.link);

    // Train the collaborative system on the GTSRB-like preset (fast, 43 classes —
    // stand-in for the obstacle classes the robot needs to recognize).
    let ctx = ExperimentContext::new(Fidelity::Smoke, 7);
    let preset = DatasetPreset::GtsrbLike;
    let pair = preset.spec(ctx.fidelity).generate();
    let prepared = PreparedExperiment::prepare_with_data(
        preset,
        &pair,
        ModelFamily::MobileNetLike,
        CloudMode::WhiteBox,
        &ctx,
    );
    println!(
        "trained: little acc = {:.1}%, big acc = {:.1}%",
        prepared.little_accuracy * 100.0,
        prepared.big_accuracy * 100.0
    );

    // Deploy: move the trained models into a serving engine behind the
    // paper's Eq. 1 rule with δ = 0.5.
    let threshold = 0.5;
    let models = prepared.models;
    let mut engine = Engine::builder()
        .appealnet(models.appealnet)
        .big(models.big)
        .policy(ThresholdPolicy::new(threshold)?)
        .hardware(hardware.clone())
        .build()?;

    // Stream the test split through the deployed engine as if it were the
    // robot's camera feed.
    let frames = pair.test.images();
    let labels = pair.test.labels();
    let responses = engine.classify_batch(frames)?;
    let correct = responses
        .iter()
        .zip(labels.iter())
        .filter(|(r, &y)| r.label == y)
        .count();
    let stats = engine.stats();

    println!(
        "\nstreamed {} camera frames through the deployed engine (δ = {threshold}):",
        stats.requests
    );
    println!(
        "  accuracy        : {:.2}%",
        correct as f64 / responses.len() as f64 * 100.0
    );
    println!(
        "  appealed to cloud: {} frames ({:.1}%)",
        stats.offloaded,
        stats.appealing_rate() * 100.0
    );
    println!(
        "  total energy    : {:.2} mJ   total latency: {:.2} ms",
        stats.total_cost.energy_mj, stats.total_cost.latency_ms
    );

    // Compare with the two trivial deployments.
    let n = responses.len() as f64;
    let edge_only = hardware.edge_only_cost(prepared.little_flops).scale(n);
    let cloud_only = hardware
        .cloud_only_cost(prepared.big_flops, prepared.input_bytes)
        .scale(n);
    println!("\nreference deployments for the same {n} frames:");
    println!(
        "  edge-only  : {:.2} mJ (accuracy would be {:.2}%)",
        edge_only.energy_mj,
        prepared.little_accuracy * 100.0
    );
    println!(
        "  cloud-only : {:.2} mJ (accuracy would be {:.2}%)",
        cloud_only.energy_mj,
        prepared.big_accuracy * 100.0
    );
    println!(
        "\nAppealNet keeps most frames on the robot, pays the cloud only for the\n\
         difficult ones, and lands between the two extremes on energy while\n\
         staying close to cloud-level accuracy."
    );
    Ok(())
}
