//! Serving: drive the engine with a stream of single requests and watch the
//! micro-batching and the routing policies at work.
//!
//! A deployed AppealNet system does not see test-split tensors — it sees one
//! request at a time (a camera frame, an API call). The [`Engine`] queues
//! single [`InferenceRequest`]s and flushes them through the sharded parallel
//! path once `max_batch` accumulate, so the caller gets batch throughput at a
//! single-request API. [`EngineStats`] makes the batching visible, and the
//! same stream is replayed under all three routing policies.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use appeal_dataset::prelude::*;
use appeal_hw::CostBudget;
use appeal_models::prelude::*;
use appealnet_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // Train a small system once; the models are then moved into engines.
    let ctx = ExperimentContext::new(Fidelity::Smoke, 2024);
    let preset = DatasetPreset::Cifar10Like;
    let pair = preset.spec(ctx.fidelity).generate();
    println!("training an AppealNet system on {preset} ...");
    let prepared = PreparedExperiment::prepare_with_data(
        preset,
        &pair,
        ModelFamily::MobileNetLike,
        CloudMode::WhiteBox,
        &ctx,
    );
    let artifacts = prepared.artifacts(ScoreKind::AppealNetQ).clone();
    let models = prepared.models;

    // Build the engine: two-head scorer, Eq. 1 threshold policy, micro-batch
    // capacity of 8 requests.
    let mut engine = Engine::builder()
        .appealnet(models.appealnet)
        .big(models.big)
        .policy(ThresholdPolicy::new(0.5)?)
        .max_batch(8)
        .build()?;

    // Stream the test split as single requests, as a deployed system would
    // receive them. The engine answers in bursts of 8.
    let frames = pair.test.images();
    let n = frames.shape()[0];
    println!("\nstreaming {n} single requests (micro-batch capacity 8):");
    let mut answered = 0usize;
    for i in 0..n {
        let request = InferenceRequest::new(i as u64, frames.select_rows(&[i]));
        if let Some(batch) = engine.submit(request)? {
            answered += batch.len();
            println!(
                "  flush #{:<2} answered requests {:>2}..{:<2}  (queue drained at capacity)",
                engine.stats().batches,
                batch.first().map(|r| r.id).unwrap_or_default(),
                batch.last().map(|r| r.id).unwrap_or_default(),
            );
        }
    }
    // Whatever is left in the queue is flushed explicitly.
    answered += engine.flush()?.len();
    let stats = *engine.stats();
    println!(
        "\nanswered {answered} requests in {} micro-batches (mean batch {:.1}):",
        stats.batches,
        stats.mean_batch_size()
    );
    println!(
        "  skipping rate {:.1}%  |  appealing rate {:.1}%  |  {:.0} req/s busy throughput",
        stats.skipping_rate() * 100.0,
        stats.appealing_rate() * 100.0,
        stats.throughput_rps()
    );
    println!(
        "  total cost: {:.2} MFLOPs, {:.2} mJ, {:.2} ms",
        stats.total_cost.flops as f64 / 1e6,
        stats.total_cost.energy_mj,
        stats.total_cost.latency_ms
    );

    // Replay under a calibrated policy: hit a 90% skipping rate chosen
    // offline from the evaluation artifacts (the Fig. 5 query, deployed).
    engine.reset_stats();
    engine.set_policy(Box::new(CalibratedPolicy::for_skipping_rate(
        &artifacts, 0.90,
    )?));
    engine.classify_batch(frames)?;
    println!(
        "\ncalibrated policy (target SR 90%): live SR = {:.1}%",
        engine.stats().skipping_rate() * 100.0
    );

    // Replay under a budget policy: appeals stop when the cloud budget is
    // spent, and every later request stays on the edge.
    engine.reset_stats();
    let budget = CostBudget::energy_mj(engine.offload_cost().energy_mj * 3.5);
    engine.set_policy(Box::new(BudgetPolicy::new(0.5, budget)?));
    engine.classify_batch(frames)?;
    println!(
        "budget policy (3 appeals' worth of energy): {} of {} requests appealed",
        engine.stats().offloaded,
        engine.stats().requests
    );
    Ok(())
}
