//! Server loop: concurrent clients against the threaded serving front-end.
//!
//! Where `examples/serving.rs` drives the [`Engine`] directly from one
//! thread, this example stands up the full front-end: a [`Server`] owning
//! the engine behind a bounded admission queue, a deadline-based
//! micro-batch coalescer, and cost-budget overload shedding. Four client
//! threads submit bursts concurrently; each gets a [`Ticket`] that resolves
//! to its answer (or a typed `Shed`/`Overloaded` error), and the shutdown
//! stats show what the coalescer and the shedder did.
//!
//! ```text
//! cargo run --release --example server_loop
//! ```

use appeal_hw::CostBudget;
use appeal_models::prelude::*;
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::prelude::*;
use std::thread;
use std::time::Duration;

const INPUT: [usize; 3] = [3, 12, 12];

fn main() -> Result<(), CoreError> {
    // A tiny untrained stack keeps the example fast; the front-end behaves
    // identically with trained weights (see examples/serving.rs for those).
    let mut rng = SeededRng::new(7);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, INPUT, 4).build(&mut rng);
    let big = ModelSpec::big(INPUT, 4).build(&mut rng);
    let engine = Engine::builder()
        .appealnet(TwoHeadNet::from_parts(little, &mut rng))
        .big(big)
        .policy(ThresholdPolicy::new(1.0)?) // δ = 1.0: everything appeals
        .max_batch(8)
        .build()?;

    // Budget ~6 cloud offloads per 16-request window: sustained appeal
    // traffic overruns it and the tail of each window is shed.
    let offload = engine.offload_cost();
    let server = Server::start(
        engine,
        ServerConfig {
            queue_capacity: 64,
            deadline: Duration::from_millis(2),
            shed: Some(ShedConfig {
                budget: CostBudget::energy_mj(offload.energy_mj * 6.0),
                window: 16,
            }),
            ..ServerConfig::default()
        },
    )?;

    println!("4 clients x 16 requests against one batcher thread:");
    let workers: Vec<_> = (0..4u32)
        .map(|client| {
            let handle = server.handle();
            thread::spawn(move || {
                let mut rng = SeededRng::new(100 + client as u64);
                let mut answered = 0u32;
                let mut shed = 0u32;
                for i in 0..16u64 {
                    let frame = Tensor::randn(&INPUT, &mut rng);
                    let ticket = match handle.submit(client, InferenceRequest::new(i, frame)) {
                        Ok(t) => t,
                        Err(CoreError::Overloaded { .. }) => continue,
                        Err(e) => panic!("submit failed: {e}"),
                    };
                    match ticket.wait() {
                        Ok(served) => {
                            answered += 1;
                            if i == 0 {
                                println!(
                                    "  client {client}: first answer label {} via {:?} after {:?}",
                                    served.response.label, served.response.route, served.waited
                                );
                            }
                        }
                        Err(CoreError::Shed) => shed += 1,
                        Err(e) => panic!("serving failed: {e}"),
                    }
                }
                (client, answered, shed)
            })
        })
        .collect();
    for worker in workers {
        let (client, answered, shed) = worker.join().expect("client thread");
        println!("  client {client}: {answered} answered, {shed} shed");
    }

    let (engine, stats) = server.shutdown()?;
    println!(
        "\nserver: {} offered | {} answered | {} shed ({:.0}%) | {} rejected",
        stats.offered,
        stats.answered,
        stats.shed,
        100.0 * stats.shed_rate(),
        stats.rejected,
    );
    println!(
        "flushes: {} size-triggered, {} deadline-triggered, {} drain | fairness index {:.3}",
        stats.size_flushes,
        stats.deadline_flushes,
        stats.drain_flushes,
        stats.fairness_index(),
    );
    println!(
        "engine afterwards: {} requests in {} batches, queue empty: {}",
        stats.engine.requests,
        stats.engine.batches,
        engine.pending() == 0
    );
    Ok(())
}
