//! Black-box deployment (paper Section IV-B): the cloud model is a vendor API
//! the edge developer cannot inspect, so AppealNet is trained with the oracle
//! objective of Eq. 10 — the cloud's loss term is assumed to be zero.
//!
//! The example trains black-box AppealNet systems for all three efficient
//! little-network families and reports the appealing rate needed to reach
//! several accuracy-improvement targets (the structure of Table II).
//!
//! ```text
//! cargo run --release --example blackbox_cloud
//! ```

use appeal_dataset::prelude::*;
use appeal_models::prelude::*;
use appealnet_core::experiments::table2;
use appealnet_core::prelude::*;

fn main() {
    let ctx = ExperimentContext::new(Fidelity::Smoke, 13);
    let preset = DatasetPreset::Cifar10Like;
    let pair = preset.spec(ctx.fidelity).generate();

    println!(
        "Black-box (oracle cloud) AppealNet on {}\n",
        preset.paper_name()
    );
    for family in ModelFamily::little_families() {
        let prepared =
            PreparedExperiment::prepare_with_data(preset, &pair, family, CloudMode::BlackBox, &ctx);
        let row = table2::run(&prepared);
        println!("{}", row.render_text());
    }
    println!(
        "A lower appealing rate at the same accuracy-improvement target means\n\
         fewer calls to the vendor's cloud API — less bandwidth, less energy,\n\
         and a smaller bill."
    );
}
