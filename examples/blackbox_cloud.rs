//! Black-box deployment (paper Section IV-B): the cloud model is a vendor API
//! the edge developer cannot inspect, so AppealNet is trained with the oracle
//! objective of Eq. 10 — the cloud's loss term is assumed to be zero.
//!
//! The example trains black-box AppealNet systems for all three efficient
//! little-network families and reports the appealing rate needed to reach
//! several accuracy-improvement targets (the structure of Table II). It then
//! deploys one system behind a [`BudgetPolicy`]: with a metered vendor API,
//! a hard cap on cloud spend per billing window is exactly what the serving
//! engine's budgeted routing provides.
//!
//! ```text
//! cargo run --release --example blackbox_cloud
//! ```

use appeal_dataset::prelude::*;
use appeal_hw::CostBudget;
use appeal_models::prelude::*;
use appealnet_core::experiments::table2;
use appealnet_core::prelude::*;

fn main() -> Result<(), CoreError> {
    let ctx = ExperimentContext::new(Fidelity::Smoke, 13);
    let preset = DatasetPreset::Cifar10Like;
    let pair = preset.spec(ctx.fidelity).generate();

    println!(
        "Black-box (oracle cloud) AppealNet on {}\n",
        preset.paper_name()
    );
    let mut deployable = None;
    for family in ModelFamily::little_families() {
        let prepared =
            PreparedExperiment::prepare_with_data(preset, &pair, family, CloudMode::BlackBox, &ctx);
        let row = table2::run(&prepared);
        println!("{}", row.render_text());
        if family == ModelFamily::MobileNetLike {
            deployable = Some(prepared.models);
        }
    }
    println!(
        "A lower appealing rate at the same accuracy-improvement target means\n\
         fewer calls to the vendor's cloud API — less bandwidth, less energy,\n\
         and a smaller bill.\n"
    );

    // Deploy the MobileNet-like system with a hard cap on cloud energy spend:
    // once the budget drains, every frame stays on the edge.
    let models = deployable.expect("MobileNetLike is among the little families");
    let mut engine = Engine::builder()
        .appealnet(models.appealnet)
        .big(models.big)
        .build()?;
    let budget = CostBudget::energy_mj(engine.offload_cost().energy_mj * 5.5);
    engine.set_policy(Box::new(BudgetPolicy::new(0.5, budget)?));
    engine.classify_batch(pair.test.images())?;
    let stats = engine.stats();
    println!(
        "budgeted deployment: {} of {} frames appealed before the cloud budget\n\
         drained (cap = 5 appeals' worth of energy); the rest stayed on the edge.",
        stats.offloaded, stats.requests
    );
    Ok(())
}
