//! The hardware-profiler workflow of the paper's Fig. 3: given a device
//! specification and a pool of efficient DNN candidates, pick the most capable
//! little model that fits the device, then (in the full flow) augment it with
//! the predictor head and train it jointly.
//!
//! ```text
//! cargo run --release --example hardware_profiling
//! ```

use appeal_hw::prelude::*;
use appeal_models::prelude::*;

fn main() {
    // The "efficient DNN pool" of Fig. 3: every little family at two widths.
    let input_shape = [3, 12, 12];
    let classes = 10;
    let mut pool = Vec::new();
    for family in ModelFamily::little_families() {
        pool.push(ModelSpec::little(family, input_shape, classes).with_width(0.5));
        pool.push(ModelSpec::little(family, input_shape, classes));
        pool.push(ModelSpec::little(family, input_shape, classes).with_width(2.0));
    }

    // Three deployment targets with very different budgets.
    let targets = [
        (DeviceSpec::edge_mcu(), 50.0),   // tight memory, generous latency
        (DeviceSpec::mobile_soc(), 0.05), // plenty of memory, tight latency
        (DeviceSpec::mobile_soc(), 5.0),  // the comfortable middle ground
    ];

    for (device, latency_budget_ms) in targets {
        let profiler = HardwareProfiler::new(device.clone(), latency_budget_ms);
        println!("device: {device}, latency budget: {latency_budget_ms} ms");
        println!(
            "  candidate                              MFLOPs   params(k)  latency(ms)  deployable"
        );
        for decision in profiler.profile_pool(&pool) {
            println!(
                "  {:<38} {:>7.3}  {:>9.1}  {:>11.4}  {}",
                decision.spec.to_string(),
                decision.cost.mflops(),
                decision.cost.kparams(),
                decision.latency_ms,
                if decision.deployable() { "yes" } else { "no" }
            );
        }
        match profiler.select(&pool) {
            Some(best) => println!(
                "  -> selected {} ({:.3} MFLOPs); AppealNet would now add the predictor head\n",
                best.spec,
                best.cost.mflops()
            ),
            None => println!("  -> no candidate fits this budget\n"),
        }
    }
}
