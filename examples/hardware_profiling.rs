//! The hardware-profiler workflow of the paper's Fig. 3: given a device
//! specification and a pool of efficient DNN candidates, pick the most capable
//! little model that fits the device, then (in the full flow) augment it with
//! the predictor head, train it jointly and drop it into the serving engine.
//! The last step is shown here with untrained weights: the profiled choice
//! slots straight into an [`EngineBuilder`] with a confidence-baseline scorer.
//!
//! ```text
//! cargo run --release --example hardware_profiling
//! ```

use appeal_hw::prelude::*;
use appeal_models::prelude::*;
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // The "efficient DNN pool" of Fig. 3: every little family at two widths.
    let input_shape = [3, 12, 12];
    let classes = 10;
    let mut pool = Vec::new();
    for family in ModelFamily::little_families() {
        pool.push(ModelSpec::little(family, input_shape, classes).with_width(0.5));
        pool.push(ModelSpec::little(family, input_shape, classes));
        pool.push(ModelSpec::little(family, input_shape, classes).with_width(2.0));
    }

    // Three deployment targets with very different budgets.
    let targets = [
        (DeviceSpec::edge_mcu(), 50.0),   // tight memory, generous latency
        (DeviceSpec::mobile_soc(), 0.05), // plenty of memory, tight latency
        (DeviceSpec::mobile_soc(), 5.0),  // the comfortable middle ground
    ];

    for (device, latency_budget_ms) in targets {
        let profiler = HardwareProfiler::new(device.clone(), latency_budget_ms)
            .expect("latency budgets above are positive");
        println!("device: {device}, latency budget: {latency_budget_ms} ms");
        println!(
            "  candidate                              MFLOPs   params(k)  latency(ms)  deployable"
        );
        for decision in profiler.profile_pool(&pool) {
            println!(
                "  {:<38} {:>7.3}  {:>9.1}  {:>11.4}  {}",
                decision.spec.to_string(),
                decision.cost.mflops(),
                decision.cost.kparams(),
                decision.latency_ms,
                if decision.deployable() { "yes" } else { "no" }
            );
        }
        match profiler.select(&pool) {
            Some(best) => println!(
                "  -> selected {} ({:.3} MFLOPs); AppealNet would now add the predictor head\n",
                best.spec,
                best.cost.mflops()
            ),
            None => println!("  -> no candidate fits this budget\n"),
        }
    }

    // The selected architecture deploys directly into the serving engine —
    // here with untrained weights and an MSP confidence scorer, just to show
    // the wiring from profiler output to a running engine.
    let profiler =
        HardwareProfiler::new(DeviceSpec::mobile_soc(), 5.0).expect("budget is positive");
    let best = profiler.select(&pool).expect("the pool fits a mobile SoC");
    let mut rng = SeededRng::new(2021);
    let little = best.spec.build(&mut rng);
    let big = ModelSpec::big(input_shape, classes).build(&mut rng);
    let mut engine = Engine::builder()
        .confidence(little, ScoreKind::Msp)
        .big(big)
        .policy(ThresholdPolicy::new(0.5)?)
        .build()?;
    let frames = Tensor::randn(&[8, 3, 12, 12], &mut rng);
    engine.classify_batch(&frames)?;
    println!(
        "deployed the selected model ({}) behind the engine: {} frames routed,\n\
         SR = {:.0}% (untrained weights — the full flow would train it first).",
        best.spec,
        engine.stats().requests,
        engine.stats().skipping_rate() * 100.0
    );
    Ok(())
}
