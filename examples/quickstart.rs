//! Quickstart: train a small AppealNet system end-to-end on the CIFAR-10-like
//! preset, inspect the accuracy / cost trade-off it offers, and deploy it as
//! a serving engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use appeal_dataset::prelude::*;
use appeal_models::prelude::*;
use appealnet_core::prelude::*;

fn main() -> Result<(), CoreError> {
    // 1. Pick a dataset preset and an experiment context. `Fidelity::Smoke`
    //    keeps the example fast; switch to `Fidelity::Paper` for the scale
    //    used by the benchmark harness.
    let ctx = ExperimentContext::new(Fidelity::Smoke, 42);
    println!(
        "Preparing an AppealNet system on {} ...",
        DatasetPreset::Cifar10Like
    );

    // 2. Prepare the full pipeline: train the big cloud network, the baseline
    //    little network, and the jointly trained two-head AppealNet model.
    //    Generating the dataset ourselves lets step 5 reuse its test split.
    let pair = DatasetPreset::Cifar10Like.spec(ctx.fidelity).generate();
    let prepared = PreparedExperiment::prepare_with_data(
        DatasetPreset::Cifar10Like,
        &pair,
        ModelFamily::MobileNetLike,
        CloudMode::WhiteBox,
        &ctx,
    );

    println!(
        "stand-alone accuracies: little = {:.2}%, AppealNet approximator = {:.2}%, big = {:.2}%",
        prepared.little_accuracy * 100.0,
        prepared.appealnet_accuracy * 100.0,
        prepared.big_accuracy * 100.0
    );
    println!(
        "per-inference cost:      little = {:.3} MFLOPs, big = {:.3} MFLOPs",
        prepared.little_flops as f64 / 1e6,
        prepared.big_flops as f64 / 1e6
    );

    // 3. Explore the accuracy / cost trade-off by moving the threshold δ.
    let artifacts = prepared.artifacts(ScoreKind::AppealNetQ);
    println!("\n  SR%   overall acc   cost (MFLOPs)");
    for sr in [0.70, 0.80, 0.90, 0.95, 1.00] {
        let m = artifacts.at_skipping_rate(sr)?;
        println!(
            "  {:>3.0}   {:>10.2}%   {:>12.3}",
            m.skipping_rate * 100.0,
            m.overall_accuracy * 100.0,
            m.overall_mflops()
        );
    }

    // 4. Pick the cheapest operating point that recovers 90% of the
    //    little-to-big accuracy gap (a Table I style query).
    match appealnet_core::tuning::min_cost_for_acci(artifacts, 0.90)? {
        Some(choice) => println!(
            "\ncheapest operating point with AccI >= 90%: SR = {:.1}%, cost = {:.3} MFLOPs",
            choice.metrics.skipping_rate * 100.0,
            choice.metrics.overall_mflops()
        ),
        None => println!("\nAccI >= 90% is not reachable at this (smoke) training scale"),
    }

    // 5. Deploy: calibrate a 90% skipping-rate policy from the artifacts and
    //    move the trained models into a serving engine.
    let policy = CalibratedPolicy::for_skipping_rate(artifacts, 0.90)?;
    let mut engine = Engine::builder()
        .appealnet(prepared.models.appealnet)
        .big(prepared.models.big)
        .policy(policy)
        .build()?;
    engine.classify_batch(pair.test.images())?;
    let stats = engine.stats();
    println!(
        "\nserved {} requests: live SR = {:.1}%, total energy = {:.2} mJ, {:.0} req/s",
        stats.requests,
        stats.skipping_rate() * 100.0,
        stats.total_cost.energy_mj,
        stats.throughput_rps()
    );
    Ok(())
}
