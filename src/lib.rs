//! # appealnet-suite
//!
//! The workspace-level package of the AppealNet reproduction. It hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`); the actual functionality lives in the member crates:
//!
//! * [`appeal_tensor`] — tensor / layer / optimizer substrate.
//! * [`appeal_dataset`] — synthetic long-tail dataset presets.
//! * [`appeal_models`] — the little/big model zoo with FLOP accounting.
//! * [`appeal_hw`] — device, link and energy cost models plus the hardware profiler.
//! * [`appealnet_core`] — the AppealNet two-head architecture, joint training,
//!   routing scores, metrics, experiment pipelines and the policy-driven
//!   serving engine (`appealnet_core::serve`).
//!
//! See the repository `README.md` for a quickstart, the workspace layout and
//! the design of the parallel batch-evaluation engine; the experiment
//! binaries in `appeal-bench` regenerate the paper's tables and figures into
//! `reports/`.

pub use appeal_dataset;
pub use appeal_hw;
pub use appeal_models;
pub use appeal_tensor;
pub use appealnet_core;

/// Version of the reproduction suite.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
