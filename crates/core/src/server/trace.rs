//! Synthetic serving traces: deterministic arrival-time generators for the
//! load generator and the shed-determinism tests.
//!
//! A [`TraceSpec`] names a traffic *shape* — uniform, bursty, or diurnal —
//! a request count, a mean inter-arrival gap, and a seed, and expands to a
//! sorted list of [`TraceEvent`]s (arrival nanosecond + client id). The
//! expansion is a pure function of the spec: the same spec replays the same
//! trace on every run, which is what makes shed rates and micro-batch
//! compositions reproducible end to end.

use appeal_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// The temporal shape of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceShape {
    /// Exponential inter-arrival gaps at a constant mean rate (Poisson-like
    /// steady load).
    Uniform,
    /// Back-to-back bursts of `burst` requests separated by idle gaps: the
    /// worst case for a fixed-size batcher (queues fill instantly, then
    /// starve) and the showcase for deadline coalescing.
    Bursty {
        /// Requests per burst.
        burst: usize,
    },
    /// A sinusoidal rate profile: `periods` full day/night cycles over the
    /// trace, with the instantaneous rate swinging between `1 ± amplitude`
    /// times the mean (amplitude is clamped to `[0, 0.95]`).
    Diurnal {
        /// Full rate cycles across the whole trace.
        periods: f64,
        /// Relative swing of the instantaneous rate around the mean.
        amplitude: f64,
    },
}

/// A deterministic synthetic trace: shape + scale + seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Temporal shape.
    pub shape: TraceShape,
    /// Total requests in the trace.
    pub requests: usize,
    /// Mean gap between consecutive requests, in nanoseconds.
    pub mean_gap_nanos: u64,
    /// Number of distinct clients; events are assigned uniformly at random.
    pub clients: u32,
    /// Seed for the gap/client RNG.
    pub seed: u64,
}

/// One request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Arrival time in nanoseconds from trace start.
    pub at_nanos: u64,
    /// Submitting client.
    pub client: u32,
}

impl TraceSpec {
    /// Expands the spec into its arrival events, sorted by time.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut rng = SeededRng::new(self.seed);
        let clients = self.clients.max(1);
        let mean = self.mean_gap_nanos.max(1) as f64;
        let mut t = 0.0f64;
        let mut events = Vec::with_capacity(self.requests);
        for i in 0..self.requests {
            let gap = match self.shape {
                TraceShape::Uniform => exponential_gap(&mut rng, mean),
                TraceShape::Bursty { burst } => {
                    let burst = burst.max(1);
                    if i % burst == burst - 1 {
                        // Idle between bursts: the whole burst's worth of
                        // mean gaps lands here, keeping the overall rate at
                        // the configured mean.
                        exponential_gap(&mut rng, mean * burst as f64)
                    } else {
                        // Within a burst requests arrive nearly together.
                        exponential_gap(&mut rng, mean * 0.01)
                    }
                }
                TraceShape::Diurnal { periods, amplitude } => {
                    let amplitude = amplitude.clamp(0.0, 0.95);
                    let progress = i as f64 / self.requests.max(1) as f64;
                    let rate = 1.0 + amplitude * (std::f64::consts::TAU * periods * progress).sin();
                    exponential_gap(&mut rng, mean / rate)
                }
            };
            t += gap;
            events.push(TraceEvent {
                at_nanos: t as u64,
                client: rng.below(clients as usize) as u32,
            });
        }
        events
    }

    /// Wall-clock span of the trace (arrival of the last event).
    pub fn span_nanos(&self) -> u64 {
        self.events().last().map(|e| e.at_nanos).unwrap_or(0)
    }
}

/// An exponentially distributed gap with the given mean, strictly positive.
fn exponential_gap(rng: &mut SeededRng, mean: f64) -> f64 {
    let u = f64::from(rng.uniform(0.0, 1.0)).clamp(1e-9, 1.0 - 1e-9);
    (-u.ln() * mean).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(shape: TraceShape) -> TraceSpec {
        TraceSpec {
            shape,
            requests: 200,
            mean_gap_nanos: 1_000_000,
            clients: 4,
            seed: 77,
        }
    }

    #[test]
    fn same_spec_replays_the_same_trace() {
        for shape in [
            TraceShape::Uniform,
            TraceShape::Bursty { burst: 8 },
            TraceShape::Diurnal {
                periods: 2.0,
                amplitude: 0.8,
            },
        ] {
            let a = spec(shape).events();
            let b = spec(shape).events();
            assert_eq!(a, b, "{shape:?} must be deterministic");
            assert_eq!(a.len(), 200);
            assert!(a.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
            assert!(a.iter().all(|e| e.client < 4));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec(TraceShape::Uniform).events();
        let mut other = spec(TraceShape::Uniform);
        other.seed = 78;
        assert_ne!(a, other.events());
    }

    #[test]
    fn bursty_gaps_are_bimodal() {
        let events = spec(TraceShape::Bursty { burst: 8 }).events();
        let gaps: Vec<u64> = events
            .windows(2)
            .map(|w| w[1].at_nanos - w[0].at_nanos)
            .collect();
        let tiny = gaps.iter().filter(|&&g| g < 100_000).count();
        let idle = gaps.iter().filter(|&&g| g > 1_000_000).count();
        assert!(
            tiny > gaps.len() / 2,
            "most gaps are intra-burst: {tiny}/{}",
            gaps.len()
        );
        assert!(idle > 5, "bursts are separated by long idles: {idle}");
    }

    #[test]
    fn diurnal_rate_swings_across_the_trace() {
        let events = spec(TraceShape::Diurnal {
            periods: 1.0,
            amplitude: 0.9,
        })
        .events();
        // First quarter (rising rate) must be denser than the third
        // quarter (trough) for a single-period sinusoid.
        let q = events.len() / 4;
        let first = events[q].at_nanos - events[0].at_nanos;
        let third = events[3 * q].at_nanos - events[2 * q].at_nanos;
        assert!(
            first < third,
            "peak quarter spans {first} ns, trough quarter {third} ns"
        );
    }

    #[test]
    fn mean_rate_is_roughly_the_configured_mean() {
        let s = spec(TraceShape::Uniform);
        let span = s.span_nanos() as f64;
        let expected = (s.requests as u64 * s.mean_gap_nanos) as f64;
        assert!(
            (span / expected - 1.0).abs() < 0.5,
            "span {span} vs expected {expected}"
        );
    }
}
