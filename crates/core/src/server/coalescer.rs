//! Deadline-based micro-batching over the [`Engine`], in virtual time.
//!
//! The engine's own queue flushes at a fixed `max_batch`; under light load a
//! request could wait forever for the queue to fill. The [`MicroBatcher`]
//! adds the serving-grade rule: coalesce requests until **either** the batch
//! is full (size trigger — the engine's `max_batch`, unchanged semantics)
//! **or** the *oldest* queued request has waited the configured deadline
//! (deadline trigger). It also owns the overload [`ShedPolicy`] and the
//! per-client fairness accounting that [`ServerStats`] reports.
//!
//! Time is a caller-supplied monotonic nanosecond counter, not [`std::time`]:
//! the threaded [`Server`](crate::server::Server) feeds it real elapsed
//! nanoseconds, while tests and simulations feed it a virtual clock — which
//! makes every coalescing, deadline and shedding decision exactly
//! reproducible under a fixed trace.

use crate::error::{CoreError, CoreResult};
use crate::serve::{Engine, EngineStats, InferenceRequest, InferenceResponse};
use appeal_hw::{CostBudget, CostMeter, InferenceCost};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Why a micro-batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The queue reached the engine's `max_batch`.
    Size,
    /// The oldest queued request hit the latency deadline.
    Deadline,
    /// The batcher was drained (shutdown or explicit drain).
    Drain,
}

/// Configuration of the cost-budget overload shedding policy.
///
/// Admission is measured against an [`appeal_hw::CostBudget`] over a rolling
/// accounting window of `window` offered requests: whenever the cost already
/// charged in the current window (plus one worst-case offload) would exceed
/// the budget, further requests are shed until the window rolls over. The
/// meter charges each answered request's *actual* cost, so a traffic mix the
/// edge absorbs cheaply sheds far less than one that appeals everything —
/// the shed signal is the paper's edge/cloud cost split, live.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedConfig {
    /// Cost budget per accounting window.
    pub budget: CostBudget,
    /// Window length in offered requests (must be positive).
    pub window: u64,
}

/// Internal state of the shedding policy.
struct ShedPolicy {
    config: ShedConfig,
    meter: CostMeter,
    arrivals_in_window: u64,
}

impl ShedPolicy {
    fn new(config: ShedConfig) -> CoreResult<Self> {
        if config.window == 0 {
            return Err(CoreError::InvalidShedWindow);
        }
        Ok(Self {
            config,
            meter: CostMeter::new(),
            arrivals_in_window: 0,
        })
    }

    /// Rolls the accounting window forward by one offered request.
    fn on_arrival(&mut self) {
        self.arrivals_in_window += 1;
        if self.arrivals_in_window >= self.config.window {
            self.arrivals_in_window = 0;
            self.meter.reset();
        }
    }

    /// Returns `true` if one more worst-case request still fits the window's
    /// budget.
    fn admits(&self, worst_case: &InferenceCost) -> bool {
        self.config.budget.admits(&self.meter.spent(), worst_case)
    }

    fn charge(&mut self, actual: &InferenceCost) {
        self.meter.charge(actual);
    }
}

/// What happened to one offered request.
#[derive(Debug)]
pub enum Admission {
    /// Queued; the batch is still coalescing.
    Queued,
    /// This request filled the batch: a size-triggered flush ran and these
    /// are its answers (the offered request included, in submission order).
    Flushed(Vec<ClientResponse>),
    /// The overload policy shed the request; it was never queued.
    Shed,
}

/// One answered request, attributed to its client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResponse {
    /// The client that submitted the request.
    pub client: u32,
    /// Nanoseconds the request waited from arrival to flush.
    pub waited_nanos: u64,
    /// The engine's answer.
    pub response: InferenceResponse,
}

/// Per-client serving counters (the fairness ledger).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClientStats {
    /// Client id.
    pub client: u32,
    /// Requests this client offered (admitted + shed).
    pub offered: u64,
    /// Requests admitted into a micro-batch.
    pub admitted: u64,
    /// Requests answered.
    pub answered: u64,
    /// Requests shed by the overload policy.
    pub shed: u64,
    /// Answers served on the edge.
    pub edge: u64,
    /// Answers appealed to the cloud.
    pub cloud: u64,
}

/// Cumulative serving-layer statistics: the engine's [`EngineStats`] plus
/// the front-end's admission/shedding/flush counters and the per-client
/// fairness ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// The wrapped engine's cumulative stats.
    pub engine: EngineStats,
    /// Requests offered to the batcher (valid shape; admitted + shed).
    pub offered: u64,
    /// Requests admitted into micro-batches.
    pub admitted: u64,
    /// Requests answered.
    pub answered: u64,
    /// Requests shed by the overload policy.
    pub shed: u64,
    /// Requests rejected at the admission queue (threaded server only).
    pub rejected: u64,
    /// Requests failed with a typed error by the batcher — corrupt-queue
    /// recovery or the panic fence (threaded server only).
    pub failed: u64,
    /// Tickets whose per-request deadline elapsed before the answer arrived
    /// (threaded server only). The requests themselves still ran to
    /// completion; only their callers stopped waiting.
    pub deadline_expired: u64,
    /// Micro-batches flushed because they reached `max_batch`.
    pub size_flushes: u64,
    /// Micro-batches flushed because the oldest request hit the deadline.
    pub deadline_flushes: u64,
    /// Micro-batches flushed by an explicit drain / shutdown.
    pub drain_flushes: u64,
    /// Per-client counters, ascending by client id.
    pub clients: Vec<ClientStats>,
}

impl ServerStats {
    /// Fraction of offered requests that were shed; 0 before any request.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// Fraction of submission attempts rejected for backpressure, out of
    /// everything the front door saw (offered + rejected); 0 before any.
    pub fn rejection_rate(&self) -> f64 {
        let seen = self.offered + self.rejected;
        if seen == 0 {
            0.0
        } else {
            self.rejected as f64 / seen as f64
        }
    }

    /// Jain's fairness index over per-client answered counts: 1.0 when every
    /// client got the same share, approaching `1/n` under total capture by
    /// one client; 1.0 when no client has been answered yet.
    pub fn fairness_index(&self) -> f64 {
        let shares: Vec<f64> = self
            .clients
            .iter()
            .filter(|c| c.offered > 0)
            .map(|c| c.answered as f64)
            .collect();
        let n = shares.len() as f64;
        let sum: f64 = shares.iter().sum();
        let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
        if sum_sq <= 0.0 {
            1.0
        } else {
            (sum * sum) / (n * sum_sq)
        }
    }
}

/// The deadline coalescer: owns an [`Engine`] and flushes its micro-batch
/// queue on size *or* deadline, with optional cost-budget shedding.
///
/// All methods take an explicit `now_nanos` monotonic timestamp; see the
/// module docs for why. Drive it with [`offer`](MicroBatcher::offer) per
/// request and [`poll`](MicroBatcher::poll) whenever time passes (the
/// threaded server polls on its queue-wait timeouts).
pub struct MicroBatcher {
    engine: Engine,
    deadline_nanos: u64,
    shed: Option<ShedPolicy>,
    /// `(client, arrival_nanos)` per request in the engine's pending queue,
    /// kept strictly parallel to it.
    pending_meta: Vec<(u32, u64)>,
    offered: u64,
    admitted: u64,
    answered: u64,
    shed_count: u64,
    size_flushes: u64,
    deadline_flushes: u64,
    drain_flushes: u64,
    clients: BTreeMap<u32, ClientStats>,
}

impl std::fmt::Debug for MicroBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MicroBatcher(pending={}, deadline={:?}, offered={}, shed={})",
            self.pending_meta.len(),
            Duration::from_nanos(self.deadline_nanos),
            self.offered,
            self.shed_count
        )
    }
}

impl MicroBatcher {
    /// Wraps an engine with a flush deadline and an optional shed policy.
    ///
    /// The size trigger is the engine's existing `max_batch`; `deadline` caps
    /// how long the *oldest* queued request waits before a partial batch is
    /// flushed anyway. Errors with [`CoreError::InvalidShedWindow`] if the
    /// shed config has a zero-length window.
    pub fn new(engine: Engine, deadline: Duration, shed: Option<ShedConfig>) -> CoreResult<Self> {
        let shed = match shed {
            Some(config) => Some(ShedPolicy::new(config)?),
            None => None,
        };
        Ok(Self {
            engine,
            deadline_nanos: deadline.as_nanos().min(u64::MAX as u128) as u64,
            shed,
            pending_meta: Vec::new(),
            offered: 0,
            admitted: 0,
            answered: 0,
            shed_count: 0,
            size_flushes: 0,
            deadline_flushes: 0,
            drain_flushes: 0,
            clients: BTreeMap::new(),
        })
    }

    /// Offers one request at `now_nanos` on behalf of `client`.
    ///
    /// Shape validation happens before any state changes
    /// ([`CoreError::ShapeMismatch`]); a validated request is then either
    /// shed by the overload policy, queued, or — if it fills the batch —
    /// answered together with the rest of a size-triggered flush.
    pub fn offer(
        &mut self,
        now_nanos: u64,
        client: u32,
        request: InferenceRequest,
    ) -> CoreResult<Admission> {
        self.engine.validate_request(&request)?;
        self.offered += 1;
        self.client_entry(client).offered += 1;
        if let Some(shed) = self.shed.as_mut() {
            shed.on_arrival();
            let worst_case = self.engine.offload_cost();
            if !shed.admits(&worst_case) {
                self.shed_count += 1;
                self.client_entry(client).shed += 1;
                return Ok(Admission::Shed);
            }
        }
        self.admitted += 1;
        self.client_entry(client).admitted += 1;
        self.pending_meta.push((client, now_nanos));
        match self.engine.submit(request) {
            Ok(Some(responses)) => {
                let out = self.complete(now_nanos, FlushTrigger::Size, responses)?;
                Ok(Admission::Flushed(out))
            }
            Ok(None) => Ok(Admission::Queued),
            Err(err) => {
                // The only fallible path past validation is a corrupt-queue
                // flush, which drops the engine's buffers — mirror that here
                // so client metadata never outlives the requests it labels.
                self.pending_meta.clear();
                Err(err)
            }
        }
    }

    /// Flushes the pending micro-batch if the oldest queued request has
    /// reached its deadline at `now_nanos`; `None` while the deadline holds
    /// or the queue is empty.
    pub fn poll(
        &mut self,
        now_nanos: u64,
    ) -> CoreResult<Option<(FlushTrigger, Vec<ClientResponse>)>> {
        match self.next_deadline_nanos() {
            Some(deadline) if now_nanos >= deadline => {
                let responses = self.flush_engine()?;
                let out = self.complete(now_nanos, FlushTrigger::Deadline, responses)?;
                Ok(Some((FlushTrigger::Deadline, out)))
            }
            _ => Ok(None),
        }
    }

    /// Flushes whatever is queued regardless of deadline (shutdown path).
    pub fn drain(&mut self, now_nanos: u64) -> CoreResult<Vec<ClientResponse>> {
        if self.pending_meta.is_empty() {
            return Ok(Vec::new());
        }
        let responses = self.flush_engine()?;
        self.complete(now_nanos, FlushTrigger::Drain, responses)
    }

    /// The virtual-time instant at which the pending batch must flush, if a
    /// batch is coalescing.
    pub fn next_deadline_nanos(&self) -> Option<u64> {
        self.pending_meta
            .first()
            .map(|&(_, arrival)| arrival.saturating_add(self.deadline_nanos))
    }

    /// Requests currently coalescing.
    pub fn pending(&self) -> usize {
        self.pending_meta.len()
    }

    /// Cumulative serving statistics (the `rejected` counter is owned by the
    /// threaded server and reads 0 here).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            engine: *self.engine.stats(),
            offered: self.offered,
            admitted: self.admitted,
            answered: self.answered,
            shed: self.shed_count,
            rejected: 0,
            failed: 0,
            deadline_expired: 0,
            size_flushes: self.size_flushes,
            deadline_flushes: self.deadline_flushes,
            drain_flushes: self.drain_flushes,
            clients: self.clients.values().copied().collect(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Unwraps into the engine and a final stats snapshot.
    pub fn into_parts(self) -> (Engine, ServerStats) {
        let stats = self.stats();
        (self.engine, stats)
    }

    fn client_entry(&mut self, client: u32) -> &mut ClientStats {
        self.clients.entry(client).or_insert_with(|| ClientStats {
            client,
            ..ClientStats::default()
        })
    }

    /// `Engine::flush`, keeping `pending_meta` synchronized with the
    /// engine's own transactional error path.
    fn flush_engine(&mut self) -> CoreResult<Vec<InferenceResponse>> {
        match self.engine.flush() {
            Ok(responses) => Ok(responses),
            Err(err) => {
                self.pending_meta.clear();
                Err(err)
            }
        }
    }

    /// Attributes one flush's responses to their clients and updates every
    /// ledger (fairness counters, shed meter, flush triggers).
    fn complete(
        &mut self,
        now_nanos: u64,
        trigger: FlushTrigger,
        responses: Vec<InferenceResponse>,
    ) -> CoreResult<Vec<ClientResponse>> {
        let meta = std::mem::take(&mut self.pending_meta);
        assert_eq!(
            meta.len(),
            responses.len(),
            "engine flush must answer exactly the queued requests"
        );
        let mut out = Vec::with_capacity(responses.len());
        for ((client, arrival), response) in meta.into_iter().zip(responses) {
            if let Some(shed) = self.shed.as_mut() {
                shed.charge(&response.cost);
            }
            let entry = self.client_entry(client);
            entry.answered += 1;
            if response.route.is_cloud() {
                entry.cloud += 1;
            } else {
                entry.edge += 1;
            }
            self.answered += 1;
            out.push(ClientResponse {
                client,
                waited_nanos: now_nanos.saturating_sub(arrival),
                response,
            });
        }
        match trigger {
            FlushTrigger::Size => self.size_flushes += 1,
            FlushTrigger::Deadline => self.deadline_flushes += 1,
            FlushTrigger::Drain => self.drain_flushes += 1,
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ThresholdPolicy;
    use crate::two_head::TwoHeadNet;
    use appeal_models::{ModelFamily, ModelSpec};
    use appeal_tensor::{SeededRng, Tensor};

    const MS: u64 = 1_000_000;

    fn engine(max_batch: usize) -> Engine {
        let mut rng = SeededRng::new(3);
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        let net = TwoHeadNet::from_parts(little, &mut rng);
        Engine::builder()
            .appealnet(net)
            .big(big)
            .policy(ThresholdPolicy::new(0.5).unwrap())
            .max_batch(max_batch)
            .build()
            .unwrap()
    }

    fn request(rng: &mut SeededRng, id: u64) -> InferenceRequest {
        InferenceRequest::new(id, Tensor::randn(&[3, 12, 12], rng))
    }

    #[test]
    fn deadline_flush_fires_only_after_the_deadline() {
        let mut mb = MicroBatcher::new(engine(64), Duration::from_millis(5), None).unwrap();
        let mut rng = SeededRng::new(7);
        assert!(matches!(
            mb.offer(0, 1, request(&mut rng, 0)).unwrap(),
            Admission::Queued
        ));
        assert!(matches!(
            mb.offer(2 * MS, 2, request(&mut rng, 1)).unwrap(),
            Admission::Queued
        ));
        // Deadline counts from the OLDEST request (t=0), not the newest.
        assert_eq!(mb.next_deadline_nanos(), Some(5 * MS));
        assert!(mb.poll(4 * MS).unwrap().is_none());
        let (trigger, answers) = mb.poll(5 * MS).unwrap().unwrap();
        assert_eq!(trigger, FlushTrigger::Deadline);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].client, 1);
        assert_eq!(answers[0].waited_nanos, 5 * MS);
        assert_eq!(answers[1].waited_nanos, 3 * MS);
        assert_eq!(mb.pending(), 0);
        assert!(mb.poll(9 * MS).unwrap().is_none(), "queue is empty again");
        let stats = mb.stats();
        assert_eq!(stats.deadline_flushes, 1);
        assert_eq!(stats.size_flushes, 0);
        assert_eq!(stats.answered, 2);
    }

    #[test]
    fn size_flush_preempts_the_deadline() {
        let mut mb = MicroBatcher::new(engine(2), Duration::from_secs(600), None).unwrap();
        let mut rng = SeededRng::new(8);
        assert!(matches!(
            mb.offer(0, 1, request(&mut rng, 0)).unwrap(),
            Admission::Queued
        ));
        match mb.offer(MS, 1, request(&mut rng, 1)).unwrap() {
            Admission::Flushed(answers) => {
                assert_eq!(answers.len(), 2);
                assert_eq!(answers[0].response.id, 0);
                assert_eq!(answers[1].response.id, 1);
            }
            other => panic!("expected a size flush, got {other:?}"),
        }
        let stats = mb.stats();
        assert_eq!(stats.size_flushes, 1);
        assert_eq!(stats.deadline_flushes, 0);
    }

    #[test]
    fn shed_policy_windows_are_deterministic() {
        // Budget pays for ~1 offload per 4-request window; with δ = 1.0
        // every request wants the cloud, so each window admits exactly as
        // many requests as fit the budget and sheds the rest — identically
        // on every run.
        let offload = engine(1).offload_cost();
        let mut mb = MicroBatcher::new(
            {
                let mut rng = SeededRng::new(3);
                let little =
                    ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
                let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
                Engine::builder()
                    .appealnet(TwoHeadNet::from_parts(little, &mut rng))
                    .big(big)
                    .policy(ThresholdPolicy::new(1.0).unwrap())
                    .max_batch(1)
                    .build()
                    .unwrap()
            },
            Duration::from_millis(1),
            Some(ShedConfig {
                budget: CostBudget::energy_mj(offload.energy_mj * 1.5),
                window: 4,
            }),
        )
        .unwrap();
        let mut rng = SeededRng::new(9);
        let mut pattern = Vec::new();
        for id in 0..12u64 {
            match mb
                .offer(id * MS, (id % 3) as u32, request(&mut rng, id))
                .unwrap()
            {
                Admission::Shed => pattern.push(true),
                Admission::Flushed(_) => pattern.push(false),
                Admission::Queued => unreachable!("max_batch == 1 always flushes"),
            }
        }
        // One admitted offload exhausts the 1.5x budget, and the meter
        // resets at every 4th arrival — so the admitted slots are exactly
        // ids 0, 3, 7, 11, on every run.
        assert_eq!(
            pattern,
            vec![false, true, true, false, true, true, true, false, true, true, true, false]
        );
        let stats = mb.stats();
        assert_eq!(stats.shed, 8);
        assert_eq!(stats.answered, 4);
        assert!((stats.shed_rate() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_ledger_attributes_per_client() {
        let mut mb = MicroBatcher::new(engine(4), Duration::from_millis(1), None).unwrap();
        let mut rng = SeededRng::new(10);
        for id in 0..8u64 {
            let client = if id < 6 { 0 } else { 1 };
            mb.offer(0, client, request(&mut rng, id)).unwrap();
        }
        let stats = mb.stats();
        assert_eq!(stats.clients.len(), 2);
        assert_eq!(stats.clients[0].client, 0);
        assert_eq!(stats.clients[0].answered, 6);
        assert_eq!(stats.clients[1].answered, 2);
        assert_eq!(
            stats.clients[0].edge + stats.clients[0].cloud,
            stats.clients[0].answered
        );
        // Jain's index for shares (6, 2): 64 / (2 * 40) = 0.8.
        assert!((stats.fairness_index() - 0.8).abs() < 1e-12);
        assert_eq!(stats.answered, 8);
        assert_eq!(stats.engine.requests, 8);
    }

    #[test]
    fn invalid_shed_window_is_rejected() {
        let err = MicroBatcher::new(
            engine(2),
            Duration::from_millis(1),
            Some(ShedConfig {
                budget: CostBudget::unlimited(),
                window: 0,
            }),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err, CoreError::InvalidShedWindow);
    }

    #[test]
    fn bad_shape_is_rejected_without_entering_any_ledger() {
        let mut mb = MicroBatcher::new(engine(4), Duration::from_millis(1), None).unwrap();
        let mut rng = SeededRng::new(11);
        let bad = InferenceRequest::new(0, Tensor::randn(&[3, 9, 12], &mut rng));
        assert!(matches!(
            mb.offer(0, 5, bad).unwrap_err(),
            CoreError::ShapeMismatch { .. }
        ));
        let stats = mb.stats();
        assert_eq!(stats.offered, 0);
        assert!(stats.clients.is_empty());
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn empty_fairness_index_is_one() {
        let mb = MicroBatcher::new(engine(2), Duration::from_millis(1), None).unwrap();
        assert_eq!(mb.stats().fairness_index(), 1.0);
        assert_eq!(mb.stats().shed_rate(), 0.0);
        assert_eq!(mb.stats().rejection_rate(), 0.0);
    }
}
