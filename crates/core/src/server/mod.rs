//! The serving front-end: a threaded request loop with deadline-based
//! micro-batching, bounded admission, and cost-budget overload shedding over
//! the [`Engine`].
//!
//! # Dataflow
//!
//! ```text
//! clients                 batcher thread                    compute
//! ───────                 ──────────────                    ───────
//! ServerHandle::submit ─▶ bounded queue ─▶ MicroBatcher ─▶ Engine ─▶ persistent
//!   │ shape check          (Mutex+Condvar,   (coalesce to    │        worker pool
//!   │ admission count       backpressure)     deadline or    │        (vendored
//!   ▼                           │             max_batch,     │         rayon)
//! Ticket ◀── mpsc channel ◀── shed / answer ◀─ fairness) ◀──┘
//! ```
//!
//! * **Admission** happens on the *client* thread: malformed shapes are
//!   rejected immediately ([`CoreError::ShapeMismatch`]) and a full queue —
//!   counting every in-flight request from enqueue to answer — rejects with
//!   typed backpressure ([`CoreError::Overloaded`]) instead of buffering
//!   without bound.
//! * **Coalescing** happens on the single batcher thread, which drains the
//!   queue in arrival order into the [`MicroBatcher`]: a micro-batch flushes
//!   when it reaches the engine's `max_batch` *or* when its oldest request
//!   has waited the configured deadline, whichever comes first. Compute
//!   itself fans out on the persistent worker pool inside the engine, so one
//!   loop thread saturates the cores.
//! * **Shedding**: an optional [`ShedConfig`] meters the *actual* cost of
//!   answered requests against an [`appeal_hw::CostBudget`] per accounting
//!   window and sheds excess requests with a fast typed answer
//!   ([`CoreError::Shed`]) instead of letting tail latency collapse.
//! * **Fairness**: every answer is attributed to its submitting client;
//!   [`ServerStats`] carries the per-client ledger and a Jain fairness
//!   index next to the engine's own [`EngineStats`](crate::serve::EngineStats).
//!
//! Determinism: given the same arrival order, the batcher makes identical
//! coalescing and shedding decisions in *virtual time* (see
//! [`MicroBatcher`]); the threaded wrapper adds only real-clock deadlines.
//! Batch *composition* under real time depends on timing, but per-request
//! answers do not: the engine is per-sample pure, so a request's label,
//! score and route are byte-identical whatever batch it lands in.
//!
//! # Example
//!
//! ```no_run
//! use appealnet_core::prelude::*;
//! use appealnet_core::server::{Server, ServerConfig};
//! use appeal_dataset::prelude::*;
//! use appeal_models::prelude::*;
//! use std::time::Duration;
//! # fn main() -> Result<(), CoreError> {
//! let ctx = ExperimentContext::new(Fidelity::Smoke, 42);
//! let prepared = PreparedExperiment::prepare(
//!     DatasetPreset::Cifar10Like,
//!     ModelFamily::MobileNetLike,
//!     CloudMode::WhiteBox,
//!     &ctx,
//! );
//! let engine = Engine::builder()
//!     .appealnet(prepared.models.appealnet)
//!     .big(prepared.models.big)
//!     .build()?;
//! let server = Server::start(
//!     engine,
//!     ServerConfig {
//!         queue_capacity: 256,
//!         deadline: Duration::from_millis(2),
//!         request_deadline: Some(Duration::from_millis(250)),
//!         ..ServerConfig::default()
//!     },
//! )?;
//! let handle = server.handle();
//! # let frame = appeal_tensor::Tensor::zeros(&[3, 12, 12]);
//! let ticket = handle.submit(0, InferenceRequest::new(0, frame))?;
//! let served = ticket.wait()?;
//! println!("label {} after {:?} in queue", served.response.label, served.waited);
//! let (_engine, stats) = server.shutdown()?;
//! println!("shed rate {:.1}%", 100.0 * stats.shed_rate());
//! # Ok(())
//! # }
//! ```

mod coalescer;
pub mod trace;

pub use coalescer::{
    Admission, ClientResponse, ClientStats, FlushTrigger, MicroBatcher, ServerStats, ShedConfig,
};

use crate::error::{CoreError, CoreResult};
use crate::serve::check_sample_shape;
use crate::serve::{Engine, InferenceRequest, InferenceResponse};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the batcher sleeps between liveness re-checks when it has no
/// coalescing deadline to wake for. Bounds every condvar wait so a missed
/// notification (or a spurious-wakeup-free platform) can delay shutdown or
/// new work by at most one tick, never forever.
const WATCHDOG_TICK: Duration = Duration::from_millis(50);

/// A scripted fault injected into the batcher thread — the serving-layer
/// analogue of `appeal_hw::FaultPlan`. Chaos tests use it to prove the
/// panic fence turns a dead batcher into typed [`CoreError::BatcherPanicked`]
/// answers instead of hung clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFault {
    /// Panic the batcher immediately before it offers the `(after + 1)`-th
    /// request (so `after: 0` kills it on the first request it ever sees).
    PanicOnOffer {
        /// How many requests are offered normally before the panic.
        after: u64,
    },
}

/// Configuration of the threaded serving front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Maximum in-flight requests (queued + coalescing), counted from
    /// admission to answer. Submissions beyond it are rejected with
    /// [`CoreError::Overloaded`]. Must be positive.
    pub queue_capacity: usize,
    /// How long the oldest coalescing request may wait before its partial
    /// micro-batch is flushed.
    pub deadline: Duration,
    /// Optional cost-budget overload shedding (see [`ShedConfig`]).
    pub shed: Option<ShedConfig>,
    /// Optional per-request answer deadline: [`Ticket::wait`] returns
    /// [`CoreError::DeadlineExceeded`] if no answer arrives within this
    /// budget. The request itself keeps running (and its admission slot is
    /// released when the batcher settles it); only the caller stops waiting.
    pub request_deadline: Option<Duration>,
    /// Scripted batcher fault for chaos tests; `None` in production.
    pub fault: Option<ServerFault>,
}

impl Default for ServerConfig {
    /// 256 in-flight requests, a 2 ms coalescing deadline, no shedding, no
    /// per-request deadline, no injected faults.
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            deadline: Duration::from_millis(2),
            shed: None,
            request_deadline: None,
            fault: None,
        }
    }
}

/// One request answered by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedResponse {
    /// The engine's answer.
    pub response: InferenceResponse,
    /// Time the request spent from admission to flush dispatch.
    pub waited: Duration,
}

/// An envelope traveling from a client thread to the batcher.
struct Envelope {
    client: u32,
    arrival_nanos: u64,
    request: InferenceRequest,
    tx: Sender<CoreResult<ServedResponse>>,
}

struct QueueState {
    queue: VecDeque<Envelope>,
    shutdown: bool,
}

/// State shared between client handles and the batcher thread.
struct Shared {
    state: Mutex<QueueState>,
    work: Condvar,
    capacity: usize,
    /// Requests admitted but not yet answered/shed/failed.
    outstanding: AtomicUsize,
    /// Submissions rejected at the front door for backpressure.
    rejected: AtomicU64,
    /// Requests failed with typed errors (corrupt-queue recovery, panic
    /// fence). Merged into [`ServerStats::failed`] at shutdown.
    failed: AtomicU64,
    /// Tickets abandoned by their per-request deadline. Merged into
    /// [`ServerStats::deadline_expired`] at shutdown.
    deadline_expired: AtomicU64,
    /// Set by the panic fence: the batcher died unwinding and the server
    /// answers everything with [`CoreError::BatcherPanicked`] from now on.
    panicked: AtomicBool,
    start: Instant,
    input_shape: [usize; 3],
}

impl Shared {
    fn now_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Marks `n` in-flight requests as settled (answered, shed, or failed).
    fn settle(&self, n: usize) {
        self.outstanding.fetch_sub(n, Ordering::AcqRel);
    }

    /// Locks the queue, recovering from poisoning: a panicking batcher must
    /// not wedge client threads — by the time they can observe the poison,
    /// the panic fence has already failed the queued work, so the state
    /// behind the lock is consistent.
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The typed "server went away" verdict: [`CoreError::BatcherPanicked`]
    /// after a batcher panic, [`CoreError::ServerStopped`] after an orderly
    /// shutdown.
    ///
    /// A waiter's channel can only disconnect because the batcher exited
    /// orderly (the shutdown flag was set before it broke out of its loop)
    /// or because it is unwinding (the fence sets `panicked` as part of the
    /// same unwind). Between a sender dropping and the fence flagging there
    /// is a small window; spin it out so the verdict is deterministic
    /// instead of racing the unwinder.
    fn stopped_error(&self) -> CoreError {
        loop {
            if self.panicked.load(Ordering::Acquire) {
                return CoreError::BatcherPanicked;
            }
            if self.lock_state().shutdown {
                // The fence stores `panicked` before it sets `shutdown`, so
                // one recheck after observing the flag settles the verdict.
                if self.panicked.load(Ordering::Acquire) {
                    return CoreError::BatcherPanicked;
                }
                return CoreError::ServerStopped;
            }
            std::thread::yield_now();
        }
    }
}

/// A cloneable client handle: submit requests, receive [`Ticket`]s.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    /// The configured per-request deadline, stamped onto every ticket.
    deadline: Option<Duration>,
}

impl ServerHandle {
    /// Submits one request on behalf of `client`.
    ///
    /// Runs entirely on the caller's thread: the image shape is validated
    /// eagerly ([`CoreError::ShapeMismatch`]), the bounded admission count
    /// is taken ([`CoreError::Overloaded`] when full), and the envelope is
    /// queued for the batcher. The returned [`Ticket`] resolves once the
    /// request's micro-batch flushes (or the request is shed).
    pub fn submit(&self, client: u32, request: InferenceRequest) -> CoreResult<Ticket> {
        check_sample_shape(request.image.shape(), &self.shared.input_shape)?;
        // Reserve an admission slot before touching the queue so capacity
        // bounds *everything* in flight, not just what sits in the VecDeque.
        let mut slots = self.shared.outstanding.load(Ordering::Acquire);
        loop {
            if slots >= self.shared.capacity {
                self.shared.rejected.fetch_add(1, Ordering::AcqRel);
                return Err(CoreError::Overloaded {
                    capacity: self.shared.capacity,
                });
            }
            match self.shared.outstanding.compare_exchange_weak(
                slots,
                slots + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => slots = actual,
            }
        }
        let (tx, rx) = mpsc::channel();
        let envelope = Envelope {
            client,
            arrival_nanos: self.shared.now_nanos(),
            request,
            tx,
        };
        {
            let mut st = self.shared.lock_state();
            if st.shutdown {
                drop(st);
                self.shared.settle(1);
                return Err(self.shared.stopped_error());
            }
            st.queue.push_back(envelope);
        }
        self.shared.work.notify_one();
        Ok(Ticket {
            rx,
            deadline: self.deadline,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Requests currently in flight (admitted, not yet settled).
    pub fn in_flight(&self) -> usize {
        self.shared.outstanding.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ServerHandle(in_flight={}, capacity={})",
            self.in_flight(),
            self.shared.capacity
        )
    }
}

/// The pending answer to one submitted request.
pub struct Ticket {
    rx: Receiver<CoreResult<ServedResponse>>,
    /// The server-wide per-request deadline, if one is configured.
    deadline: Option<Duration>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ticket(deadline={:?})", self.deadline)
    }
}

impl Ticket {
    /// Blocks until the request is answered — or, when the server has a
    /// `request_deadline`, until that deadline elapses.
    ///
    /// Errors with the batcher's typed verdict ([`CoreError::Shed`],
    /// [`CoreError::CorruptQueue`], …), [`CoreError::DeadlineExceeded`] on
    /// deadline expiry, [`CoreError::BatcherPanicked`] if the batcher died,
    /// or [`CoreError::ServerStopped`] if the server shut down without
    /// answering.
    pub fn wait(self) -> CoreResult<ServedResponse> {
        match self.deadline {
            Some(deadline) => self.wait_deadline(deadline),
            None => match self.rx.recv() {
                Ok(result) => result,
                Err(_) => Err(self.shared.stopped_error()),
            },
        }
    }

    /// Blocks until the request is answered or `deadline` elapses, whichever
    /// comes first (overriding any server-wide `request_deadline`).
    ///
    /// On expiry the answer is abandoned with
    /// [`CoreError::DeadlineExceeded`]; the request itself keeps running and
    /// its admission slot frees when the batcher settles it.
    pub fn wait_deadline(self, deadline: Duration) -> CoreResult<ServedResponse> {
        match self.rx.recv_timeout(deadline) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.shared.deadline_expired.fetch_add(1, Ordering::AcqRel);
                Err(CoreError::DeadlineExceeded { deadline })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.shared.stopped_error()),
        }
    }

    /// Non-blocking variant of [`wait`](Ticket::wait): `None` while the
    /// answer is still pending. Never reports a deadline; polling callers
    /// own their own clocks.
    pub fn try_wait(&self) -> Option<CoreResult<ServedResponse>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(self.shared.stopped_error())),
        }
    }
}

/// The threaded serving front-end. See the [module docs](self) for the
/// dataflow; construct with [`Server::start`], stop with
/// [`Server::shutdown`] to recover the engine and final [`ServerStats`].
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<(Engine, ServerStats)>>,
    request_deadline: Option<Duration>,
}

impl Server {
    /// Spawns the batcher thread around `engine`.
    ///
    /// Errors with [`CoreError::InvalidMaxBatch`] for a zero
    /// `queue_capacity` and [`CoreError::InvalidShedWindow`] for a
    /// zero-length shed window.
    pub fn start(engine: Engine, config: ServerConfig) -> CoreResult<Self> {
        if config.queue_capacity == 0 {
            return Err(CoreError::InvalidMaxBatch);
        }
        let input_shape = engine.input_shape();
        let batcher = MicroBatcher::new(engine, config.deadline, config.shed)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            capacity: config.queue_capacity,
            outstanding: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            start: Instant::now(),
            input_shape,
        });
        let thread_shared = Arc::clone(&shared);
        let fault = config.fault;
        let handle = std::thread::Builder::new()
            .name("appealnet-batcher".into())
            .spawn(move || batcher_loop(thread_shared, batcher, fault))
            .expect("failed to spawn the batcher thread");
        Ok(Self {
            shared,
            batcher: Some(handle),
            request_deadline: config.request_deadline,
        })
    }

    /// A cloneable client handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            deadline: self.request_deadline,
        }
    }

    /// Stops accepting requests, drains everything already admitted, joins
    /// the batcher, and returns the engine plus final stats (with the
    /// front-door rejection / failure / deadline ledgers merged in).
    ///
    /// Errors with [`CoreError::BatcherPanicked`] if the batcher thread died
    /// unwinding: the engine went down with it, and every in-flight request
    /// was already failed with that same typed error by the panic fence.
    pub fn shutdown(mut self) -> CoreResult<(Engine, ServerStats)> {
        let joined = self.stop_batcher().expect("batcher already taken");
        let (engine, mut stats) = joined.map_err(|_| CoreError::BatcherPanicked)?;
        stats.rejected = self.shared.rejected.load(Ordering::Acquire);
        stats.failed = self.shared.failed.load(Ordering::Acquire);
        stats.deadline_expired = self.shared.deadline_expired.load(Ordering::Acquire);
        Ok((engine, stats))
    }

    fn stop_batcher(&mut self) -> Option<std::thread::Result<(Engine, ServerStats)>> {
        let handle = self.batcher.take()?;
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        Some(handle.join())
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Server(in_flight={}, capacity={}, rejected={})",
            self.shared.outstanding.load(Ordering::Acquire),
            self.shared.capacity,
            self.shared.rejected.load(Ordering::Acquire)
        )
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server still drains admitted work before the engine is
        // discarded, so tickets resolve instead of hanging.
        let _ = self.stop_batcher();
    }
}

/// Sends one flush's responses to their waiting tickets, in order.
fn dispatch(
    shared: &Shared,
    waiters: &mut Vec<Sender<CoreResult<ServedResponse>>>,
    responses: Vec<ClientResponse>,
) {
    assert_eq!(
        waiters.len(),
        responses.len(),
        "one waiting ticket per flushed request"
    );
    for (tx, cr) in waiters.drain(..).zip(responses) {
        // Free the admission slot before delivering: a client that sees its
        // answer must also see the slot released.
        shared.settle(1);
        // A client that dropped its ticket just forfeits the answer.
        let _ = tx.send(Ok(ServedResponse {
            response: cr.response,
            waited: Duration::from_nanos(cr.waited_nanos),
        }));
    }
}

/// Fails every waiting ticket with `err` (corrupt-queue recovery path).
fn fail_all(
    shared: &Shared,
    waiters: &mut Vec<Sender<CoreResult<ServedResponse>>>,
    err: &CoreError,
) {
    for tx in waiters.drain(..) {
        shared.settle(1);
        shared.failed.fetch_add(1, Ordering::AcqRel);
        let _ = tx.send(Err(err.clone()));
    }
}

/// Arms the batcher thread against its own panics. If `batcher_loop` unwinds
/// with the fence still armed, the fence (dropping *before* the loop's
/// locals, so the `panicked` flag is visible by the time any waiter's
/// channel disconnects) marks the server dead, fails every queued envelope
/// with [`CoreError::BatcherPanicked`], and wakes everyone. Coalescing
/// waiters resolve right after, when their senders drop with the loop's
/// stack frame and their tickets read the flag.
struct PanicFence {
    shared: Arc<Shared>,
    armed: bool,
}

impl Drop for PanicFence {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.shared.panicked.store(true, Ordering::Release);
        let stranded: Vec<Envelope> = {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
            st.queue.drain(..).collect()
        };
        for env in stranded {
            self.shared.settle(1);
            self.shared.failed.fetch_add(1, Ordering::AcqRel);
            let _ = env.tx.send(Err(CoreError::BatcherPanicked));
        }
        self.shared.work.notify_all();
    }
}

/// The batcher thread: drain the queue in arrival order, coalesce to
/// deadline or size, answer tickets.
fn batcher_loop(
    shared: Arc<Shared>,
    mut batcher: MicroBatcher,
    fault: Option<ServerFault>,
) -> (Engine, ServerStats) {
    // Senders for requests currently coalescing, parallel to the batcher's
    // pending queue. Declared BEFORE the fence so an unwind drops the fence
    // first (reverse declaration order): the `panicked` flag is set before
    // these senders disconnect their tickets.
    let mut waiters: Vec<Sender<CoreResult<ServedResponse>>> = Vec::new();
    let mut fence = PanicFence {
        shared: Arc::clone(&shared),
        armed: true,
    };
    let mut offered: u64 = 0;
    loop {
        // Phase 1: wait for work, a deadline, or shutdown. Every wait is
        // bounded — by the coalescing deadline when a batch is pending, by
        // the watchdog tick otherwise — and the condition is re-checked on
        // each wakeup, so spurious wakeups and missed notifications both
        // degrade to at most one extra iteration.
        let (envelopes, shutdown) = {
            let mut st = shared.lock_state();
            loop {
                if !st.queue.is_empty() || st.shutdown {
                    break;
                }
                let sleep = match batcher.next_deadline_nanos() {
                    Some(deadline) => {
                        let now = shared.now_nanos();
                        if now >= deadline {
                            break;
                        }
                        Duration::from_nanos(deadline - now)
                    }
                    None => WATCHDOG_TICK,
                };
                let (guard, _timeout) = shared
                    .work
                    .wait_timeout(st, sleep)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
            (st.queue.drain(..).collect::<Vec<Envelope>>(), st.shutdown)
        };

        // Phase 2: offer the drained envelopes in arrival order.
        for env in envelopes {
            if let Some(ServerFault::PanicOnOffer { after }) = fault {
                if offered >= after {
                    panic!("injected batcher fault: PanicOnOffer after {after} requests");
                }
            }
            offered += 1;
            match batcher.offer(env.arrival_nanos, env.client, env.request) {
                Ok(Admission::Queued) => waiters.push(env.tx),
                Ok(Admission::Flushed(responses)) => {
                    waiters.push(env.tx);
                    dispatch(&shared, &mut waiters, responses);
                }
                Ok(Admission::Shed) => {
                    shared.settle(1);
                    let _ = env.tx.send(Err(CoreError::Shed));
                }
                Err(err) => {
                    // The batcher dropped its pending queue (corrupt-queue
                    // recovery): fail those tickets and this request's too.
                    fail_all(&shared, &mut waiters, &err);
                    shared.settle(1);
                    shared.failed.fetch_add(1, Ordering::AcqRel);
                    let _ = env.tx.send(Err(err));
                }
            }
        }

        // Phase 3: deadline-triggered flush.
        match batcher.poll(shared.now_nanos()) {
            Ok(Some((_trigger, responses))) => dispatch(&shared, &mut waiters, responses),
            Ok(None) => {}
            Err(err) => fail_all(&shared, &mut waiters, &err),
        }

        // Phase 4: shutdown once the queue is drained.
        if shutdown {
            let more = {
                let st = shared.lock_state();
                !st.queue.is_empty()
            };
            if more {
                // A submit raced the shutdown flag; loop once more to honor
                // its admitted slot.
                continue;
            }
            match batcher.drain(shared.now_nanos()) {
                Ok(responses) if responses.is_empty() => {}
                Ok(responses) => dispatch(&shared, &mut waiters, responses),
                Err(err) => fail_all(&shared, &mut waiters, &err),
            }
            break;
        }
    }
    fence.armed = false;
    batcher.into_parts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ThresholdPolicy;
    use crate::two_head::TwoHeadNet;
    use appeal_models::{ModelFamily, ModelSpec};
    use appeal_tensor::{SeededRng, Tensor};

    fn engine(max_batch: usize) -> Engine {
        let mut rng = SeededRng::new(3);
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        Engine::builder()
            .appealnet(TwoHeadNet::from_parts(little, &mut rng))
            .big(big)
            .policy(ThresholdPolicy::new(0.5).unwrap())
            .max_batch(max_batch)
            .build()
            .unwrap()
    }

    #[test]
    fn answers_requests_and_reports_stats() {
        let server = Server::start(
            engine(4),
            ServerConfig {
                queue_capacity: 64,
                deadline: Duration::from_millis(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handle = server.handle();
        let mut rng = SeededRng::new(31);
        let tickets: Vec<Ticket> = (0..6u64)
            .map(|id| {
                let image = Tensor::randn(&[3, 12, 12], &mut rng);
                handle
                    .submit((id % 2) as u32, InferenceRequest::new(id, image))
                    .unwrap()
            })
            .collect();
        for (id, ticket) in tickets.into_iter().enumerate() {
            let served = ticket.wait().unwrap();
            assert_eq!(served.response.id, id as u64);
        }
        assert_eq!(handle.in_flight(), 0);
        let (returned_engine, stats) = server.shutdown().unwrap();
        assert_eq!(stats.answered, 6);
        assert_eq!(stats.engine.requests, 6);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.clients.len(), 2);
        assert!((stats.fairness_index() - 1.0).abs() < 1e-12);
        assert_eq!(returned_engine.pending(), 0);
    }

    #[test]
    fn rejects_malformed_shapes_on_the_client_thread() {
        let server = Server::start(engine(4), ServerConfig::default()).unwrap();
        let handle = server.handle();
        let mut rng = SeededRng::new(32);
        let bad = Tensor::randn(&[3, 11, 12], &mut rng);
        assert!(matches!(
            handle.submit(0, InferenceRequest::new(0, bad)).unwrap_err(),
            CoreError::ShapeMismatch { .. }
        ));
        assert_eq!(handle.in_flight(), 0, "rejected requests hold no slot");
        let (_, stats) = server.shutdown().unwrap();
        assert_eq!(stats.offered, 0);
    }

    #[test]
    fn submit_after_shutdown_is_server_stopped() {
        let server = Server::start(engine(4), ServerConfig::default()).unwrap();
        let handle = server.handle();
        let (_, _) = server.shutdown().unwrap();
        let mut rng = SeededRng::new(33);
        let image = Tensor::randn(&[3, 12, 12], &mut rng);
        assert_eq!(
            handle
                .submit(0, InferenceRequest::new(0, image))
                .unwrap_err(),
            CoreError::ServerStopped
        );
        assert_eq!(handle.in_flight(), 0);
    }

    #[test]
    fn drop_drains_admitted_requests() {
        let server = Server::start(
            engine(64),
            ServerConfig {
                queue_capacity: 8,
                deadline: Duration::from_secs(600),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handle = server.handle();
        let mut rng = SeededRng::new(34);
        let image = Tensor::randn(&[3, 12, 12], &mut rng);
        let ticket = handle.submit(0, InferenceRequest::new(7, image)).unwrap();
        // Dropping the server (no explicit shutdown) must still answer the
        // admitted request via the drain flush, not strand the ticket.
        drop(server);
        let served = ticket.wait().unwrap();
        assert_eq!(served.response.id, 7);
    }

    #[test]
    fn per_request_deadline_is_a_typed_timeout() {
        // A 600 s coalescing deadline and a huge max_batch guarantee the
        // answer cannot arrive before the 1 ms request deadline does.
        let server = Server::start(
            engine(64),
            ServerConfig {
                queue_capacity: 8,
                deadline: Duration::from_secs(600),
                request_deadline: Some(Duration::from_millis(1)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handle = server.handle();
        let mut rng = SeededRng::new(35);
        let image = Tensor::randn(&[3, 12, 12], &mut rng);
        let ticket = handle.submit(0, InferenceRequest::new(0, image)).unwrap();
        assert_eq!(
            ticket.wait().unwrap_err(),
            CoreError::DeadlineExceeded {
                deadline: Duration::from_millis(1)
            }
        );
        // The abandoned request still drains and settles at shutdown.
        let (_, stats) = server.shutdown().unwrap();
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn panicked_batcher_fails_tickets_with_a_typed_error() {
        let server = Server::start(
            engine(64),
            ServerConfig {
                queue_capacity: 8,
                deadline: Duration::from_secs(600),
                fault: Some(ServerFault::PanicOnOffer { after: 0 }),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handle = server.handle();
        let mut rng = SeededRng::new(36);
        let image = Tensor::randn(&[3, 12, 12], &mut rng);
        let ticket = handle.submit(0, InferenceRequest::new(0, image)).unwrap();
        // The fence must resolve the ticket with the typed verdict well
        // within this bound — a hang here is the regression being guarded.
        assert_eq!(
            ticket.wait_deadline(Duration::from_secs(30)).unwrap_err(),
            CoreError::BatcherPanicked
        );
        // Later submissions see the dead batcher, not a silent queue.
        let image = Tensor::randn(&[3, 12, 12], &mut rng);
        assert_eq!(
            handle
                .submit(0, InferenceRequest::new(1, image))
                .unwrap_err(),
            CoreError::BatcherPanicked
        );
        assert_eq!(server.shutdown().unwrap_err(), CoreError::BatcherPanicked);
    }
}
