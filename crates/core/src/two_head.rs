//! The two-head little network (paper Fig. 2).
//!
//! A shared backbone (feature extractor) feeds an *approximator head* that
//! produces class logits and a *predictor head* — a single fully-connected
//! layer followed by a sigmoid — that produces `q(1|x)`, the probability that
//! the little network's answer is trustworthy for this input.

use appeal_models::{ClassifierParts, ModelSpec};
use appeal_tensor::layers::{Dense, Sequential, Sigmoid};
use appeal_tensor::loss::SoftmaxCrossEntropy;
use appeal_tensor::{Layer, Param, SeededRng, Tensor};

/// Output of one forward pass through the two-head network.
#[derive(Debug, Clone)]
pub struct TwoHeadOutput {
    /// Class logits from the approximator head, `[n, num_classes]`.
    pub logits: Tensor,
    /// Predictor outputs `q(1|x) ∈ [0, 1]`, one per sample.
    pub q: Vec<f32>,
}

impl TwoHeadOutput {
    /// Softmax class probabilities of the approximator head.
    pub fn probabilities(&self) -> Tensor {
        SoftmaxCrossEntropy::new().probabilities(&self.logits)
    }

    /// Predicted class per sample.
    pub fn predictions(&self) -> Vec<usize> {
        self.logits.argmax_rows()
    }
}

/// The AppealNet two-head little network.
///
/// Built from a [`ClassifierParts`] little model by re-using its backbone and
/// classifier head as feature extractor / approximator head and inserting a
/// freshly initialized predictor head — exactly the "initialize from the
/// pre-trained little network, then insert the predictor head" step of the
/// paper's Algorithm 1.
///
/// Cloning replicates the full network; the parallel evaluation engine uses
/// this to give each worker thread its own replica.
#[derive(Clone)]
pub struct TwoHeadNet {
    backbone: Sequential,
    approximator_head: Sequential,
    predictor_head: Sequential,
    feature_dim: usize,
    spec: ModelSpec,
}

impl std::fmt::Debug for TwoHeadNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TwoHeadNet(spec={}, feature_dim={})",
            self.spec, self.feature_dim
        )
    }
}

impl TwoHeadNet {
    /// Creates a two-head network from a (possibly pre-trained) little model,
    /// inserting a new predictor head.
    pub fn from_parts(parts: ClassifierParts, rng: &mut SeededRng) -> Self {
        let ClassifierParts {
            backbone,
            head,
            feature_dim,
            spec,
        } = parts;
        let predictor_head = Sequential::new(vec![
            Box::new(Dense::new(feature_dim, 1, rng)),
            Box::new(Sigmoid::new()),
        ]);
        Self {
            backbone,
            approximator_head: head,
            predictor_head,
            feature_dim,
            spec,
        }
    }

    /// The model specification of the underlying little network.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Dimensionality of the shared feature vector.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of classes produced by the approximator head.
    pub fn num_classes(&self) -> usize {
        self.spec.num_classes
    }

    /// Runs the network on a batch of images.
    pub fn forward(&mut self, images: &Tensor, train: bool) -> TwoHeadOutput {
        let features = self.backbone.forward(images, train);
        let logits = self.approximator_head.forward(&features, train);
        let q_tensor = self.predictor_head.forward(&features, train);
        let q = q_tensor.data().to_vec();
        TwoHeadOutput { logits, q }
    }

    /// Backpropagates gradients from both heads.
    ///
    /// `grad_logits` is the gradient of the loss with respect to the
    /// approximator logits; `grad_q` is the gradient with respect to the
    /// predictor output `q` (after the sigmoid), shaped `[n, 1]`.
    /// The two head gradients are merged at the shared feature vector and
    /// propagated through the backbone, mirroring the joint optimization of
    /// `(f1, q)` in the paper.
    ///
    /// # Panics
    ///
    /// Panics if called before [`TwoHeadNet::forward`].
    pub fn backward(&mut self, grad_logits: &Tensor, grad_q: &Tensor) {
        let grad_from_approx = self.approximator_head.backward(grad_logits);
        let grad_from_pred = self.predictor_head.backward(grad_q);
        let merged = grad_from_approx.add(&grad_from_pred);
        let _ = self.backbone.backward(&merged);
    }

    /// All trainable parameters (backbone + both heads).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.backbone.params_mut();
        params.extend(self.approximator_head.params_mut());
        params.extend(self.predictor_head.params_mut());
        params
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Drops all forward-pass activation caches (see [`Layer::clear_cache`]).
    pub fn clear_cache(&mut self) {
        self.backbone.clear_cache();
        self.approximator_head.clear_cache();
        self.predictor_head.clear_cache();
    }

    /// Total number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// FLOPs of one inference for a single sample (backbone + both heads).
    ///
    /// This is the edge cost `cost(f1, q)` of the paper's Eq. 5: the predictor
    /// head rides along with the little network at negligible extra cost.
    pub fn flops(&self) -> u64 {
        let input_shape = self.spec.input_shape.to_vec();
        let backbone = self.backbone.flops(&input_shape);
        let feature_shape = self.backbone.output_shape(&input_shape);
        backbone
            + self.approximator_head.flops(&feature_shape)
            + self.predictor_head.flops(&feature_shape)
    }

    /// FLOPs of the predictor head alone (to quantify its overhead).
    pub fn predictor_head_flops(&self) -> u64 {
        let input_shape = self.spec.input_shape.to_vec();
        let feature_shape = self.backbone.output_shape(&input_shape);
        self.predictor_head.flops(&feature_shape)
    }

    /// Switches the little network to the quantized (Q8_0) weight tier.
    ///
    /// Quantizes every dense and convolution weight in the backbone and both
    /// heads, returning the per-layer round-trip reports (aggregate them with
    /// [`appeal_tensor::quant::QuantReportSummary::from_reports`]). Subsequent
    /// eval-mode forwards run the int8 GEMM under the "quantized-tolerance"
    /// numeric contract; training forwards keep using the f32 weights.
    pub fn quantize_weights(&mut self) -> Vec<appeal_tensor::quant::QuantLayerReport> {
        let mut reports = self.backbone.quantize_weights();
        reports.extend(self.approximator_head.quantize_weights());
        reports.extend(self.predictor_head.quantize_weights());
        reports
    }

    /// `true` once [`TwoHeadNet::quantize_weights`] has installed the int8 tier.
    pub fn is_quantized(&self) -> bool {
        self.backbone.is_quantized()
            || self.approximator_head.is_quantized()
            || self.predictor_head.is_quantized()
    }

    /// Calibrates static activation scales for the quantized tier from a
    /// representative input set.
    ///
    /// Runs sequential eval forwards over `images` in batches while each
    /// quantized layer observes the absolute maximum of its inputs, then
    /// freezes every observation into a static power-of-two activation scale.
    /// The observed maximum is order-independent, so the frozen scales (and
    /// all subsequent outputs) do not depend on `batch_size`.
    ///
    /// Calibration must run on this instance directly (not through the
    /// replica-based parallel evaluator) because observation mutates layer
    /// state. A no-op unless [`TwoHeadNet::quantize_weights`] ran first.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn calibrate_activation_scales(&mut self, images: &Tensor, batch_size: usize) {
        assert!(batch_size > 0, "batch_size must be positive");
        self.backbone.begin_calibration();
        self.approximator_head.begin_calibration();
        self.predictor_head.begin_calibration();
        let n = images.shape()[0];
        let mut start = 0;
        while start < n {
            let end = (start + batch_size).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let batch = images.select_rows(&idx);
            let _ = self.forward(&batch, false);
            start = end;
        }
        self.backbone.end_calibration();
        self.approximator_head.end_calibration();
        self.predictor_head.end_calibration();
    }

    /// Runs inference over a dataset in batches and concatenates the outputs.
    ///
    /// Large workloads are sharded across worker threads per the runtime
    /// [`crate::parallel::ChunkPolicy`]; the output is identical to (and in
    /// the same order as) a sequential pass.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn evaluate(&mut self, images: &Tensor, batch_size: usize) -> TwoHeadOutput {
        self.evaluate_with_policy(images, batch_size, &crate::parallel::ChunkPolicy::runtime())
    }

    /// Like [`TwoHeadNet::evaluate`] with an explicit chunking policy.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn evaluate_with_policy(
        &mut self,
        images: &Tensor,
        batch_size: usize,
        policy: &crate::parallel::ChunkPolicy,
    ) -> TwoHeadOutput {
        crate::parallel::two_head_output(self, images, batch_size, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_models::{ModelFamily, ModelSpec};

    fn small_two_head(classes: usize) -> TwoHeadNet {
        let mut rng = SeededRng::new(1);
        let parts =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], classes).build(&mut rng);
        TwoHeadNet::from_parts(parts, &mut rng)
    }

    #[test]
    fn forward_produces_logits_and_q_in_range() {
        let mut net = small_two_head(10);
        let mut rng = SeededRng::new(2);
        let x = Tensor::randn(&[4, 3, 12, 12], &mut rng);
        let out = net.forward(&x, true);
        assert_eq!(out.logits.shape(), &[4, 10]);
        assert_eq!(out.q.len(), 4);
        assert!(out.q.iter().all(|&q| (0.0..=1.0).contains(&q)));
        assert_eq!(out.predictions().len(), 4);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut net = small_two_head(5);
        let mut rng = SeededRng::new(3);
        let x = Tensor::randn(&[3, 3, 12, 12], &mut rng);
        let out = net.forward(&x, false);
        let probs = out.probabilities();
        for i in 0..3 {
            assert!((probs.row(i).sum() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn predictor_head_overhead_is_tiny() {
        let net = small_two_head(10);
        let overhead = net.predictor_head_flops() as f64 / net.flops() as f64;
        assert!(
            overhead < 0.02,
            "predictor head should add <2% FLOPs, added {:.3}%",
            overhead * 100.0
        );
    }

    #[test]
    fn param_count_exceeds_plain_little_model() {
        let mut rng = SeededRng::new(4);
        let mut plain =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
        let plain_params = plain.param_count();
        let mut net = small_two_head(10);
        // The two-head net adds exactly feature_dim + 1 parameters (Dense(feature_dim, 1)).
        assert_eq!(net.param_count(), plain_params + net.feature_dim() + 1);
    }

    #[test]
    fn backward_accumulates_gradients_in_all_parts() {
        let mut net = small_two_head(4);
        let mut rng = SeededRng::new(5);
        let x = Tensor::randn(&[2, 3, 12, 12], &mut rng);
        let out = net.forward(&x, true);
        let grad_logits = Tensor::ones(out.logits.shape());
        let grad_q = Tensor::ones(&[2, 1]);
        net.backward(&grad_logits, &grad_q);
        let any_nonzero = net
            .params_mut()
            .iter()
            .filter(|p| p.grad.norm_sq() > 0.0)
            .count();
        assert!(any_nonzero >= 3, "gradients should reach most parameters");
        net.zero_grad();
        assert!(net.params_mut().iter().all(|p| p.grad.norm_sq() == 0.0));
    }

    #[test]
    fn evaluate_matches_single_batch_forward() {
        let mut net = small_two_head(6);
        let mut rng = SeededRng::new(6);
        let x = Tensor::randn(&[7, 3, 12, 12], &mut rng);
        let full = net.forward(&x, false);
        let batched = net.evaluate(&x, 3);
        assert!(full.logits.max_abs_diff(&batched.logits) < 1e-4);
        for (a, b) in full.q.iter().zip(batched.q.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn quantized_net_tracks_f32_within_reported_bounds() {
        let mut net = small_two_head(6);
        let mut rng = SeededRng::new(8);
        let x = Tensor::randn(&[6, 3, 12, 12], &mut rng);
        let f32_out = net.forward(&x, false);
        assert!(!net.is_quantized());
        let reports = net.quantize_weights();
        assert!(net.is_quantized());
        assert!(
            reports.len() >= 3,
            "backbone + both heads should contribute reports, got {}",
            reports.len()
        );
        assert!(reports.iter().all(|r| r.within_bound()));
        let summary = appeal_tensor::quant::QuantReportSummary::from_reports(&reports);
        assert!(summary.within_bound());
        assert!(
            summary.compression() > 1.5,
            "Q8_0 should compress weights well, got {:.2}x",
            summary.compression()
        );
        let q_out = net.forward(&x, false);
        assert_eq!(q_out.logits.shape(), f32_out.logits.shape());
        assert!(q_out.q.iter().all(|&q| (0.0..=1.0).contains(&q)));
        for (a, b) in q_out.logits.data().iter().zip(f32_out.logits.data()) {
            assert!(
                (a - b).abs() < 0.5,
                "quantized logit {a} too far from f32 {b}"
            );
        }
    }

    #[test]
    fn quantized_evaluate_matches_direct_forward() {
        let mut net = small_two_head(5);
        let mut rng = SeededRng::new(9);
        let x = Tensor::randn(&[7, 3, 12, 12], &mut rng);
        net.quantize_weights();
        let full = net.forward(&x, false);
        let batched = net.evaluate(&x, 3);
        // Quantized activations are scaled per sample (per GEMM row /
        // receptive field), so batching cannot change any row's scale and the
        // batched pass reproduces the single-batch pass bit for bit.
        for (a, b) in full.logits.data().iter().zip(batched.logits.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in full.q.iter().zip(batched.q.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn calibration_is_batch_size_invariant() {
        let mut net = small_two_head(4);
        let mut rng = SeededRng::new(10);
        let x = Tensor::randn(&[9, 3, 12, 12], &mut rng);
        net.quantize_weights();
        let mut other = net.clone();
        net.calibrate_activation_scales(&x, 2);
        other.calibrate_activation_scales(&x, 9);
        let a = net.forward(&x, false);
        let b = other.forward(&x, false);
        for (p, q) in a.logits.data().iter().zip(b.logits.data()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        for (p, q) in a.q.iter().zip(b.q.iter()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn training_forward_unaffected_by_quantization() {
        let mut net = small_two_head(3);
        let mut rng = SeededRng::new(11);
        let x = Tensor::randn(&[2, 3, 12, 12], &mut rng);
        let before = net.forward(&x, true);
        net.quantize_weights();
        let after = net.forward(&x, true);
        for (a, b) in before.logits.data().iter().zip(after.logits.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn flops_close_to_plain_little_model() {
        let mut rng = SeededRng::new(7);
        let plain = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
        let plain_flops = plain.total_flops();
        let net = small_two_head(10);
        let ratio = net.flops() as f64 / plain_flops as f64;
        assert!(
            ratio < 1.02,
            "two-head FLOPs should be within 2% of the plain model"
        );
    }
}
