//! The rayon-backed batch evaluation engine.
//!
//! Evaluation passes (little network, big network, two-head network) are
//! embarrassingly parallel across samples: in eval mode every layer is a pure
//! function of its parameters, so a batch can be split into contiguous shards
//! and each shard evaluated on its own worker thread against a *replica* of
//! the model (layers are `&mut self` because they cache activations for
//! backward, so workers cannot share one instance).
//!
//! Two properties hold by construction:
//!
//! * **Determinism.** Shards are contiguous index ranges and results are
//!   concatenated in index order; per-sample outputs do not depend on which
//!   shard evaluated them (eval-mode forward passes are per-sample pure). A
//!   run with 1 thread and a run with 16 produce bit-identical artifacts.
//! * **Smoke stays cheap.** The [`ChunkPolicy`] refuses to shard workloads
//!   smaller than a fidelity-dependent floor, so smoke-scale tests (30-sample
//!   test splits) take the plain sequential path with zero clone or spawn
//!   overhead.

use crate::two_head::{TwoHeadNet, TwoHeadOutput};
use appeal_dataset::Fidelity;
use appeal_models::ClassifierParts;
use appeal_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Decides how a batch evaluation workload is split across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkPolicy {
    /// Minimum number of samples a shard must contain. Workloads smaller
    /// than `2 * min_shard` are not split at all.
    pub min_shard: usize,
    /// Upper bound on the number of shards (and therefore worker threads).
    pub max_shards: usize,
}

impl ChunkPolicy {
    /// Policy tuned for a fidelity level.
    ///
    /// Smoke workloads are tiny (tens of samples); sharding them would be
    /// pure overhead, so the smoke policy keeps everything sequential. Paper
    /// workloads are hundreds to thousands of samples and shard freely.
    pub fn for_fidelity(fidelity: Fidelity) -> Self {
        match fidelity {
            Fidelity::Smoke => Self {
                min_shard: 256,
                max_shards: rayon::current_num_threads(),
            },
            Fidelity::Paper => Self {
                min_shard: 32,
                max_shards: rayon::current_num_threads(),
            },
        }
    }

    /// Default policy for runtime paths that do not know the fidelity
    /// (deployed [`crate::system::CollaborativeSystem`] batches, training-time
    /// evaluation helpers): shard anything with at least 32 samples per worker.
    pub fn runtime() -> Self {
        Self {
            min_shard: 32,
            max_shards: rayon::current_num_threads(),
        }
    }

    /// A policy that never shards (sequential execution).
    pub fn sequential() -> Self {
        Self {
            min_shard: usize::MAX,
            max_shards: 1,
        }
    }

    /// Divides this policy's worker budget among `branches` concurrent
    /// pipelines so their combined thread count stays at the original
    /// budget (the vendored rayon shim has no shared pool to cap it).
    pub fn split_across(&self, branches: usize) -> Self {
        Self {
            min_shard: self.min_shard,
            max_shards: (self.max_shards / branches.max(1)).max(1),
        }
    }

    /// Splits `0..n` into contiguous shards according to the policy.
    /// Returns a single shard when parallelism is not worthwhile: workloads
    /// smaller than `2 * min_shard` are never split, so every produced shard
    /// holds at least `min_shard` samples.
    pub fn shards(&self, n: usize) -> Vec<Range<usize>> {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.max_shards.max(1);
        let shard = n.div_ceil(workers).max(self.min_shard.max(1));
        if shard >= n || n < self.min_shard.saturating_mul(2) {
            return std::iter::once(0..n).collect();
        }
        let mut out = Vec::with_capacity(n.div_ceil(shard));
        let mut start = 0;
        while start < n {
            let mut end = (start + shard).min(n);
            // A residual tail shorter than min_shard is not worth a worker
            // (and its model replica); fold it into this shard instead.
            if n - end < self.min_shard {
                end = n;
            }
            out.push(start..end);
            start = end;
        }
        out
    }

    /// Number of shards the policy would use for `n` samples.
    pub fn shard_count(&self, n: usize) -> usize {
        self.shards(n).len()
    }
}

/// Models that can be replicated onto evaluation worker threads.
///
/// A replica carries the parameters and running statistics a worker needs
/// for eval-mode forward passes, but drops the source's forward-pass
/// activation caches — workers rebuild what they need on their first batch,
/// so copying (and retaining) cached training activations is pure waste.
/// Kernel scratch arenas (`appeal_tensor::kernels::KernelScratch`) behave
/// the same way by construction: cloning a layer yields empty scratch, and
/// each replica grows its own high-water buffers on its first batch and
/// reuses them for the rest of its life.
pub trait Replica: Sync {
    /// Clones `self` for a worker, dropping activation caches.
    fn replica(&self) -> Self;
}

impl Replica for ClassifierParts {
    fn replica(&self) -> Self {
        let mut model = self.clone();
        model.clear_cache();
        model
    }
}

impl Replica for TwoHeadNet {
    fn replica(&self) -> Self {
        let mut net = self.clone();
        net.clear_cache();
        net
    }
}

/// Evaluates `n` samples by sharding them across worker threads, each thread
/// working on its own [`Replica`] of `model`. Shard results are returned in
/// index order.
///
/// `eval` receives a mutable model replica and the shard's sample range; it
/// must not depend on anything but the replica's parameters and the range
/// (which holds for all eval-mode forward passes).
///
/// Callers holding `&mut M` should handle the single-shard case with a
/// clone-free sequential pass on the original model (as the entry points in
/// this module do); this function still handles it correctly by replicating
/// once.
pub fn shard_eval<M, R, F>(model: &M, n: usize, policy: &ChunkPolicy, eval: F) -> Vec<R>
where
    M: Replica,
    R: Send,
    F: Fn(&mut M, Range<usize>) -> R + Sync,
{
    let shards = policy.shards(n);
    if shards.is_empty() {
        return Vec::new();
    }
    if shards.len() == 1 {
        let mut replica = model.replica();
        return vec![eval(&mut replica, 0..n)];
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(shards.len(), || None);
    rayon::scope(|s| {
        for (shard, slot) in shards.into_iter().zip(slots.iter_mut()) {
            let eval = &eval;
            s.spawn(move |_| {
                // Keep per-sample kernels serial inside shard workers: the
                // batch is already parallel at this level, and the vendored
                // rayon shim has no pool to cap nested thread spawns.
                let _serial = appeal_tensor::kernels::enter_worker_region();
                let mut replica = model.replica();
                *slot = Some(eval(&mut replica, shard));
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("evaluation shard did not produce a result"))
        .collect()
}

/// Sequential core of a classifier evaluation pass: runs `model` over the
/// samples of `range` in `batch_size` mini-batches and returns one logits row
/// per sample, in order.
pub(crate) fn logits_rows(
    model: &mut ClassifierParts,
    images: &Tensor,
    range: Range<usize>,
    batch_size: usize,
) -> Vec<Tensor> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut rows = Vec::with_capacity(range.len());
    let mut start = range.start;
    while start < range.end {
        let end = (start + batch_size).min(range.end);
        let idx: Vec<usize> = (start..end).collect();
        let batch = images.select_rows(&idx);
        let logits = model.forward(&batch, false);
        for i in 0..(end - start) {
            rows.push(logits.row(i));
        }
        start = end;
    }
    rows
}

/// Runs a classifier over a dataset in mini-batches, sharding the samples
/// across worker threads per `policy`, and returns the stacked logits.
///
/// Workloads the policy keeps on a single shard are evaluated in place on
/// the calling thread — no model replica is cloned.
pub fn classifier_logits(
    model: &mut ClassifierParts,
    images: &Tensor,
    batch_size: usize,
    policy: &ChunkPolicy,
) -> Tensor {
    let n = images.shape()[0];
    let rows: Vec<Tensor> = if policy.shard_count(n) <= 1 {
        logits_rows(model, images, 0..n, batch_size)
    } else {
        shard_eval(&*model, n, policy, |m, range| {
            logits_rows(m, images, range, batch_size)
        })
        .into_iter()
        .flatten()
        .collect()
    };
    Tensor::stack_rows(&rows)
}

/// Per-sample correctness of a classifier over a labelled dataset, evaluated
/// in parallel per `policy`.
pub fn classifier_correctness(
    model: &mut ClassifierParts,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    policy: &ChunkPolicy,
) -> Vec<bool> {
    classifier_logits(model, images, batch_size, policy)
        .argmax_rows()
        .iter()
        .zip(labels.iter())
        .map(|(p, y)| p == y)
        .collect()
}

/// Sequential core of a two-head evaluation pass over `range`.
pub(crate) fn two_head_rows(
    net: &mut TwoHeadNet,
    images: &Tensor,
    range: Range<usize>,
    batch_size: usize,
) -> (Vec<Tensor>, Vec<f32>) {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut rows = Vec::with_capacity(range.len());
    let mut q = Vec::with_capacity(range.len());
    let mut start = range.start;
    while start < range.end {
        let end = (start + batch_size).min(range.end);
        let idx: Vec<usize> = (start..end).collect();
        let batch = images.select_rows(&idx);
        let out = net.forward(&batch, false);
        for i in 0..(end - start) {
            rows.push(out.logits.row(i));
        }
        q.extend_from_slice(&out.q);
        start = end;
    }
    (rows, q)
}

/// Runs the two-head network over a dataset in mini-batches, sharding the
/// samples across worker threads per `policy`.
///
/// Workloads the policy keeps on a single shard are evaluated in place on
/// the calling thread — no model replica is cloned.
pub fn two_head_output(
    net: &mut TwoHeadNet,
    images: &Tensor,
    batch_size: usize,
    policy: &ChunkPolicy,
) -> TwoHeadOutput {
    let n = images.shape()[0];
    if policy.shard_count(n) <= 1 {
        let (rows, q) = two_head_rows(net, images, 0..n, batch_size);
        return TwoHeadOutput {
            logits: Tensor::stack_rows(&rows),
            q,
        };
    }
    let shards = shard_eval(&*net, n, policy, |m, range| {
        two_head_rows(m, images, range, batch_size)
    });
    let mut rows = Vec::with_capacity(n);
    let mut q = Vec::with_capacity(n);
    for (shard_rows, shard_q) in shards {
        rows.extend(shard_rows);
        q.extend(shard_q);
    }
    TwoHeadOutput {
        logits: Tensor::stack_rows(&rows),
        q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain data stands in for a model in the sharding tests.
    impl Replica for usize {
        fn replica(&self) -> Self {
            *self
        }
    }

    #[test]
    fn smoke_policy_never_shards_small_workloads() {
        let policy = ChunkPolicy::for_fidelity(Fidelity::Smoke);
        assert_eq!(policy.shard_count(30), 1);
        assert_eq!(policy.shard_count(255), 1);
    }

    #[test]
    fn runtime_policy_shards_large_batches() {
        let policy = ChunkPolicy {
            min_shard: 32,
            max_shards: 4,
        };
        assert_eq!(policy.shard_count(16), 1);
        assert_eq!(policy.shard_count(64), 2);
        let shards = policy.shards(128);
        assert_eq!(shards.len(), 4);
        // Shards tile 0..n contiguously.
        let mut expected_start = 0;
        for s in &shards {
            assert_eq!(s.start, expected_start);
            expected_start = s.end;
        }
        assert_eq!(expected_start, 128);
    }

    #[test]
    fn every_shard_meets_the_min_shard_floor() {
        let policy = ChunkPolicy {
            min_shard: 32,
            max_shards: 8,
        };
        for n in [1, 31, 33, 63, 64, 65, 100, 127, 129, 255, 1000] {
            for s in policy.shards(n) {
                assert!(
                    s.len() >= 32.min(n),
                    "n={n}: shard {s:?} is below the min_shard floor"
                );
            }
        }
        // Workloads below 2 * min_shard are never split at all.
        assert_eq!(policy.shard_count(63), 1);
        assert_eq!(policy.shard_count(33), 1);
    }

    #[test]
    fn sequential_policy_is_one_shard() {
        let policy = ChunkPolicy::sequential();
        assert_eq!(policy.shard_count(1_000_000), 1);
    }

    #[test]
    fn shards_of_empty_workload_is_empty() {
        assert!(ChunkPolicy::runtime().shards(0).is_empty());
    }

    #[test]
    fn shard_eval_concatenates_in_index_order() {
        let policy = ChunkPolicy {
            min_shard: 8,
            max_shards: 4,
        };
        // "Model" is a base offset; eval returns the sample indices plus base.
        let model = 1000usize;
        let results = shard_eval(&model, 100, &policy, |m, range| {
            range.map(|i| *m + i).collect::<Vec<_>>()
        });
        let flat: Vec<usize> = results.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).map(|i| 1000 + i).collect::<Vec<_>>());
    }

    #[test]
    fn shard_eval_matches_sequential_result() {
        let seq = shard_eval(&0usize, 50, &ChunkPolicy::sequential(), |_, r| {
            r.map(|i| i * i).collect::<Vec<_>>()
        });
        let par = shard_eval(
            &0usize,
            50,
            &ChunkPolicy {
                min_shard: 4,
                max_shards: 8,
            },
            |_, r| r.map(|i| i * i).collect::<Vec<_>>(),
        );
        let seq: Vec<usize> = seq.into_iter().flatten().collect();
        let par: Vec<usize> = par.into_iter().flatten().collect();
        assert_eq!(seq, par);
    }
}
