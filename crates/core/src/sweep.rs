//! Skipping-rate sweeps across routing methods (the shape of the paper's Fig. 5).

use crate::error::{CoreError, CoreResult};
use crate::metrics::RoutedMetrics;
use crate::scores::ScoreKind;
use crate::system::EvaluationArtifacts;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The accuracy-vs-skipping-rate curve of one routing method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodSeries {
    /// Routing score used by this method.
    pub score: ScoreKind,
    /// One metrics point per requested skipping rate.
    pub points: Vec<RoutedMetrics>,
}

impl MethodSeries {
    /// The overall accuracies of the series, in sweep order.
    pub fn accuracies(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.overall_accuracy).collect()
    }
}

/// Result of sweeping several methods over a skipping-rate grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The requested skipping rates (fractions in `[0, 1]`).
    pub skipping_rates: Vec<f64>,
    /// One curve per method.
    pub series: Vec<MethodSeries>,
    /// Stand-alone accuracy of the big network (the dashed reference line in Fig. 5).
    pub big_accuracy: f64,
    /// Stand-alone accuracy of the little network.
    pub little_accuracy: f64,
}

impl SweepResult {
    /// The series for a particular score kind, if present.
    pub fn series_for(&self, score: ScoreKind) -> Option<&MethodSeries> {
        self.series.iter().find(|s| s.score == score)
    }

    /// Number of sweep points where `a` achieves an overall accuracy at least
    /// as high as `b` (used to verify "AppealNet is above the baselines in
    /// most cases").
    pub fn wins(&self, a: ScoreKind, b: ScoreKind) -> usize {
        match (self.series_for(a), self.series_for(b)) {
            (Some(sa), Some(sb)) => sa
                .points
                .iter()
                .zip(sb.points.iter())
                .filter(|(pa, pb)| pa.overall_accuracy + 1e-12 >= pb.overall_accuracy)
                .count(),
            _ => 0,
        }
    }
}

/// The skipping-rate grid used throughout the paper's Fig. 5: 70% to 100% in 5% steps.
pub fn paper_sr_grid() -> Vec<f64> {
    (0..=6).map(|i| 0.70 + 0.05 * i as f64).collect()
}

/// Evaluates each method's artifacts at every requested skipping rate.
///
/// Methods are swept on separate worker threads, and each method sorts its
/// scores once for the whole grid instead of once per rate. The output is
/// identical to (and ordered like) a sequential sweep.
///
/// Errors with [`CoreError::EmptyMethods`] if `methods` is empty, and
/// propagates [`CoreError::EmptyArtifacts`] / [`CoreError::InvalidScore`] /
/// [`CoreError::InvalidRate`] from any method's artifacts before the
/// parallel sweep starts.
pub fn sweep_methods(
    methods: &[(ScoreKind, &EvaluationArtifacts)],
    skipping_rates: &[f64],
) -> CoreResult<SweepResult> {
    if methods.is_empty() {
        return Err(CoreError::EmptyMethods);
    }
    // Validate everything up front so the sharded sweep below is infallible.
    for (_, artifacts) in methods {
        artifacts.validate()?;
    }
    if let Some(&bad) = skipping_rates.iter().find(|sr| !(0.0..=1.0).contains(*sr)) {
        return Err(CoreError::InvalidRate(bad));
    }
    let series: Vec<MethodSeries> = methods
        .par_iter()
        .map(|(score, artifacts)| MethodSeries {
            score: *score,
            points: artifacts
                .thresholds_for_skipping_rates(skipping_rates)
                .expect("methods validated before the sweep")
                .into_iter()
                .map(|t| artifacts.metrics_at(t))
                .collect(),
        })
        .collect();
    let reference = methods[0].1;
    let all_little =
        reference.little_correct.iter().filter(|&&c| c).count() as f64 / reference.len() as f64;
    let all_big =
        reference.big_correct.iter().filter(|&&c| c).count() as f64 / reference.len() as f64;
    Ok(SweepResult {
        skipping_rates: skipping_rates.to_vec(),
        series,
        big_accuracy: all_big,
        little_accuracy: all_little,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifacts(scores: Vec<f32>, little: Vec<bool>) -> EvaluationArtifacts {
        let n = scores.len();
        EvaluationArtifacts {
            scores,
            little_correct: little,
            big_correct: vec![true; n],
            hard_flags: vec![false; n],
            little_flops: 10,
            big_flops: 100,
            score_kind: ScoreKind::AppealNetQ,
        }
    }

    #[test]
    fn grid_matches_paper_range() {
        let grid = paper_sr_grid();
        assert_eq!(grid.len(), 7);
        assert!((grid[0] - 0.70).abs() < 1e-12);
        assert!((grid[6] - 1.00).abs() < 1e-12);
    }

    #[test]
    fn sweep_produces_one_point_per_rate_per_method() {
        let n = 20;
        let good = artifacts(
            (0..n).map(|i| i as f32 / n as f32).collect(),
            (0..n).map(|i| i >= 5).collect(),
        );
        let result = sweep_methods(&[(ScoreKind::AppealNetQ, &good)], &paper_sr_grid()).unwrap();
        assert_eq!(result.series.len(), 1);
        assert_eq!(result.series[0].points.len(), 7);
        assert!(result.big_accuracy > result.little_accuracy);
    }

    #[test]
    fn oracle_scores_beat_random_scores() {
        let n = 40;
        // Oracle: score tracks correctness (with small unique offsets so every
        // skipping rate is achievable); random: score unrelated.
        let little: Vec<bool> = (0..n).map(|i| i % 4 != 0).collect();
        let oracle = artifacts(
            little
                .iter()
                .enumerate()
                .map(|(i, &c)| if c { 0.9 } else { 0.1 } + i as f32 * 1e-4)
                .collect(),
            little.clone(),
        );
        let random = artifacts((0..n).map(|i| (i % 7) as f32 / 7.0).collect(), little);
        let result = sweep_methods(
            &[(ScoreKind::AppealNetQ, &oracle), (ScoreKind::Msp, &random)],
            &paper_sr_grid(),
        )
        .unwrap();
        let wins = result.wins(ScoreKind::AppealNetQ, ScoreKind::Msp);
        assert!(wins >= 6, "oracle should dominate, won {wins}/7");
    }

    #[test]
    fn accuracy_declines_as_skipping_rate_grows_for_imperfect_little_model() {
        let n = 50;
        let little: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let a = artifacts(
            little.iter().map(|&c| if c { 0.8 } else { 0.2 }).collect(),
            little,
        );
        let result = sweep_methods(&[(ScoreKind::AppealNetQ, &a)], &[0.0, 0.5, 1.0]).unwrap();
        let accs = result.series[0].accuracies();
        assert!(accs[0] >= accs[2]);
    }

    #[test]
    fn invalid_sweeps_are_reported_not_panicked() {
        assert_eq!(
            sweep_methods(&[], &[0.5]).unwrap_err(),
            CoreError::EmptyMethods
        );
        let mut nan = artifacts(vec![0.1, 0.9], vec![false, true]);
        nan.scores[1] = f32::NAN;
        assert_eq!(
            sweep_methods(&[(ScoreKind::Msp, &nan)], &[0.5]).unwrap_err(),
            CoreError::InvalidScore { index: 1 }
        );
        let ok = artifacts(vec![0.1, 0.9], vec![false, true]);
        assert_eq!(
            sweep_methods(&[(ScoreKind::Msp, &ok)], &[0.5, 1.5]).unwrap_err(),
            CoreError::InvalidRate(1.5)
        );
    }

    #[test]
    fn series_lookup() {
        let a = artifacts(vec![0.1, 0.9], vec![false, true]);
        let result = sweep_methods(&[(ScoreKind::Msp, &a)], &[1.0]).unwrap();
        assert!(result.series_for(ScoreKind::Msp).is_some());
        assert!(result.series_for(ScoreKind::Entropy).is_none());
    }
}
