//! Pluggable routing policies: who answers each request, edge or cloud.
//!
//! The paper deploys exactly one rule (Eq. 1): keep the input on the edge
//! when `q(1|x) ≥ δ`. A serving system needs that rule as *one policy among
//! several* — a fixed threshold ([`ThresholdPolicy`]), a threshold guarded by
//! a running cost budget ([`BudgetPolicy`], the budgeted reading of Eq. 7),
//! and a threshold calibrated offline from evaluation artifacts to hit a
//! target skipping rate or accuracy ([`CalibratedPolicy`], the Table I / II
//! tuning queries promoted to a deployable object).
//!
//! Policies are *stateful* and are consulted **in input order**, so decisions
//! that depend on history (a draining budget) remain deterministic even when
//! score computation is sharded across worker threads.

use crate::error::{CoreError, CoreResult};
use crate::scores::ScoreKind;
use crate::system::EvaluationArtifacts;
use crate::tuning;
use appeal_hw::{CostBudget, CostMeter, InferenceCost};
use serde::{Deserialize, Serialize};

/// Where one request was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Route {
    /// The little network's answer was trusted; the request stayed on the edge.
    Edge,
    /// The request was appealed to the big cloud network.
    Cloud,
}

impl Route {
    /// Returns `true` if the request was appealed to the cloud.
    pub fn is_cloud(&self) -> bool {
        matches!(self, Route::Cloud)
    }
}

/// Per-batch cost context a policy can consult when deciding.
#[derive(Debug, Clone, Copy)]
pub struct RoutingContext {
    /// Cost `c1` of answering on the edge (Eq. 5).
    pub edge_cost: InferenceCost,
    /// Cost `c0` of appealing to the cloud (edge pass + uplink + cloud pass).
    pub offload_cost: InferenceCost,
}

/// Decides, per scored input, whether it stays on the edge.
///
/// `decide` is called once per request in input order; implementations may
/// keep state (budgets, counters) across calls.
pub trait RoutingPolicy: Send {
    /// Short policy name for logs and stats.
    fn name(&self) -> &'static str;

    /// Routes one input given its edge score and the batch's cost context.
    fn decide(&mut self, score: f32, ctx: &RoutingContext) -> Route;
}

/// The paper's Eq. 1: keep the input on the edge iff `score ≥ δ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPolicy {
    delta: f64,
}

impl ThresholdPolicy {
    /// Creates the fixed-threshold policy.
    ///
    /// Returns [`CoreError::InvalidThreshold`] if `delta` is outside `[0, 1]`
    /// (predictor scores are probabilities) or NaN.
    pub fn new(delta: f64) -> CoreResult<Self> {
        if !(0.0..=1.0).contains(&delta) {
            return Err(CoreError::InvalidThreshold(delta));
        }
        Ok(Self { delta })
    }

    /// The routing threshold δ.
    pub fn threshold(&self) -> f64 {
        self.delta
    }
}

impl RoutingPolicy for ThresholdPolicy {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn decide(&mut self, score: f32, _ctx: &RoutingContext) -> Route {
        if (score as f64) >= self.delta {
            Route::Edge
        } else {
            Route::Cloud
        }
    }
}

/// Eq. 1 guarded by a running offload budget: difficult inputs are appealed
/// to the cloud *until the budget is exhausted*, after which everything stays
/// on the edge (graceful degradation instead of unbounded cloud spend).
///
/// Each appeal charges the full offload cost `c0` against the budget via an
/// [`appeal_hw::CostMeter`], so the budget can be expressed in FLOPs, energy
/// or latency — whatever the deployment actually pays for.
pub struct BudgetPolicy {
    delta: f64,
    budget: CostBudget,
    meter: CostMeter,
}

impl BudgetPolicy {
    /// Creates a budget policy with threshold `delta` and an offload budget.
    ///
    /// Returns [`CoreError::InvalidThreshold`] if `delta` is outside `[0, 1]`.
    pub fn new(delta: f64, budget: CostBudget) -> CoreResult<Self> {
        if !(0.0..=1.0).contains(&delta) {
            return Err(CoreError::InvalidThreshold(delta));
        }
        Ok(Self {
            delta,
            budget,
            meter: CostMeter::new(),
        })
    }

    /// The routing threshold δ.
    pub fn threshold(&self) -> f64 {
        self.delta
    }

    /// Offload cost charged so far.
    pub fn spent(&self) -> InferenceCost {
        self.meter.spent()
    }

    /// Number of requests appealed so far.
    pub fn appeals(&self) -> u64 {
        self.meter.charges()
    }

    /// Returns `true` if one more offload at `offload_cost` would exceed the
    /// budget.
    pub fn exhausted_for(&self, offload_cost: &InferenceCost) -> bool {
        !self.budget.admits(&self.meter.spent(), offload_cost)
    }

    /// Resets the spent meter (e.g. at the start of a new billing window).
    pub fn reset(&mut self) {
        self.meter.reset();
    }
}

impl RoutingPolicy for BudgetPolicy {
    fn name(&self) -> &'static str {
        "budget"
    }

    fn decide(&mut self, score: f32, ctx: &RoutingContext) -> Route {
        let wants_cloud = (score as f64) < self.delta;
        if wants_cloud && self.budget.admits(&self.meter.spent(), &ctx.offload_cost) {
            self.meter.charge(&ctx.offload_cost);
            Route::Cloud
        } else {
            Route::Edge
        }
    }
}

/// A threshold calibrated offline from [`EvaluationArtifacts`] to hit a
/// target operating point — the Table I / Table II tuning queries (Eq. 11–15
/// metrics) packaged as a deployable policy.
///
/// Unlike [`ThresholdPolicy`], the calibrated δ may legitimately sit outside
/// `[0, 1]` (e.g. "offload everything" is a threshold above the maximum
/// observed score), so no range restriction applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedPolicy {
    delta: f64,
    calibrated_from: ScoreKind,
}

impl CalibratedPolicy {
    /// Calibrates a threshold that keeps (approximately) a `target_sr`
    /// fraction of inputs on the edge — the quantile query behind Fig. 5.
    pub fn for_skipping_rate(artifacts: &EvaluationArtifacts, target_sr: f64) -> CoreResult<Self> {
        Ok(Self {
            delta: artifacts.threshold_for_skipping_rate(target_sr)?,
            calibrated_from: artifacts.score_kind,
        })
    }

    /// Calibrates the cheapest threshold whose overall accuracy (Eq. 13) is
    /// at least `target_accuracy` — the Table I query.
    ///
    /// Returns [`CoreError::UnreachableTarget`] if no threshold reaches the
    /// target on the calibration set.
    pub fn for_accuracy(artifacts: &EvaluationArtifacts, target_accuracy: f64) -> CoreResult<Self> {
        if !(0.0..=1.0).contains(&target_accuracy) {
            return Err(CoreError::InvalidRate(target_accuracy));
        }
        let choice = tuning::min_cost_for_accuracy(artifacts, target_accuracy)?.ok_or(
            CoreError::UnreachableTarget {
                target: target_accuracy,
            },
        )?;
        Ok(Self {
            delta: choice.threshold,
            calibrated_from: artifacts.score_kind,
        })
    }

    /// The calibrated threshold δ.
    pub fn threshold(&self) -> f64 {
        self.delta
    }

    /// The score kind of the artifacts this policy was calibrated from.
    pub fn calibrated_from(&self) -> ScoreKind {
        self.calibrated_from
    }
}

impl RoutingPolicy for CalibratedPolicy {
    fn name(&self) -> &'static str {
        "calibrated"
    }

    fn decide(&mut self, score: f32, _ctx: &RoutingContext) -> Route {
        if (score as f64) >= self.delta {
            Route::Edge
        } else {
            Route::Cloud
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RoutingContext {
        RoutingContext {
            edge_cost: InferenceCost {
                flops: 100,
                energy_mj: 1.0,
                latency_ms: 1.0,
            },
            offload_cost: InferenceCost {
                flops: 1100,
                energy_mj: 10.0,
                latency_ms: 20.0,
            },
        }
    }

    fn artifacts() -> EvaluationArtifacts {
        EvaluationArtifacts {
            scores: (0..10).map(|i| i as f32 / 10.0).collect(),
            little_correct: (0..10).map(|i| i >= 4).collect(),
            big_correct: vec![true; 10],
            hard_flags: vec![false; 10],
            little_flops: 100,
            big_flops: 1000,
            score_kind: ScoreKind::AppealNetQ,
        }
    }

    #[test]
    fn threshold_policy_implements_eq1_boundary() {
        let mut p = ThresholdPolicy::new(0.5).unwrap();
        assert_eq!(
            p.decide(0.5, &ctx()),
            Route::Edge,
            "score == δ stays on edge"
        );
        assert_eq!(p.decide(0.49, &ctx()), Route::Cloud);
        assert!(p.decide(0.51, &ctx()) == Route::Edge);
        assert_eq!(p.threshold(), 0.5);
        assert_eq!(p.name(), "threshold");
    }

    #[test]
    fn threshold_policy_rejects_out_of_range() {
        assert_eq!(
            ThresholdPolicy::new(1.5).unwrap_err(),
            CoreError::InvalidThreshold(1.5)
        );
        assert!(ThresholdPolicy::new(f64::NAN).is_err());
        assert!(ThresholdPolicy::new(-0.1).is_err());
    }

    #[test]
    fn budget_policy_stops_offloading_when_exhausted() {
        // Budget pays for exactly two offloads at 10 mJ each.
        let mut p = BudgetPolicy::new(0.9, CostBudget::energy_mj(25.0)).unwrap();
        let c = ctx();
        assert_eq!(p.decide(0.1, &c), Route::Cloud);
        assert_eq!(p.decide(0.1, &c), Route::Cloud);
        assert!(p.exhausted_for(&c.offload_cost));
        // Third difficult input is forced onto the edge.
        assert_eq!(p.decide(0.1, &c), Route::Edge);
        assert_eq!(p.appeals(), 2);
        assert!((p.spent().energy_mj - 20.0).abs() < 1e-12);
        // Easy inputs never touch the budget.
        assert_eq!(p.decide(0.95, &c), Route::Edge);
        assert_eq!(p.appeals(), 2);
        p.reset();
        assert_eq!(p.decide(0.1, &c), Route::Cloud);
    }

    #[test]
    fn budget_policy_with_unlimited_budget_matches_threshold_policy() {
        let mut b = BudgetPolicy::new(0.6, CostBudget::unlimited()).unwrap();
        let mut t = ThresholdPolicy::new(0.6).unwrap();
        let c = ctx();
        for s in [0.0f32, 0.3, 0.59, 0.6, 0.61, 1.0] {
            assert_eq!(b.decide(s, &c), t.decide(s, &c), "score {s}");
        }
    }

    #[test]
    fn budget_policy_rejects_bad_threshold() {
        assert!(BudgetPolicy::new(2.0, CostBudget::unlimited()).is_err());
    }

    #[test]
    fn calibrated_policy_sr_extremes() {
        let art = artifacts();
        let c = ctx();
        // SR = 1: everything stays on the edge.
        let mut all_edge = CalibratedPolicy::for_skipping_rate(&art, 1.0).unwrap();
        assert!(art
            .scores
            .iter()
            .all(|&s| all_edge.decide(s, &c) == Route::Edge));
        // SR = 0: everything is appealed (δ above the maximum score).
        let mut all_cloud = CalibratedPolicy::for_skipping_rate(&art, 0.0).unwrap();
        assert!(all_cloud.threshold() > 0.9);
        assert!(art
            .scores
            .iter()
            .all(|&s| all_cloud.decide(s, &c) == Route::Cloud));
        assert_eq!(all_cloud.calibrated_from(), ScoreKind::AppealNetQ);
    }

    #[test]
    fn calibrated_policy_rejects_invalid_rate_and_nan_scores() {
        let art = artifacts();
        assert_eq!(
            CalibratedPolicy::for_skipping_rate(&art, 1.2).unwrap_err(),
            CoreError::InvalidRate(1.2)
        );
        let mut bad = artifacts();
        bad.scores[3] = f32::NAN;
        assert_eq!(
            CalibratedPolicy::for_skipping_rate(&bad, 0.5).unwrap_err(),
            CoreError::InvalidScore { index: 3 }
        );
    }

    #[test]
    fn calibrated_policy_for_accuracy() {
        let art = artifacts();
        // Offloading the four lowest-score samples reaches accuracy 1.0.
        let p = CalibratedPolicy::for_accuracy(&art, 1.0).unwrap();
        let m = art.at_threshold(p.threshold()).unwrap();
        assert_eq!(m.overall_accuracy, 1.0);
        // An impossible target is reported as unreachable, not panicked on.
        let mut oracle_free = artifacts();
        oracle_free.big_correct = vec![false; 10];
        oracle_free.little_correct = vec![false; 10];
        assert_eq!(
            CalibratedPolicy::for_accuracy(&oracle_free, 0.9).unwrap_err(),
            CoreError::UnreachableTarget { target: 0.9 }
        );
        assert!(CalibratedPolicy::for_accuracy(&art, 1.5).is_err());
    }
}
