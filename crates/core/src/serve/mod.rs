//! The policy-driven serving engine: the paper's deployment rule (Eq. 1)
//! grown into a request/response runtime.
//!
//! # From the paper to the API
//!
//! At deployment AppealNet routes each input `x` with one rule (Eq. 1):
//! keep it on the edge when the predictor's score `q(1|x) ≥ δ`, *appeal* it
//! to the big cloud network otherwise. This module factors that rule into
//! three replaceable parts and a runtime that composes them:
//!
//! * **[`Scorer`]** — produces the per-input score. [`QScorer`] is the
//!   learned predictor head of the two-head network; [`ConfidenceScorer`]
//!   is any of the paper's Section VI-A baselines (MSP, score margin,
//!   entropy) over a plain little classifier.
//! * **[`RoutingPolicy`]** — consumes the score and decides edge vs. cloud:
//!   * [`ThresholdPolicy`] is Eq. 1 verbatim (fixed δ);
//!   * [`BudgetPolicy`] is the budgeted reading of Eq. 7 — Eq. 1 guarded by
//!     a running offload budget ([`appeal_hw::CostBudget`]) so cloud spend
//!     is bounded by construction;
//!   * [`CalibratedPolicy`] packages the offline tuning queries of
//!     Tables I/II — "hit this skipping rate (Eq. 11)" or "reach this
//!     overall accuracy (Eq. 13) at minimum cost (Eq. 15)" — as a
//!     deployable threshold.
//! * **[`Engine`]** — owns a scorer, the big model, a policy and a hardware
//!   [`appeal_hw::SystemModel`]; serves [`InferenceRequest`]s by
//!   transparently micro-batching them through the sharded parallel
//!   evaluation path, and reports the paper's evaluation metrics live
//!   through [`EngineStats`]: skipping rate (Eq. 11), appealing rate
//!   (Eq. 12) and accumulated cost (Eq. 15).
//!
//! # Example
//!
//! ```no_run
//! use appealnet_core::prelude::*;
//! use appeal_dataset::prelude::*;
//! use appeal_models::prelude::*;
//!
//! # fn main() -> Result<(), CoreError> {
//! // Train a system, then move its models into a serving engine.
//! let ctx = ExperimentContext::new(Fidelity::Smoke, 42);
//! let prepared = PreparedExperiment::prepare(
//!     DatasetPreset::Cifar10Like,
//!     ModelFamily::MobileNetLike,
//!     CloudMode::WhiteBox,
//!     &ctx,
//! );
//! let mut engine = Engine::builder()
//!     .appealnet(prepared.models.appealnet)
//!     .big(prepared.models.big)
//!     .policy(ThresholdPolicy::new(0.5)?)
//!     .build()?;
//! // Stream single requests; the engine micro-batches them.
//! # let frame = appeal_tensor::Tensor::zeros(&[3, 12, 12]);
//! if let Some(answers) = engine.submit(InferenceRequest::new(0, frame))? {
//!     for a in answers {
//!         println!("request {}: label {} via {:?}", a.id, a.label, a.route);
//!     }
//! }
//! println!("live skipping rate: {:.1}%", 100.0 * engine.stats().skipping_rate());
//! # Ok(())
//! # }
//! ```

mod engine;
mod policy;
mod scorer;

pub(crate) use engine::check_sample_shape;
pub use engine::{Engine, EngineBuilder, EngineStats, InferenceRequest, InferenceResponse};
pub use policy::{
    BudgetPolicy, CalibratedPolicy, Route, RoutingContext, RoutingPolicy, ThresholdPolicy,
};
pub use scorer::{ConfidenceScorer, EdgePass, QScorer, Scorer};
