//! The [`Scorer`] trait: one interface over every way of producing a
//! per-input routing score on the edge.
//!
//! AppealNet's learned predictor (`q(1|x)`, paper Eq. 1) and the
//! confidence-score baselines (MSP / score margin / entropy, Section VI-A)
//! differ in *model* — a two-head network vs. a plain classifier — but both
//! reduce to the same contract: run the edge model over a batch and return a
//! predicted label plus a "higher = keep on the edge" score per sample. The
//! serving [`Engine`](crate::serve::Engine) routes against that contract
//! only, so policies compose with either family of scorers.

use crate::error::{CoreError, CoreResult};
use crate::scores::{confidence_scores, ScoreKind};
use crate::two_head::TwoHeadNet;
use appeal_models::ClassifierParts;
use appeal_tensor::loss::SoftmaxCrossEntropy;
use appeal_tensor::Tensor;

/// Per-sample result of one edge pass over a batch.
#[derive(Debug, Clone)]
pub struct EdgePass {
    /// Predicted class label per sample.
    pub labels: Vec<usize>,
    /// Routing score per sample (higher = keep on the edge).
    pub scores: Vec<f32>,
}

/// An edge model that yields a predicted label and a routing score per input.
///
/// Implementations run one forward pass over the whole supplied batch (the
/// engine decides the batch granularity), and must be *per-sample pure* in
/// eval mode: a sample's label and score do not depend on which batch or
/// worker evaluated it. That property is what lets the engine shard batches
/// across [`fork`](Scorer::fork)ed replicas while staying bit-identical to a
/// sequential pass.
pub trait Scorer: Send {
    /// Which routing score this scorer produces.
    fn kind(&self) -> ScoreKind;

    /// Per-inference FLOPs of the edge model (the `cost(f1, q)` of Eq. 5).
    fn flops(&self) -> u64;

    /// Input shape of one sample, `[channels, height, width]`.
    fn input_shape(&self) -> [usize; 3];

    /// Runs the edge model over a `[n, c, h, w]` batch in one forward pass.
    fn evaluate(&mut self, images: &Tensor) -> EdgePass;

    /// Clones this scorer for a worker thread, dropping activation caches.
    fn fork(&self) -> Box<dyn Scorer>;

    /// `true` when the edge model runs on the quantized (Q8_0) weight tier,
    /// in which case its outputs follow the "quantized-tolerance" numeric
    /// contract instead of the build tier's f32 contract.
    fn is_quantized(&self) -> bool {
        false
    }
}

/// [`Scorer`] over the jointly trained two-head network: the routing score is
/// the predictor head's output `q(1|x)`.
pub struct QScorer {
    net: TwoHeadNet,
}

impl QScorer {
    /// Wraps a (trained) two-head network.
    pub fn new(net: TwoHeadNet) -> Self {
        Self { net }
    }

    /// The wrapped network.
    pub fn network(&self) -> &TwoHeadNet {
        &self.net
    }

    /// Mutable access to the wrapped network (e.g. to quantize its weights
    /// or calibrate activation scales before serving).
    pub fn network_mut(&mut self) -> &mut TwoHeadNet {
        &mut self.net
    }
}

impl Scorer for QScorer {
    fn kind(&self) -> ScoreKind {
        ScoreKind::AppealNetQ
    }

    fn flops(&self) -> u64 {
        self.net.flops()
    }

    fn input_shape(&self) -> [usize; 3] {
        self.net.spec().input_shape
    }

    fn evaluate(&mut self, images: &Tensor) -> EdgePass {
        let out = self.net.forward(images, false);
        EdgePass {
            labels: out.predictions(),
            scores: out.q,
        }
    }

    fn fork(&self) -> Box<dyn Scorer> {
        use crate::parallel::Replica;
        Box::new(Self {
            net: self.net.replica(),
        })
    }

    fn is_quantized(&self) -> bool {
        self.net.is_quantized()
    }
}

/// [`Scorer`] over a plain little classifier using one of the confidence
/// baselines (MSP, score margin, entropy) derived from its softmax output.
pub struct ConfidenceScorer {
    model: ClassifierParts,
    kind: ScoreKind,
}

impl std::fmt::Debug for ConfidenceScorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConfidenceScorer({}, {:?})", self.kind, self.model)
    }
}

impl ConfidenceScorer {
    /// Wraps a classifier with a confidence-score baseline.
    ///
    /// Returns [`CoreError::InvalidScoreKind`] for [`ScoreKind::AppealNetQ`],
    /// which is produced by a predictor head, not derived from probabilities.
    pub fn new(model: ClassifierParts, kind: ScoreKind) -> CoreResult<Self> {
        if !kind.is_confidence_baseline() {
            return Err(CoreError::InvalidScoreKind(kind));
        }
        Ok(Self { model, kind })
    }
}

impl Scorer for ConfidenceScorer {
    fn kind(&self) -> ScoreKind {
        self.kind
    }

    fn flops(&self) -> u64 {
        self.model.total_flops()
    }

    fn input_shape(&self) -> [usize; 3] {
        self.model.spec.input_shape
    }

    fn evaluate(&mut self, images: &Tensor) -> EdgePass {
        let logits = self.model.forward(images, false);
        let probs = SoftmaxCrossEntropy::new().probabilities(&logits);
        EdgePass {
            labels: logits.argmax_rows(),
            scores: confidence_scores(&probs, self.kind),
        }
    }

    fn fork(&self) -> Box<dyn Scorer> {
        use crate::parallel::Replica;
        Box::new(Self {
            model: self.model.replica(),
            kind: self.kind,
        })
    }

    fn is_quantized(&self) -> bool {
        self.model.is_quantized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_models::{ModelFamily, ModelSpec};
    use appeal_tensor::SeededRng;

    fn little(classes: usize, rng: &mut SeededRng) -> ClassifierParts {
        ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], classes).build(rng)
    }

    #[test]
    fn q_scorer_matches_two_head_forward() {
        let mut rng = SeededRng::new(11);
        let net = TwoHeadNet::from_parts(little(4, &mut rng), &mut rng);
        let images = Tensor::randn(&[5, 3, 12, 12], &mut rng);
        let mut reference = net.clone();
        let expected = reference.forward(&images, false);
        let mut scorer = QScorer::new(net);
        assert_eq!(scorer.kind(), ScoreKind::AppealNetQ);
        assert_eq!(scorer.input_shape(), [3, 12, 12]);
        let pass = scorer.evaluate(&images);
        assert_eq!(pass.labels, expected.predictions());
        for (a, b) in pass.scores.iter().zip(expected.q.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn confidence_scorer_rejects_appealnet_kind() {
        let mut rng = SeededRng::new(12);
        let err = ConfidenceScorer::new(little(4, &mut rng), ScoreKind::AppealNetQ).unwrap_err();
        assert_eq!(err, CoreError::InvalidScoreKind(ScoreKind::AppealNetQ));
    }

    #[test]
    fn confidence_scorer_produces_requested_baseline() {
        let mut rng = SeededRng::new(13);
        let model = little(4, &mut rng);
        let flops = model.total_flops();
        let mut scorer = ConfidenceScorer::new(model, ScoreKind::Msp).unwrap();
        assert_eq!(scorer.kind(), ScoreKind::Msp);
        assert_eq!(scorer.flops(), flops);
        let images = Tensor::randn(&[6, 3, 12, 12], &mut rng);
        let pass = scorer.evaluate(&images);
        assert_eq!(pass.labels.len(), 6);
        // MSP scores are softmax maxima: probabilities in (0, 1].
        assert!(pass.scores.iter().all(|&s| s > 0.0 && s <= 1.0));
    }

    #[test]
    fn forked_scorer_is_bit_identical() {
        let mut rng = SeededRng::new(14);
        let net = TwoHeadNet::from_parts(little(3, &mut rng), &mut rng);
        let mut scorer = QScorer::new(net);
        let images = Tensor::randn(&[4, 3, 12, 12], &mut rng);
        let mut forked = scorer.fork();
        let a = scorer.evaluate(&images);
        let b = forked.evaluate(&images);
        assert_eq!(a.labels, b.labels);
        for (x, y) in a.scores.iter().zip(b.scores.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
