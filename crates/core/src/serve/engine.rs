//! The request/response serving engine.
//!
//! [`Engine`] owns an edge [`Scorer`], the big cloud model, a
//! [`RoutingPolicy`] and a hardware [`SystemModel`], and serves
//! [`InferenceRequest`]s: single requests are queued and transparently
//! micro-batched through the sharded parallel evaluation path, whole batches
//! go straight through it. Every answer is a structured
//! [`InferenceResponse`] (label, score, route, cost), and the engine keeps
//! cumulative [`EngineStats`] — throughput, skipping rate (Eq. 11), cost
//! totals (Eq. 15) — for the lifetime of the deployment.

use crate::error::{CoreError, CoreResult};
use crate::parallel::{self, ChunkPolicy};
use crate::scores::ScoreKind;
use crate::serve::policy::{Route, RoutingContext, RoutingPolicy, ThresholdPolicy};
use crate::serve::scorer::{ConfidenceScorer, QScorer, Scorer};
use crate::two_head::TwoHeadNet;
use appeal_hw::{InferenceCost, SystemModel};
use appeal_models::ClassifierParts;
use appeal_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One classification request: an id chosen by the caller and a single image
/// of shape `[c, h, w]` (or `[1, c, h, w]`).
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The input image.
    pub image: Tensor,
}

impl InferenceRequest {
    /// Creates a request.
    pub fn new(id: u64, image: Tensor) -> Self {
        Self { id, image }
    }
}

/// The engine's answer to one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceResponse {
    /// The id of the request this answers.
    pub id: u64,
    /// Predicted class label.
    pub label: usize,
    /// The edge scorer's routing score for this input.
    pub score: f32,
    /// Where the request was answered.
    pub route: Route,
    /// Cost charged for this request (Eq. 5: `c1` on the edge, `c0` offloaded).
    pub cost: InferenceCost,
}

/// Cumulative serving statistics.
///
/// The `Debug` representation additionally reports the kernel ISA the
/// process dispatched to (`appeal_tensor::kernels::active_isa`) and the
/// build's numeric contract (`appeal_tensor::kernels::numeric_contract`,
/// with a `+fma` marker when the fused tier is actually dispatched), so
/// logged throughput numbers are always attributable to a compute backend
/// *and* a numeric tier — a `fast-kernels` build is faster but only
/// deterministic per build, and operators reading serving logs need to know
/// which guarantee the numbers came from.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Requests answered.
    pub requests: u64,
    /// Batches executed (micro-batches and direct batches alike).
    pub batches: u64,
    /// Requests answered on the edge.
    pub edge_handled: u64,
    /// Requests appealed to the cloud.
    pub offloaded: u64,
    /// Total cost charged across all requests.
    pub total_cost: InferenceCost,
    /// Wall-clock seconds spent inside batch execution.
    pub busy_seconds: f64,
    /// `true` when the edge scorer runs on the quantized (Q8_0) weight tier,
    /// so its outputs follow the "quantized-tolerance" numeric contract.
    pub edge_quantized: bool,
}

impl std::fmt::Debug for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineStats")
            .field("requests", &self.requests)
            .field("batches", &self.batches)
            .field("edge_handled", &self.edge_handled)
            .field("offloaded", &self.offloaded)
            .field("total_cost", &self.total_cost)
            .field("busy_seconds", &self.busy_seconds)
            .field("kernel_isa", &appeal_tensor::kernels::active_isa().name())
            .field(
                "numeric_contract",
                &numeric_contract_label(self.edge_quantized),
            )
            .finish()
    }
}

/// The numeric contract for debug output, with a `+fma` suffix when the
/// fused kernel tier is live on this host (contract alone says what the
/// build *promises*; the suffix says what the dispatched kernels *do*).
///
/// A quantized edge scorer reports the "quantized-tolerance" contract
/// instead of the build tier's f32 contract: its GEMMs run the int8 path,
/// which is bit-identical on every ISA and both build tiers, so scores
/// differ from an f32 edge pass only by bounded quantization error.
fn numeric_contract_label(quantized: bool) -> String {
    let contract = if quantized {
        appeal_tensor::kernels::quantized_contract()
    } else {
        appeal_tensor::kernels::numeric_contract()
    };
    if appeal_tensor::kernels::fused_active() {
        format!("{contract}+fma")
    } else {
        contract.name().to_string()
    }
}

impl EngineStats {
    fn zero() -> Self {
        Self {
            requests: 0,
            batches: 0,
            edge_handled: 0,
            offloaded: 0,
            total_cost: InferenceCost::zero(),
            busy_seconds: 0.0,
            edge_quantized: false,
        }
    }

    /// Observed skipping rate SR (Eq. 11); 0 before any request.
    pub fn skipping_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.edge_handled as f64 / self.requests as f64
        }
    }

    /// Observed appealing rate AR (Eq. 12); 0 before any request.
    pub fn appealing_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.offloaded as f64 / self.requests as f64
        }
    }

    /// Requests per second of busy time; 0 before any work was timed.
    ///
    /// Never returns NaN or infinity: a deserialized or hand-built stats
    /// value with zero, negative or non-finite `busy_seconds` reports 0
    /// instead of poisoning downstream aggregates.
    pub fn throughput_rps(&self) -> f64 {
        if self.busy_seconds.is_finite() && self.busy_seconds > 0.0 {
            self.requests as f64 / self.busy_seconds
        } else {
            0.0
        }
    }

    /// Mean number of requests per executed batch; 0 before any batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// Checks that `shape` is `[c, h, w]` (or `[1, c, h, w]`) for the expected
/// per-sample input shape. Shared by [`Engine::validate_request`] and the
/// serving front-end's client-side admission check.
pub(crate) fn check_sample_shape(shape: &[usize], expected: &[usize; 3]) -> CoreResult<()> {
    let per_sample: &[usize] = match shape.len() {
        3 => shape,
        4 if shape[0] == 1 => &shape[1..],
        _ => {
            return Err(CoreError::ShapeMismatch {
                expected: expected.to_vec(),
                got: shape.to_vec(),
            })
        }
    };
    if per_sample != expected {
        return Err(CoreError::ShapeMismatch {
            expected: expected.to_vec(),
            got: shape.to_vec(),
        });
    }
    Ok(())
}

enum PendingScorer {
    Built(Box<dyn Scorer>),
    Confidence(Box<ClassifierParts>, ScoreKind),
}

/// Assembles an [`Engine`] from its parts.
///
/// Required: an edge scorer ([`appealnet`](EngineBuilder::appealnet),
/// [`confidence`](EngineBuilder::confidence) or a custom
/// [`scorer`](EngineBuilder::scorer)) and the [`big`](EngineBuilder::big)
/// cloud model. Everything else has serving-grade defaults: Eq. 1 with
/// δ = 0.5, [`SystemModel::typical`], the runtime [`ChunkPolicy`] and a
/// micro-batch capacity of 32.
pub struct EngineBuilder {
    scorer: Option<PendingScorer>,
    big: Option<ClassifierParts>,
    policy: Option<Box<dyn RoutingPolicy>>,
    hardware: SystemModel,
    chunk: ChunkPolicy,
    max_batch: usize,
}

impl EngineBuilder {
    /// Starts a builder with the defaults described on the type.
    pub fn new() -> Self {
        Self {
            scorer: None,
            big: None,
            policy: None,
            hardware: SystemModel::typical(),
            chunk: ChunkPolicy::runtime(),
            max_batch: 32,
        }
    }

    /// Uses the jointly trained two-head network as the edge model (the
    /// routing score is the predictor output `q(1|x)`).
    pub fn appealnet(mut self, net: TwoHeadNet) -> Self {
        self.scorer = Some(PendingScorer::Built(Box::new(QScorer::new(net))));
        self
    }

    /// Uses a plain little classifier with a confidence-score baseline
    /// (MSP / score margin / entropy) as the edge model.
    pub fn confidence(mut self, model: ClassifierParts, kind: ScoreKind) -> Self {
        self.scorer = Some(PendingScorer::Confidence(Box::new(model), kind));
        self
    }

    /// Uses a custom [`Scorer`] implementation as the edge model.
    pub fn scorer(mut self, scorer: impl Scorer + 'static) -> Self {
        self.scorer = Some(PendingScorer::Built(Box::new(scorer)));
        self
    }

    /// Sets the big cloud model.
    pub fn big(mut self, big: ClassifierParts) -> Self {
        self.big = Some(big);
        self
    }

    /// Sets the routing policy (default: Eq. 1 with δ = 0.5).
    pub fn policy(mut self, policy: impl RoutingPolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Sets the hardware cost model (default: [`SystemModel::typical`]).
    pub fn hardware(mut self, hardware: SystemModel) -> Self {
        self.hardware = hardware;
        self
    }

    /// Sets the batch-sharding policy (default: [`ChunkPolicy::runtime`];
    /// use [`ChunkPolicy::sequential`] to force single-threaded execution).
    pub fn chunk_policy(mut self, chunk: ChunkPolicy) -> Self {
        self.chunk = chunk;
        self
    }

    /// Sets how many queued requests trigger an automatic flush (default 32).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Builds the engine.
    ///
    /// Errors with [`CoreError::MissingComponent`] if the scorer or big model
    /// is unset, [`CoreError::InvalidScoreKind`] for a confidence scorer over
    /// [`ScoreKind::AppealNetQ`], and [`CoreError::InvalidMaxBatch`] for a
    /// zero micro-batch capacity.
    pub fn build(self) -> CoreResult<Engine> {
        if self.max_batch == 0 {
            return Err(CoreError::InvalidMaxBatch);
        }
        let scorer = match self.scorer.ok_or(CoreError::MissingComponent("scorer"))? {
            PendingScorer::Built(s) => s,
            PendingScorer::Confidence(model, kind) => {
                Box::new(ConfidenceScorer::new(*model, kind)?) as Box<dyn Scorer>
            }
        };
        let big = self.big.ok_or(CoreError::MissingComponent("big model"))?;
        let policy = match self.policy {
            Some(p) => p,
            None => Box::new(ThresholdPolicy::new(0.5)?),
        };
        let input_shape = scorer.input_shape();
        let scorer_quantized = scorer.is_quantized();
        let input_bytes = (input_shape.iter().product::<usize>() * 4) as u64;
        // A quantized edge scorer is charged the int8 tier's energy/latency
        // discount; FLOP counts are identical, so Eq. 5/15 comparisons stay
        // in the paper's unit either way.
        let (edge_cost, offload_cost) = if scorer_quantized {
            (
                self.hardware.edge_only_cost_quantized(scorer.flops()),
                self.hardware.offload_cost_quantized(
                    scorer.flops(),
                    big.total_flops(),
                    input_bytes,
                ),
            )
        } else {
            (
                self.hardware.edge_only_cost(scorer.flops()),
                self.hardware
                    .offload_cost(scorer.flops(), big.total_flops(), input_bytes),
            )
        };
        Ok(Engine {
            scorer,
            workers: Vec::new(),
            big,
            policy,
            hardware: self.hardware,
            chunk: self.chunk,
            max_batch: self.max_batch,
            input_shape,
            edge_cost,
            offload_cost,
            pending_ids: Vec::new(),
            pending_data: Vec::new(),
            next_id: 0,
            stats: EngineStats {
                edge_quantized: scorer_quantized,
                ..EngineStats::zero()
            },
        })
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// A policy-driven edge/cloud serving engine.
///
/// Single requests are queued by [`submit`](Engine::submit) and flushed as
/// one micro-batch once `max_batch` of them accumulate (or explicitly via
/// [`flush`](Engine::flush)); whole tensors go through
/// [`classify_batch`](Engine::classify_batch). Either way the batch takes the
/// same two-stage path: the edge scorer runs over every input — sharded
/// across per-worker scorer replicas per the [`ChunkPolicy`] — then the
/// policy decides each input **in input order** (so stateful policies stay
/// deterministic), and the big network runs one internally sharded pass over
/// the offloaded subset. Per-sample results are bit-identical across chunk
/// policies, batch sizes and thread counts.
///
/// # Hot-path allocations
///
/// Every forward pass the engine issues runs in eval mode, so the layers
/// under `appeal_tensor` skip their training-only activation caches, and the
/// GEMM-lowered conv/dense kernels draw im2col and packing buffers from
/// per-layer scratch arenas that persist inside the engine's scorer and big
/// model between requests. After warm-up, steady-state `submit` traffic
/// performs zero scratch allocations — pinned by the allocation-counter
/// guard in `tests/hot_path_allocations.rs` against
/// `appeal_tensor::kernels::scratch_stats`.
pub struct Engine {
    scorer: Box<dyn Scorer>,
    /// Lazily forked scorer replicas, one per worker thread. Only the edge
    /// scorer is retained per worker: the big network is >10× its size and
    /// shards its pass with transient replicas instead.
    workers: Vec<Box<dyn Scorer>>,
    big: ClassifierParts,
    policy: Box<dyn RoutingPolicy>,
    hardware: SystemModel,
    chunk: ChunkPolicy,
    max_batch: usize,
    input_shape: [usize; 3],
    edge_cost: InferenceCost,
    offload_cost: InferenceCost,
    pending_ids: Vec<u64>,
    pending_data: Vec<f32>,
    next_id: u64,
    stats: EngineStats,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine(scorer={}, policy={}, pending={}, requests={}, kernel_isa={}, contract={})",
            self.scorer.kind(),
            self.policy.name(),
            self.pending_ids.len(),
            self.stats.requests,
            appeal_tensor::kernels::active_isa(),
            numeric_contract_label(self.scorer.is_quantized())
        )
    }
}

impl Engine {
    /// Starts an [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Queues one request; returns the answered micro-batch once `max_batch`
    /// requests have accumulated, `None` while the queue is still filling.
    ///
    /// Errors with [`CoreError::ShapeMismatch`] if the request image is not
    /// `[c, h, w]` (or `[1, c, h, w]`) for the scorer's input shape.
    pub fn submit(
        &mut self,
        request: InferenceRequest,
    ) -> CoreResult<Option<Vec<InferenceResponse>>> {
        // Validate *before* touching either pending buffer: a rejected
        // request must leave the queue exactly as it was, or the next flush
        // would assemble a batch tensor from desynchronized ids and data.
        self.validate_request(&request)?;
        // Grow the data buffer first, then the id list: the id push is the
        // single point after which the request counts as queued, so a panic
        // unwinding between the two lines leaves orphan floats that the
        // flush-time consistency check below detects and drops.
        self.pending_data.extend_from_slice(request.image.data());
        self.pending_ids.push(request.id);
        if self.pending_ids.len() >= self.max_batch {
            return Ok(Some(self.flush()?));
        }
        Ok(None)
    }

    /// Checks one request against the scorer's input shape without mutating
    /// any engine state.
    ///
    /// Errors with [`CoreError::ShapeMismatch`] if the image is not
    /// `[c, h, w]` (or `[1, c, h, w]`). The serving front-end
    /// ([`crate::server`]) calls this on the client thread so malformed
    /// requests are rejected before they ever occupy queue capacity.
    pub fn validate_request(&self, request: &InferenceRequest) -> CoreResult<()> {
        check_sample_shape(request.image.shape(), &self.input_shape)
    }

    /// Answers every queued request as one micro-batch (empty queue → empty
    /// vec). Responses come back in submission order.
    ///
    /// The flush is transactional: the queue's id/data buffers are checked
    /// for consistency *before* either is taken, so an error cannot leave
    /// one emptied and the other populated. If they have desynchronized
    /// (possible only if a panic unwound mid-enqueue, since `submit`
    /// validates shapes up front), both buffers are dropped atomically and
    /// [`CoreError::CorruptQueue`] reports how many requests were lost —
    /// the engine is immediately serviceable again, and no later batch is
    /// silently built with the wrong `n`.
    pub fn flush(&mut self) -> CoreResult<Vec<InferenceResponse>> {
        if self.pending_ids.is_empty() {
            // Orphan data without ids is equally corrupt: drop it rather
            // than letting it prepend garbage samples to the next batch.
            if !self.pending_data.is_empty() {
                let got = self.pending_data.len();
                self.pending_data.clear();
                return Err(CoreError::CorruptQueue {
                    pending: 0,
                    expected: 0,
                    got,
                });
            }
            return Ok(Vec::new());
        }
        let n = self.pending_ids.len();
        let [c, h, w] = self.input_shape;
        let expected = n * c * h * w;
        if self.pending_data.len() != expected {
            let got = self.pending_data.len();
            self.pending_ids.clear();
            self.pending_data.clear();
            return Err(CoreError::CorruptQueue {
                pending: n,
                expected,
                got,
            });
        }
        let images = Tensor::from_vec(std::mem::take(&mut self.pending_data), &[n, c, h, w])
            .expect("pending_data length was checked against the batch shape");
        let ids = std::mem::take(&mut self.pending_ids);
        self.run_batch(&images, &ids)
    }

    /// Classifies a whole `[n, c, h, w]` batch, assigning consecutive
    /// engine-generated request ids.
    ///
    /// Errors with [`CoreError::ShapeMismatch`] if the tensor is not rank 4
    /// with the scorer's per-sample input shape.
    pub fn classify_batch(&mut self, images: &Tensor) -> CoreResult<Vec<InferenceResponse>> {
        let shape = images.shape();
        if shape.len() != 4 || shape[1..] != self.input_shape {
            return Err(CoreError::ShapeMismatch {
                expected: self.input_shape.to_vec(),
                got: shape.to_vec(),
            });
        }
        let n = shape[0];
        let ids: Vec<u64> = (self.next_id..self.next_id + n as u64).collect();
        self.next_id += n as u64;
        self.run_batch(images, &ids)
    }

    /// The two-stage batch path shared by `flush` and `classify_batch`.
    fn run_batch(&mut self, images: &Tensor, ids: &[u64]) -> CoreResult<Vec<InferenceResponse>> {
        let started = Instant::now();
        let n = images.shape()[0];
        if n == 0 {
            return Ok(Vec::new());
        }
        // Stage 1: edge scorer over every input, sharded across retained
        // worker replicas when the chunk policy splits the batch.
        let (labels, scores) = self.edge_pass(images);
        // Policy decisions strictly in input order (stateful policies).
        let ctx = RoutingContext {
            edge_cost: self.edge_cost,
            offload_cost: self.offload_cost,
        };
        let routes: Vec<Route> = scores
            .iter()
            .map(|&s| self.policy.decide(s, &ctx))
            .collect();
        // Stage 2: one big-network pass over the offloaded subset, itself
        // sharded per the chunk policy (with transient replicas).
        let offload_idx: Vec<usize> = (0..n).filter(|&i| routes[i].is_cloud()).collect();
        let big_preds: Vec<usize> = if offload_idx.is_empty() {
            Vec::new()
        } else {
            let big_batch = images.select_rows(&offload_idx);
            parallel::classifier_logits(&mut self.big, &big_batch, offload_idx.len(), &self.chunk)
                .argmax_rows()
        };
        let mut big_iter = big_preds.into_iter();
        let responses: Vec<InferenceResponse> = (0..n)
            .map(|i| {
                let offloaded = routes[i].is_cloud();
                InferenceResponse {
                    id: ids[i],
                    label: if offloaded {
                        big_iter
                            .next()
                            .expect("one big prediction per offloaded input")
                    } else {
                        labels[i]
                    },
                    score: scores[i],
                    route: routes[i],
                    cost: if offloaded {
                        self.offload_cost
                    } else {
                        self.edge_cost
                    },
                }
            })
            .collect();
        self.stats.requests += n as u64;
        self.stats.batches += 1;
        for r in &responses {
            if r.route.is_cloud() {
                self.stats.offloaded += 1;
            } else {
                self.stats.edge_handled += 1;
            }
            self.stats.total_cost = self.stats.total_cost.add(&r.cost);
        }
        self.stats.busy_seconds += started.elapsed().as_secs_f64();
        Ok(responses)
    }

    /// Edge pass over the whole batch: labels and scores in input order.
    fn edge_pass(&mut self, images: &Tensor) -> (Vec<usize>, Vec<f32>) {
        let n = images.shape()[0];
        let shards = self.chunk.shards(n);
        if shards.len() <= 1 {
            let pass = self.scorer.evaluate(images);
            return (pass.labels, pass.scores);
        }
        while self.workers.len() < shards.len() {
            self.workers.push(self.scorer.fork());
        }
        let mut slots: Vec<(Vec<usize>, Vec<f32>)> = Vec::new();
        slots.resize_with(shards.len(), Default::default);
        rayon::scope(|s| {
            for ((worker, shard), slot) in self.workers.iter_mut().zip(shards).zip(slots.iter_mut())
            {
                s.spawn(move |_| {
                    // Batch-level parallelism owns the cores here; keep the
                    // per-sample kernels on their serial paths.
                    let _serial = appeal_tensor::kernels::enter_worker_region();
                    let idx: Vec<usize> = shard.collect();
                    let pass = worker.evaluate(&images.select_rows(&idx));
                    *slot = (pass.labels, pass.scores);
                });
            }
        });
        let mut labels = Vec::with_capacity(n);
        let mut scores = Vec::with_capacity(n);
        for (shard_labels, shard_scores) in slots {
            labels.extend(shard_labels);
            scores.extend(shard_scores);
        }
        (labels, scores)
    }

    /// Number of requests waiting in the micro-batch queue.
    pub fn pending(&self) -> usize {
        self.pending_ids.len()
    }

    /// Number of queued requests that trigger an automatic flush.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The per-sample input shape `[c, h, w]` the edge scorer expects.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Resets the cumulative statistics (queued requests are kept).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats {
            edge_quantized: self.scorer.is_quantized(),
            ..EngineStats::zero()
        };
    }

    /// Replaces the routing policy; queued requests and stats are kept.
    pub fn set_policy(&mut self, policy: Box<dyn RoutingPolicy>) {
        self.policy = policy;
    }

    /// Name of the active routing policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The routing score the edge scorer produces.
    pub fn score_kind(&self) -> ScoreKind {
        self.scorer.kind()
    }

    /// Cost `c1` of answering one request on the edge.
    pub fn edge_cost(&self) -> InferenceCost {
        self.edge_cost
    }

    /// Cost `c0` of appealing one request to the cloud.
    pub fn offload_cost(&self) -> InferenceCost {
        self.offload_cost
    }

    /// The hardware cost model the engine charges against.
    pub fn hardware(&self) -> &SystemModel {
        &self.hardware
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::policy::BudgetPolicy;
    use appeal_hw::CostBudget;
    use appeal_models::{ModelFamily, ModelSpec};
    use appeal_tensor::SeededRng;

    fn tiny_models(classes: usize) -> (TwoHeadNet, ClassifierParts) {
        let mut rng = SeededRng::new(3);
        let little =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], classes).build(&mut rng);
        let big = ModelSpec::big([3, 12, 12], classes).build(&mut rng);
        (TwoHeadNet::from_parts(little, &mut rng), big)
    }

    fn engine(max_batch: usize) -> Engine {
        let (net, big) = tiny_models(4);
        Engine::builder()
            .appealnet(net)
            .big(big)
            .policy(ThresholdPolicy::new(0.5).unwrap())
            .max_batch(max_batch)
            .build()
            .unwrap()
    }

    #[test]
    fn stats_debug_reports_kernel_isa_and_numeric_contract() {
        // Perf numbers logged from EngineStats must always be attributable
        // to a kernel dispatch path and a numeric tier.
        let engine = engine(1);
        let debug = format!("{:?}", engine.stats());
        assert!(
            debug.contains("kernel_isa"),
            "EngineStats debug output must name the kernel ISA: {debug}"
        );
        let isa = appeal_tensor::kernels::active_isa().name();
        assert!(debug.contains(isa), "expected {isa} in {debug}");
        let contract = appeal_tensor::kernels::numeric_contract().name();
        assert!(
            debug.contains("numeric_contract") && debug.contains(contract),
            "EngineStats debug output must name the numeric contract: {debug}"
        );
        if appeal_tensor::kernels::fused_active() {
            assert!(debug.contains("+fma"), "fused tier must be marked: {debug}");
        } else {
            assert!(!debug.contains("+fma"), "no fused marker expected: {debug}");
        }
        let engine_debug = format!("{engine:?}");
        assert!(engine_debug.contains("kernel_isa"), "{engine_debug}");
        assert!(
            engine_debug.contains("contract=") && engine_debug.contains(contract),
            "{engine_debug}"
        );
    }

    #[test]
    fn quantized_scorer_reports_quantized_contract() {
        let (mut net, big) = tiny_models(4);
        net.quantize_weights();
        let mut engine = Engine::builder()
            .appealnet(net)
            .big(big)
            .policy(ThresholdPolicy::new(0.5).unwrap())
            .max_batch(2)
            .build()
            .unwrap();
        assert!(engine.stats().edge_quantized);
        let debug = format!("{:?}", engine.stats());
        assert!(
            debug.contains("quantized-tolerance"),
            "quantized edge must surface the quantized contract: {debug}"
        );
        let engine_debug = format!("{engine:?}");
        assert!(
            engine_debug.contains("quantized-tolerance"),
            "{engine_debug}"
        );
        // The quantized tier is charged the discounted edge cost (same
        // FLOPs, cheaper energy and latency).
        let f32_engine = super::tests::engine(2);
        assert_eq!(engine.edge_cost().flops, f32_engine.edge_cost().flops);
        assert!(engine.edge_cost().energy_mj < f32_engine.edge_cost().energy_mj);
        assert!(engine.offload_cost().latency_ms < f32_engine.offload_cost().latency_ms);
        // The flag survives a stats reset and the engine still serves.
        engine.reset_stats();
        assert!(engine.stats().edge_quantized);
        let mut rng = SeededRng::new(21);
        let images = Tensor::randn(&[3, 3, 12, 12], &mut rng);
        let responses = engine.classify_batch(&images).unwrap();
        assert_eq!(responses.len(), 3);
        assert!(responses.iter().all(|r| (0.0..=1.0).contains(&r.score)));
    }

    #[test]
    fn builder_requires_scorer_and_big_model() {
        let (net, big) = tiny_models(2);
        assert_eq!(
            Engine::builder().big(big.clone()).build().unwrap_err(),
            CoreError::MissingComponent("scorer")
        );
        assert_eq!(
            Engine::builder()
                .appealnet(net.clone())
                .build()
                .unwrap_err(),
            CoreError::MissingComponent("big model")
        );
        assert_eq!(
            Engine::builder()
                .appealnet(net.clone())
                .big(big.clone())
                .max_batch(0)
                .build()
                .unwrap_err(),
            CoreError::InvalidMaxBatch
        );
        assert_eq!(
            Engine::builder()
                .confidence(big.clone(), ScoreKind::AppealNetQ)
                .big(big)
                .build()
                .unwrap_err(),
            CoreError::InvalidScoreKind(ScoreKind::AppealNetQ)
        );
    }

    #[test]
    fn submit_micro_batches_at_capacity() {
        let mut engine = engine(3);
        let mut rng = SeededRng::new(8);
        let mut answered = Vec::new();
        for id in 0..7u64 {
            let image = Tensor::randn(&[3, 12, 12], &mut rng);
            if let Some(batch) = engine.submit(InferenceRequest::new(id, image)).unwrap() {
                answered.push(batch);
            }
        }
        // 7 requests at capacity 3: two automatic flushes, one leftover.
        assert_eq!(answered.len(), 2);
        assert_eq!(engine.pending(), 1);
        let tail = engine.flush().unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].id, 6);
        let stats = engine.stats();
        assert_eq!(stats.requests, 7);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.edge_handled + stats.offloaded, 7);
        assert!((stats.mean_batch_size() - 7.0 / 3.0).abs() < 1e-12);
        assert!(stats.total_cost.flops > 0);
        // Ids echo in submission order.
        assert_eq!(
            answered[0].iter().map(|r| r.id).collect::<Vec<_>>(),
            [0, 1, 2]
        );
    }

    #[test]
    fn submit_rejects_wrong_shapes() {
        let mut engine = engine(4);
        let mut rng = SeededRng::new(9);
        let bad = Tensor::randn(&[3, 10, 12], &mut rng);
        assert!(matches!(
            engine.submit(InferenceRequest::new(0, bad)).unwrap_err(),
            CoreError::ShapeMismatch { .. }
        ));
        let batch_of_two = Tensor::randn(&[2, 3, 12, 12], &mut rng);
        assert!(engine
            .submit(InferenceRequest::new(0, batch_of_two))
            .is_err());
        // [1, c, h, w] is accepted.
        let singleton = Tensor::randn(&[1, 3, 12, 12], &mut rng);
        assert!(engine
            .submit(InferenceRequest::new(0, singleton))
            .unwrap()
            .is_none());
        // Batch path validates too.
        let bad_batch = Tensor::randn(&[4, 1, 12, 12], &mut rng);
        assert!(engine.classify_batch(&bad_batch).is_err());
    }

    #[test]
    fn classify_batch_matches_submit_path_bit_identically() {
        let mut batch_engine = engine(64);
        let mut submit_engine = engine(5);
        let mut rng = SeededRng::new(10);
        let images = Tensor::randn(&[13, 3, 12, 12], &mut rng);
        let batch = batch_engine.classify_batch(&images).unwrap();
        let mut single = Vec::new();
        for i in 0..13 {
            let row = images.select_rows(&[i]);
            if let Some(answers) = submit_engine
                .submit(InferenceRequest::new(i as u64, row))
                .unwrap()
            {
                single.extend(answers);
            }
        }
        single.extend(submit_engine.flush().unwrap());
        assert_eq!(batch.len(), single.len());
        for (a, b) in batch.iter().zip(single.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.route, b.route);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
            assert_eq!(a.cost, b.cost);
        }
    }

    #[test]
    fn budget_policy_drains_deterministically_through_the_engine() {
        let (net, big) = tiny_models(4);
        let offload_cost = SystemModel::typical().offload_cost(
            net.flops(),
            big.total_flops(),
            (3 * 12 * 12 * 4) as u64,
        );
        // Budget for exactly two appeals: every later difficult input must
        // stay on the edge.
        let budget = CostBudget::energy_mj(offload_cost.energy_mj * 2.5);
        let mut engine = Engine::builder()
            .appealnet(net)
            .big(big)
            .policy(BudgetPolicy::new(1.0, budget).unwrap())
            .build()
            .unwrap();
        let mut rng = SeededRng::new(12);
        let images = Tensor::randn(&[9, 3, 12, 12], &mut rng);
        // δ = 1.0 wants to offload everything, so the first two go to the
        // cloud and the rest are forced onto the edge.
        let responses = engine.classify_batch(&images).unwrap();
        let cloud: Vec<bool> = responses.iter().map(|r| r.route.is_cloud()).collect();
        assert_eq!(cloud.iter().filter(|&&c| c).count(), 2);
        assert!(cloud[0] && cloud[1]);
        assert_eq!(engine.stats().offloaded, 2);
        assert_eq!(engine.policy_name(), "budget");
    }

    #[test]
    fn stats_rates_and_throughput() {
        let mut engine = engine(8);
        assert_eq!(engine.stats().skipping_rate(), 0.0);
        assert_eq!(engine.stats().throughput_rps(), 0.0);
        let mut rng = SeededRng::new(13);
        let images = Tensor::randn(&[6, 3, 12, 12], &mut rng);
        engine.classify_batch(&images).unwrap();
        let stats = *engine.stats();
        assert!((stats.skipping_rate() + stats.appealing_rate() - 1.0).abs() < 1e-12);
        assert!(stats.busy_seconds > 0.0);
        assert!(stats.throughput_rps() > 0.0);
        engine.reset_stats();
        assert_eq!(engine.stats().requests, 0);
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let mut engine = engine(4);
        assert!(engine.flush().unwrap().is_empty());
        assert_eq!(engine.stats().batches, 0);
    }

    /// Regression test for the flush error path: the pre-fix code
    /// `mem::take`'d `pending_data` *before* the fallible tensor build, so a
    /// desynchronized queue panicked (or, for a caller recovering from the
    /// unwind, left `pending_ids` populated against an emptied data buffer —
    /// every later flush then assembled a batch with the wrong `n` and
    /// silently mis-answered requests). Post-fix, flush validates before
    /// taking, drops both buffers atomically, reports a typed error, and the
    /// engine keeps serving correctly. On pre-fix code this test dies at the
    /// `from_vec(...).expect(...)` panic.
    #[test]
    fn flush_error_path_cannot_desynchronize_the_queue() {
        let mut engine = engine(8);
        let mut rng = SeededRng::new(21);
        let probe = Tensor::randn(&[1, 3, 12, 12], &mut rng);
        for id in 0..3u64 {
            let image = Tensor::randn(&[3, 12, 12], &mut rng);
            assert!(engine
                .submit(InferenceRequest::new(id, image))
                .unwrap()
                .is_none());
        }
        // Simulate the desync (ids present, data short) that a panic
        // unwinding mid-enqueue leaves behind.
        engine.pending_data.truncate(10);
        let err = engine.flush().unwrap_err();
        assert_eq!(
            err,
            CoreError::CorruptQueue {
                pending: 3,
                expected: 3 * 3 * 12 * 12,
                got: 10,
            }
        );
        // Both buffers were dropped together: the engine is consistent.
        assert_eq!(engine.pending(), 0);
        assert!(engine.pending_data.is_empty());
        assert!(engine.flush().unwrap().is_empty());
        assert_eq!(engine.stats().batches, 0, "no corrupt batch was executed");
        // And it still answers new traffic with the right batch size.
        let responses = engine.classify_batch(&probe).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(engine.stats().requests, 1);
    }

    #[test]
    fn flush_drops_orphan_data_without_ids() {
        let mut engine = engine(8);
        engine.pending_data.extend_from_slice(&[1.0; 7]);
        let err = engine.flush().unwrap_err();
        assert_eq!(
            err,
            CoreError::CorruptQueue {
                pending: 0,
                expected: 0,
                got: 7,
            }
        );
        assert!(engine.pending_data.is_empty());
        assert!(engine.flush().unwrap().is_empty());
    }

    #[test]
    fn rejected_submit_leaves_the_queue_untouched() {
        // A bad request must not poison the next micro-batch: validation
        // happens before either pending buffer is mutated.
        let mut engine = engine(8);
        let mut rng = SeededRng::new(22);
        let good = Tensor::randn(&[3, 12, 12], &mut rng);
        engine.submit(InferenceRequest::new(0, good)).unwrap();
        let data_len = engine.pending_data.len();
        let bad = Tensor::randn(&[3, 10, 12], &mut rng);
        assert!(engine.submit(InferenceRequest::new(1, bad)).is_err());
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.pending_data.len(), data_len);
        // The queued good request still flushes cleanly.
        let responses = engine.flush().unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].id, 0);
    }

    #[test]
    fn validate_request_matches_submit_acceptance() {
        let engine = engine(4);
        let mut rng = SeededRng::new(23);
        let ok3 = InferenceRequest::new(0, Tensor::randn(&[3, 12, 12], &mut rng));
        let ok4 = InferenceRequest::new(0, Tensor::randn(&[1, 3, 12, 12], &mut rng));
        let bad = InferenceRequest::new(0, Tensor::randn(&[2, 3, 12, 12], &mut rng));
        assert!(engine.validate_request(&ok3).is_ok());
        assert!(engine.validate_request(&ok4).is_ok());
        assert!(matches!(
            engine.validate_request(&bad).unwrap_err(),
            CoreError::ShapeMismatch { .. }
        ));
        assert_eq!(engine.input_shape(), [3, 12, 12]);
        assert_eq!(engine.max_batch(), 4);
    }

    #[test]
    fn throughput_is_finite_for_degenerate_busy_seconds() {
        let mut stats = EngineStats::zero();
        stats.requests = 10;
        assert_eq!(stats.throughput_rps(), 0.0, "zero busy time");
        stats.busy_seconds = f64::NAN;
        assert_eq!(stats.throughput_rps(), 0.0, "NaN busy time");
        stats.busy_seconds = f64::INFINITY;
        assert_eq!(stats.throughput_rps(), 0.0, "infinite busy time");
        stats.busy_seconds = -1.0;
        assert_eq!(stats.throughput_rps(), 0.0, "negative busy time");
        stats.busy_seconds = 2.0;
        assert_eq!(stats.throughput_rps(), 5.0);
    }
}
