//! Training loops: plain classifier training (for the big network and the
//! baseline little networks) and AppealNet joint training (Algorithm 1).
//!
//! The SGD mini-batch loops are inherently sequential, but every full-dataset
//! evaluation pass ([`evaluate_classifier`], [`big_model_losses`], the final
//! train-accuracy measurement) routes through the parallel batch-evaluation
//! engine in [`crate::parallel`], which shards large datasets across worker
//! threads with deterministic, order-preserving results.

use crate::loss::{AppealLoss, CloudMode};
use crate::parallel::{self, ChunkPolicy};
use crate::two_head::TwoHeadNet;
use appeal_dataset::Dataset;
use appeal_models::ClassifierParts;
use appeal_tensor::loss::SoftmaxCrossEntropy;
use appeal_tensor::optim::{GradClip, LrSchedule, Optimizer, Sgd};
use appeal_tensor::{Layer, SeededRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by both trainers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Learning-rate schedule applied per epoch.
    pub schedule: LrSchedule,
    /// Optional global gradient-norm clip.
    pub grad_clip: Option<f32>,
    /// Seed for batch shuffling.
    pub seed: u64,
    /// Chunking policy for the trainer's evaluation passes. Callers running
    /// several trainers concurrently should split the worker budget (see
    /// [`ChunkPolicy::split_across`]) so combined thread counts stay at the
    /// machine's budget.
    pub eval_policy: ChunkPolicy,
}

impl TrainerConfig {
    /// A reasonable default configuration for the scaled-down models.
    pub fn new(epochs: usize, batch_size: usize, learning_rate: f32) -> Self {
        Self {
            epochs,
            batch_size,
            learning_rate,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: LrSchedule::Cosine {
                total_epochs: epochs.max(1),
                min_lr: learning_rate * 0.05,
            },
            grad_clip: Some(5.0),
            seed: 17,
            eval_policy: ChunkPolicy::runtime(),
        }
    }

    /// Tiny configuration used by fast tests.
    pub fn smoke() -> Self {
        Self::new(2, 32, 0.05)
    }

    fn validate(&self) {
        assert!(self.epochs > 0, "epochs must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self::new(10, 32, 0.05)
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on (a subset of) the training set after the final epoch.
    pub final_train_accuracy: f64,
}

impl TrainingReport {
    /// Loss after the final epoch.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::NAN)
    }

    /// Whether the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(first), Some(last)) => last < first,
            _ => false,
        }
    }
}

/// Trains a plain classifier with softmax cross-entropy (used for the big
/// cloud network and the stand-alone little baselines).
pub fn train_classifier(
    model: &mut ClassifierParts,
    data: &Dataset,
    config: &TrainerConfig,
) -> TrainingReport {
    config.validate();
    let mut rng = SeededRng::new(config.seed);
    let mut optimizer =
        Sgd::with_momentum(config.learning_rate, config.momentum, config.weight_decay);
    let clip = config.grad_clip.map(GradClip::new);
    let ce = SoftmaxCrossEntropy::new();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        optimizer.set_lr(config.schedule.lr_at(config.learning_rate, epoch));
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for batch in data.batches(config.batch_size, true, &mut rng) {
            let features = model.backbone.forward(&batch.images, true);
            let logits = model.head.forward(&features, true);
            loss_sum += ce.mean(&logits, &batch.labels) as f64;
            batches += 1;

            let grad_logits = ce.grad(&logits, &batch.labels);
            let grad_features = model.head.backward(&grad_logits);
            let _ = model.backbone.backward(&grad_features);

            let mut params = model.backbone.params_mut();
            params.extend(model.head.params_mut());
            if let Some(clip) = &clip {
                clip.apply(&mut params);
            }
            optimizer.step(&mut params);
        }
        epoch_losses.push((loss_sum / batches.max(1) as f64) as f32);
    }

    TrainingReport {
        epoch_losses,
        final_train_accuracy: evaluate_classifier_with_policy(
            model,
            data,
            config.batch_size.max(64),
            &config.eval_policy,
        ),
    }
}

/// Accuracy of a plain classifier on a dataset.
pub fn evaluate_classifier(model: &mut ClassifierParts, data: &Dataset, batch_size: usize) -> f64 {
    evaluate_classifier_with_policy(model, data, batch_size, &ChunkPolicy::runtime())
}

/// Like [`evaluate_classifier`] with an explicit chunking policy (callers
/// evaluating several models concurrently split the worker budget).
pub fn evaluate_classifier_with_policy(
    model: &mut ClassifierParts,
    data: &Dataset,
    batch_size: usize,
    policy: &ChunkPolicy,
) -> f64 {
    let correct =
        parallel::classifier_correctness(model, data.images(), data.labels(), batch_size, policy)
            .into_iter()
            .filter(|&c| c)
            .count();
    correct as f64 / data.len().max(1) as f64
}

/// Per-sample cross-entropy losses of the big network over a dataset,
/// aligned with the dataset's sample order. These are the `ℓ(f0(x), y)`
/// terms required by the white-box joint objective (Eq. 9).
pub fn big_model_losses(big: &mut ClassifierParts, data: &Dataset, batch_size: usize) -> Vec<f32> {
    big_model_losses_with_policy(big, data, batch_size, &ChunkPolicy::runtime())
}

/// Like [`big_model_losses`] with an explicit chunking policy.
pub fn big_model_losses_with_policy(
    big: &mut ClassifierParts,
    data: &Dataset,
    batch_size: usize,
    policy: &ChunkPolicy,
) -> Vec<f32> {
    let logits = parallel::classifier_logits(big, data.images(), batch_size, policy);
    SoftmaxCrossEntropy::new().per_sample(&logits, data.labels())
}

/// Trains an AppealNet two-head network with the joint objective
/// (Algorithm 1 of the paper).
///
/// `big_losses` must be aligned with `data`'s sample order and is required in
/// white-box mode; pass an empty slice in black-box mode.
///
/// # Panics
///
/// Panics if white-box mode is requested but `big_losses.len() != data.len()`.
pub fn train_appealnet(
    net: &mut TwoHeadNet,
    data: &Dataset,
    loss: &AppealLoss,
    big_losses: &[f32],
    config: &TrainerConfig,
) -> TrainingReport {
    config.validate();
    if loss.mode() == CloudMode::WhiteBox {
        assert_eq!(
            big_losses.len(),
            data.len(),
            "white-box training requires one big-model loss per training sample"
        );
    }
    let mut rng = SeededRng::new(config.seed);
    let mut optimizer =
        Sgd::with_momentum(config.learning_rate, config.momentum, config.weight_decay);
    let clip = config.grad_clip.map(GradClip::new);
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        optimizer.set_lr(config.schedule.lr_at(config.learning_rate, epoch));
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for batch in data.batches(config.batch_size, true, &mut rng) {
            let batch_big: Vec<f32> = match loss.mode() {
                CloudMode::WhiteBox => batch.indices.iter().map(|&i| big_losses[i]).collect(),
                CloudMode::BlackBox => Vec::new(),
            };
            let out = net.forward(&batch.images, true);
            let loss_out = loss.compute(&out.logits, &out.q, &batch.labels, &batch_big);
            loss_sum += loss_out.loss as f64;
            batches += 1;

            net.backward(&loss_out.grad_logits, &loss_out.grad_q);
            let mut params = net.params_mut();
            if let Some(clip) = &clip {
                clip.apply(&mut params);
            }
            optimizer.step(&mut params);
        }
        epoch_losses.push((loss_sum / batches.max(1) as f64) as f32);
    }

    let out = net.evaluate_with_policy(
        data.images(),
        config.batch_size.max(64),
        &config.eval_policy,
    );
    let correct = out
        .predictions()
        .iter()
        .zip(data.labels().iter())
        .filter(|(p, y)| p == y)
        .count();
    TrainingReport {
        epoch_losses,
        final_train_accuracy: correct as f64 / data.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_dataset::{DatasetPreset, Fidelity};
    use appeal_models::{ModelFamily, ModelSpec};

    fn smoke_data() -> appeal_dataset::DatasetPair {
        DatasetPreset::Cifar10Like.spec(Fidelity::Smoke).generate()
    }

    #[test]
    fn classifier_training_reduces_loss() {
        let pair = smoke_data();
        let mut rng = SeededRng::new(1);
        let mut model =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
        let config = TrainerConfig::new(3, 16, 0.08);
        let report = train_classifier(&mut model, &pair.train, &config);
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(report.improved(), "losses: {:?}", report.epoch_losses);
        assert!(report.final_loss().is_finite());
    }

    #[test]
    fn classifier_beats_chance_after_training() {
        let pair = smoke_data();
        let mut rng = SeededRng::new(2);
        let mut model =
            ModelSpec::little(ModelFamily::EfficientNetLike, [3, 12, 12], 10).build(&mut rng);
        let config = TrainerConfig::new(6, 16, 0.08);
        train_classifier(&mut model, &pair.train, &config);
        let acc = evaluate_classifier(&mut model, &pair.test, 64);
        assert!(acc > 0.2, "test accuracy only {acc}");
    }

    #[test]
    fn big_model_losses_align_with_dataset() {
        let pair = smoke_data();
        let mut rng = SeededRng::new(3);
        let mut big = ModelSpec::big([3, 12, 12], 10).build(&mut rng);
        let losses = big_model_losses(&mut big, &pair.train, 64);
        assert_eq!(losses.len(), pair.train.len());
        assert!(losses.iter().all(|l| l.is_finite() && *l >= 0.0));
    }

    #[test]
    fn appealnet_joint_training_reduces_loss_whitebox() {
        let pair = smoke_data();
        let mut rng = SeededRng::new(4);
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
        let mut big = ModelSpec::big([3, 12, 12], 10).build(&mut rng);
        let big_losses = big_model_losses(&mut big, &pair.train, 64);
        let mut net = TwoHeadNet::from_parts(little, &mut rng);
        let loss = AppealLoss::new(0.1, CloudMode::WhiteBox);
        let config = TrainerConfig::new(3, 16, 0.05);
        let report = train_appealnet(&mut net, &pair.train, &loss, &big_losses, &config);
        assert!(report.improved(), "losses: {:?}", report.epoch_losses);
    }

    #[test]
    fn appealnet_joint_training_blackbox_runs_without_big_losses() {
        let pair = smoke_data();
        let mut rng = SeededRng::new(5);
        let little =
            ModelSpec::little(ModelFamily::ShuffleNetLike, [3, 12, 12], 10).build(&mut rng);
        let mut net = TwoHeadNet::from_parts(little, &mut rng);
        let loss = AppealLoss::new(0.05, CloudMode::BlackBox);
        let config = TrainerConfig::new(2, 16, 0.05);
        let report = train_appealnet(&mut net, &pair.train, &loss, &[], &config);
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(report.final_loss().is_finite());
    }

    #[test]
    #[should_panic(expected = "one big-model loss per training sample")]
    fn whitebox_requires_big_losses() {
        let pair = smoke_data();
        let mut rng = SeededRng::new(6);
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
        let mut net = TwoHeadNet::from_parts(little, &mut rng);
        let loss = AppealLoss::new(0.1, CloudMode::WhiteBox);
        let _ = train_appealnet(&mut net, &pair.train, &loss, &[], &TrainerConfig::smoke());
    }

    #[test]
    fn config_validation() {
        let mut config = TrainerConfig::smoke();
        config.epochs = 0;
        let pair = smoke_data();
        let mut rng = SeededRng::new(7);
        let mut model =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            train_classifier(&mut model, &pair.train, &config)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let pair = smoke_data();
        let config = TrainerConfig::new(1, 16, 0.05);
        let run = || {
            let mut rng = SeededRng::new(8);
            let mut model =
                ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
            train_classifier(&mut model, &pair.train, &config).final_loss()
        };
        assert_eq!(run(), run());
    }
}
