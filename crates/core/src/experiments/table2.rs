//! Table II: appealing rate of black-box (oracle cloud) AppealNet vs. the
//! score-margin baseline at target accuracy improvements, on CIFAR-10, for
//! the three efficient little-network families.

use crate::experiments::PreparedExperiment;
use crate::loss::CloudMode;
use crate::scores::ScoreKind;
use crate::tuning::min_cost_for_acci;
use serde::{Deserialize, Serialize};

/// The AccI targets used by the paper's Table II.
pub const ACCI_TARGETS: [f64; 4] = [0.50, 0.75, 0.90, 0.95];

/// One (family, AccI target) cell of Table II.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table2Entry {
    /// Relative accuracy-improvement target.
    pub acci_target: f64,
    /// Minimum appealing rate reaching the target with the score-margin baseline.
    pub sm_appealing_rate: Option<f64>,
    /// Minimum appealing rate reaching the target with AppealNet.
    pub appealnet_appealing_rate: Option<f64>,
}

impl Table2Entry {
    /// Relative saving in appealing rate (`(SM − AppealNet) / SM`).
    pub fn relative_saving(&self) -> Option<f64> {
        match (self.sm_appealing_rate, self.appealnet_appealing_rate) {
            (Some(sm), Some(an)) if sm > 0.0 => Some((sm - an) / sm),
            _ => None,
        }
    }
}

/// One little-network-family row of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Little-network family (paper naming).
    pub family: String,
    /// Stand-alone accuracy of the baseline little network.
    pub original_accuracy: f64,
    /// Accuracy of the AppealNet approximator head.
    pub appealnet_accuracy: f64,
    /// One entry per AccI target.
    pub entries: Vec<Table2Entry>,
}

impl Table2Row {
    /// Renders the row in the layout of the paper's Table II.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{:<14} original acc = {:.2}%   AppealNet acc = {:.2}%\n",
            self.family,
            self.original_accuracy * 100.0,
            self.appealnet_accuracy * 100.0,
        );
        for e in &self.entries {
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{:.2}%", x * 100.0),
                None => "unreached".to_string(),
            };
            out.push_str(&format!(
                "    AccI ≥ {:>4.1}%:  AR(SM) = {:>9}   AR(AppealNet) = {:>9}   saving = {}\n",
                e.acci_target * 100.0,
                fmt(e.sm_appealing_rate),
                fmt(e.appealnet_appealing_rate),
                match e.relative_saving() {
                    Some(s) => format!("{:.2}%", s * 100.0),
                    None => "n/a".to_string(),
                }
            ));
        }
        out
    }
}

/// Computes the Table II row for a prepared black-box experiment.
///
/// # Panics
///
/// Panics if the experiment was prepared in white-box mode (Table II is the
/// black-box evaluation).
pub fn run(prepared: &PreparedExperiment) -> Table2Row {
    run_with_targets(prepared, &ACCI_TARGETS)
}

/// Computes a Table II row with custom AccI targets.
///
/// # Panics
///
/// Panics if the experiment was prepared in white-box mode.
pub fn run_with_targets(prepared: &PreparedExperiment, targets: &[f64]) -> Table2Row {
    assert_eq!(
        prepared.mode,
        CloudMode::BlackBox,
        "Table II is the black-box evaluation; prepare with CloudMode::BlackBox"
    );
    let sm = prepared.artifacts(ScoreKind::ScoreMargin);
    let appeal = prepared.artifacts(ScoreKind::AppealNetQ);
    let entries = targets
        .iter()
        .map(|&target| Table2Entry {
            acci_target: target,
            sm_appealing_rate: min_cost_for_acci(sm, target)
                .expect("prepared artifacts are non-empty with finite scores")
                .map(|c| c.metrics.appealing_rate),
            appealnet_appealing_rate: min_cost_for_acci(appeal, target)
                .expect("prepared artifacts are non-empty with finite scores")
                .map(|c| c.metrics.appealing_rate),
        })
        .collect();
    Table2Row {
        family: prepared.family.paper_name().to_string(),
        original_accuracy: prepared.little_accuracy,
        appealnet_accuracy: prepared.appealnet_accuracy,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentContext;
    use appeal_dataset::{DatasetPreset, Fidelity};
    use appeal_models::ModelFamily;

    #[test]
    fn entry_saving() {
        let e = Table2Entry {
            acci_target: 0.5,
            sm_appealing_rate: Some(0.2),
            appealnet_appealing_rate: Some(0.1),
        };
        assert!((e.relative_saving().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table2_smoke_row() {
        let ctx = ExperimentContext::new(Fidelity::Smoke, 21);
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::EfficientNetLike,
            CloudMode::BlackBox,
            &ctx,
        );
        let row = run(&prepared);
        assert_eq!(row.entries.len(), 4);
        let text = row.render_text();
        assert!(text.contains("EfficientNet"));
        // In black-box mode the oracle is always right, so every target is
        // reachable by appealing everything (AR = 1).
        for e in &row.entries {
            assert!(e.appealnet_appealing_rate.is_some());
            assert!(e.sm_appealing_rate.is_some());
        }
        // Higher targets require appealing at least as much.
        let ars: Vec<f64> = row
            .entries
            .iter()
            .map(|e| e.appealnet_appealing_rate.unwrap())
            .collect();
        for w in ars.windows(2) {
            assert!(w[1] + 1e-9 >= w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "black-box evaluation")]
    fn rejects_whitebox_experiment() {
        let ctx = ExperimentContext::new(Fidelity::Smoke, 22);
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        let _ = run(&prepared);
    }
}
