//! Energy report: translates the Table I operating points into Joules using
//! the `appeal-hw` system model, backing the paper's headline claim of
//! "up to more than 40% energy savings ... without sacrificing accuracy".

use crate::experiments::table1::ACCI_TARGETS;
use crate::experiments::PreparedExperiment;
use crate::scores::ScoreKind;
use crate::tuning::min_cost_for_acci;
use appeal_hw::SystemModel;
use serde::{Deserialize, Serialize};

/// Energy comparison at one AccI target.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyEntry {
    /// Relative accuracy-improvement target.
    pub acci_target: f64,
    /// Expected per-input energy with the score-margin baseline, in millijoules.
    pub sm_energy_mj: Option<f64>,
    /// Expected per-input energy with AppealNet, in millijoules.
    pub appealnet_energy_mj: Option<f64>,
    /// Expected per-input energy if every input were sent to the cloud.
    pub cloud_only_energy_mj: f64,
}

impl EnergyEntry {
    /// Relative energy saving of AppealNet over the baseline.
    pub fn relative_saving(&self) -> Option<f64> {
        match (self.sm_energy_mj, self.appealnet_energy_mj) {
            (Some(sm), Some(an)) if sm > 0.0 => Some((sm - an) / sm),
            _ => None,
        }
    }
}

/// Energy report for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dataset name (paper naming).
    pub dataset: String,
    /// Hardware configuration description.
    pub hardware: String,
    /// One entry per AccI target.
    pub entries: Vec<EnergyEntry>,
}

impl EnergyReport {
    /// Renders the report as text.
    pub fn render_text(&self) -> String {
        let mut out = format!("Energy report — {} on {}\n", self.dataset, self.hardware);
        for e in &self.entries {
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4} mJ"),
                None => "unreached".to_string(),
            };
            out.push_str(&format!(
                "    AccI ≥ {:>4.1}%:  SM = {:>12}   AppealNet = {:>12}   cloud-only = {:.4} mJ   saving = {}\n",
                e.acci_target * 100.0,
                fmt(e.sm_energy_mj),
                fmt(e.appealnet_energy_mj),
                e.cloud_only_energy_mj,
                match e.relative_saving() {
                    Some(s) => format!("{:.2}%", s * 100.0),
                    None => "n/a".to_string(),
                }
            ));
        }
        out
    }

    /// The largest relative saving across all targets (the "up to" number).
    pub fn max_saving(&self) -> Option<f64> {
        self.entries
            .iter()
            .filter_map(EnergyEntry::relative_saving)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }
}

/// Computes the energy report for a prepared (white-box) experiment under a
/// given hardware model.
pub fn run(prepared: &PreparedExperiment, hardware: &SystemModel) -> EnergyReport {
    run_with_targets(prepared, hardware, &ACCI_TARGETS)
}

/// Computes the energy report with custom AccI targets.
pub fn run_with_targets(
    prepared: &PreparedExperiment,
    hardware: &SystemModel,
    targets: &[f64],
) -> EnergyReport {
    let sm = prepared.artifacts(ScoreKind::ScoreMargin);
    let appeal = prepared.artifacts(ScoreKind::AppealNetQ);
    let energy_at = |sr: f64| {
        hardware
            .expected_cost(
                sr,
                prepared.little_flops,
                prepared.big_flops,
                prepared.input_bytes,
            )
            .energy_mj
    };
    let cloud_only = hardware
        .cloud_only_cost(prepared.big_flops, prepared.input_bytes)
        .energy_mj;
    let entries = targets
        .iter()
        .map(|&target| EnergyEntry {
            acci_target: target,
            sm_energy_mj: min_cost_for_acci(sm, target)
                .expect("prepared artifacts are non-empty with finite scores")
                .map(|c| energy_at(c.metrics.skipping_rate)),
            appealnet_energy_mj: min_cost_for_acci(appeal, target)
                .expect("prepared artifacts are non-empty with finite scores")
                .map(|c| energy_at(c.metrics.skipping_rate)),
            cloud_only_energy_mj: cloud_only,
        })
        .collect();
    EnergyReport {
        dataset: prepared.preset.paper_name().to_string(),
        hardware: format!(
            "{} + {} via {}",
            hardware.edge.name, hardware.cloud.name, hardware.link.name
        ),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentContext;
    use crate::loss::CloudMode;
    use appeal_dataset::{DatasetPreset, Fidelity};
    use appeal_models::ModelFamily;

    #[test]
    fn energy_entry_saving() {
        let e = EnergyEntry {
            acci_target: 0.9,
            sm_energy_mj: Some(10.0),
            appealnet_energy_mj: Some(6.0),
            cloud_only_energy_mj: 20.0,
        };
        assert!((e.relative_saving().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn energy_report_smoke() {
        let ctx = ExperimentContext::new(Fidelity::Smoke, 31);
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        let report = run(&prepared, &SystemModel::typical());
        assert_eq!(report.entries.len(), 4);
        for e in &report.entries {
            if let Some(v) = e.appealnet_energy_mj {
                assert!(v > 0.0);
                assert!(v <= e.cloud_only_energy_mj * 1.5);
            }
        }
        assert!(report.render_text().contains("mJ"));
        let _ = report.max_saving();
    }
}
