//! Ready-made experiment pipelines for every figure and table in the paper's
//! evaluation section (Section VI).
//!
//! The heavy lifting — generating a dataset, training the big network, the
//! baseline little network and the AppealNet two-head network, and
//! precomputing per-sample routing artifacts — is done once by
//! [`PreparedExperiment::prepare`]; each figure/table module then reads the
//! cheap precomputed artifacts.

pub mod ablations;
pub mod energy;
pub mod fig4;
pub mod fig5;
pub mod table1;
pub mod table2;

use crate::loss::{AppealLoss, CloudMode};
use crate::scores::ScoreKind;
use crate::system::EvaluationArtifacts;
use crate::training::{
    big_model_losses, evaluate_classifier, train_appealnet, train_classifier, TrainerConfig,
};
use crate::two_head::TwoHeadNet;
use appeal_dataset::{DatasetPair, DatasetPreset, Fidelity};
use appeal_models::{ClassifierParts, ModelFamily, ModelSpec};
use appeal_tensor::{Layer, SeededRng};
use serde::{Deserialize, Serialize};

/// Extension helpers on [`CloudMode`] used by the experiment harnesses.
pub trait CloudModeExt {
    /// Short name used in report file names.
    fn short_name(&self) -> &'static str;
}

impl CloudModeExt for CloudMode {
    fn short_name(&self) -> &'static str {
        match self {
            CloudMode::WhiteBox => "whitebox",
            CloudMode::BlackBox => "blackbox",
        }
    }
}

/// Shared configuration of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentContext {
    /// Dataset / training scale.
    pub fidelity: Fidelity,
    /// Master seed; every component derives its own stream from it.
    pub seed: u64,
    /// Trade-off weight β of the joint objective (Eq. 9 / Eq. 10).
    pub beta: f32,
}

impl ExperimentContext {
    /// Creates a context with the default β used throughout the evaluation.
    pub fn new(fidelity: Fidelity, seed: u64) -> Self {
        Self {
            fidelity,
            seed,
            beta: 0.15,
        }
    }

    /// Returns a copy with a different β (used by the β ablation).
    pub fn with_beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    /// Trainer configuration for the big cloud network.
    pub fn big_config(&self) -> TrainerConfig {
        let mut config = match self.fidelity {
            Fidelity::Smoke => TrainerConfig::new(2, 32, 0.08),
            Fidelity::Paper => TrainerConfig::new(6, 48, 0.08),
        };
        config.seed = self.seed ^ 0xB16;
        config
    }

    /// Trainer configuration for the stand-alone little network.
    pub fn little_config(&self) -> TrainerConfig {
        let mut config = match self.fidelity {
            Fidelity::Smoke => TrainerConfig::new(2, 32, 0.08),
            Fidelity::Paper => TrainerConfig::new(8, 48, 0.08),
        };
        config.seed = self.seed ^ 0x117;
        config
    }

    /// Trainer configuration for AppealNet joint training (Algorithm 1).
    pub fn joint_config(&self) -> TrainerConfig {
        let mut config = match self.fidelity {
            Fidelity::Smoke => TrainerConfig::new(2, 32, 0.04),
            Fidelity::Paper => TrainerConfig::new(6, 48, 0.04),
        };
        config.seed = self.seed ^ 0x107;
        config
    }

    /// Batch size used for evaluation passes.
    pub fn eval_batch(&self) -> usize {
        128
    }
}

/// Copies parameter values from `src` into `dst`.
///
/// Both models must have been built from the same [`ModelSpec`] so their
/// parameter lists line up. Used to implement Algorithm 1's "initialize with
/// the pre-trained little model" without retraining.
fn copy_params(src: &mut ClassifierParts, dst: &mut ClassifierParts) {
    let mut src_params = src.backbone.params_mut();
    src_params.extend(src.head.params_mut());
    let mut dst_params = dst.backbone.params_mut();
    dst_params.extend(dst.head.params_mut());
    assert_eq!(
        src_params.len(),
        dst_params.len(),
        "models must share an architecture to copy parameters"
    );
    for (s, d) in src_params.iter().zip(dst_params.iter_mut()) {
        assert_eq!(s.value.shape(), d.value.shape(), "parameter shape mismatch");
        d.value = s.value.clone();
    }
}

/// The trained models retained by a [`PreparedExperiment`] so that ablations
/// and deployment examples can reuse them without retraining.
pub struct TrainedModels {
    /// The big cloud network (untrained in black-box mode).
    pub big: ClassifierParts,
    /// The stand-alone baseline little network.
    pub baseline: ClassifierParts,
    /// The jointly trained AppealNet two-head network.
    pub appealnet: TwoHeadNet,
}

/// A fully trained little/big model pair with precomputed routing artifacts
/// for every score kind, ready to answer any Fig. 5 / Table I / Table II query.
pub struct PreparedExperiment {
    /// Dataset preset this experiment ran on.
    pub preset: DatasetPreset,
    /// Little-network family.
    pub family: ModelFamily,
    /// White-box or black-box cloud model.
    pub mode: CloudMode,
    /// Test accuracy of the stand-alone baseline little network.
    pub little_accuracy: f64,
    /// Test accuracy of the AppealNet two-head network's approximator head.
    pub appealnet_accuracy: f64,
    /// Test accuracy of the big network (1.0 in black-box / oracle mode).
    pub big_accuracy: f64,
    /// Per-inference FLOPs of the little network (with predictor head).
    pub little_flops: u64,
    /// Per-inference FLOPs of the big network.
    pub big_flops: u64,
    /// Bytes uploaded per offloaded input (raw f32 image).
    pub input_bytes: u64,
    /// Training reports (big, little, joint) for diagnostics.
    pub training_losses: Vec<(String, Vec<f32>)>,
    /// The trained models themselves (for ablations and deployment examples).
    pub models: TrainedModels,
    artifacts: Vec<(ScoreKind, EvaluationArtifacts)>,
}

impl std::fmt::Debug for PreparedExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PreparedExperiment({}, {}, {}, little={:.3}, appeal={:.3}, big={:.3})",
            self.preset, self.family, self.mode, self.little_accuracy, self.appealnet_accuracy,
            self.big_accuracy
        )
    }
}

impl PreparedExperiment {
    /// Runs the full preparation pipeline:
    ///
    /// 1. generate the dataset preset;
    /// 2. train the big network (white-box mode only);
    /// 3. train the stand-alone little network (the confidence baselines);
    /// 4. initialize AppealNet from the trained little network, insert the
    ///    predictor head and jointly train it (Algorithm 1);
    /// 5. evaluate everything on the test split and precompute routing
    ///    artifacts for every score kind.
    pub fn prepare(
        preset: DatasetPreset,
        family: ModelFamily,
        mode: CloudMode,
        ctx: &ExperimentContext,
    ) -> Self {
        let spec = preset.spec(ctx.fidelity);
        let pair = spec.generate();
        Self::prepare_with_data(preset, &pair, family, mode, ctx)
    }

    /// Like [`PreparedExperiment::prepare`] but with a caller-provided dataset
    /// pair (lets several experiments share one generated dataset).
    pub fn prepare_with_data(
        preset: DatasetPreset,
        pair: &DatasetPair,
        family: ModelFamily,
        mode: CloudMode,
        ctx: &ExperimentContext,
    ) -> Self {
        let spec = preset.spec(ctx.fidelity);
        let input_shape = [spec.channels, spec.height, spec.width];
        let num_classes = spec.num_classes;
        let mut rng = SeededRng::new(ctx.seed ^ preset.spec(ctx.fidelity).seed);
        let mut big_rng = rng.split();
        let mut little_rng = rng.split();
        let eval_batch = ctx.eval_batch();
        let mut training_losses = Vec::new();

        // --- Big (cloud) network ---
        let mut big = ModelSpec::big(input_shape, num_classes).build(&mut big_rng);
        let (big_accuracy, big_train_losses) = match mode {
            CloudMode::WhiteBox => {
                let report = train_classifier(&mut big, &pair.train, &ctx.big_config());
                training_losses.push(("big".to_string(), report.epoch_losses.clone()));
                let acc = evaluate_classifier(&mut big, &pair.test, eval_batch);
                let losses = big_model_losses(&mut big, &pair.train, eval_batch);
                (acc, losses)
            }
            CloudMode::BlackBox => (1.0, Vec::new()),
        };

        // --- Stand-alone little network (confidence baselines) ---
        let little_spec = ModelSpec::little(family, input_shape, num_classes);
        let mut init_rng = little_rng.split();
        let mut baseline = little_spec.build(&mut init_rng);
        let report = train_classifier(&mut baseline, &pair.train, &ctx.little_config());
        training_losses.push(("little".to_string(), report.epoch_losses.clone()));
        let little_accuracy = evaluate_classifier(&mut baseline, &pair.test, eval_batch);

        // --- AppealNet two-head network, initialized from the trained little net ---
        let mut appeal_init_rng = little_rng.split();
        let mut appeal_little = little_spec.build(&mut appeal_init_rng);
        copy_params(&mut baseline, &mut appeal_little);
        let mut appealnet = TwoHeadNet::from_parts(appeal_little, &mut little_rng);
        let loss = AppealLoss::new(ctx.beta, mode);
        let report = train_appealnet(
            &mut appealnet,
            &pair.train,
            &loss,
            &big_train_losses,
            &ctx.joint_config(),
        );
        training_losses.push(("joint".to_string(), report.epoch_losses.clone()));

        // --- Evaluation artifacts on the test split ---
        let test = &pair.test;
        let hard = test.hard_flags();
        let mut artifacts = Vec::new();
        let mut appeal_art = EvaluationArtifacts::from_two_head(
            &mut appealnet,
            &mut big,
            test.images(),
            test.labels(),
            hard,
            eval_batch,
        );
        let appealnet_accuracy =
            appeal_art.little_correct.iter().filter(|&&c| c).count() as f64 / test.len() as f64;
        if mode == CloudMode::BlackBox {
            appeal_art.big_correct = vec![true; test.len()];
        }
        artifacts.push((ScoreKind::AppealNetQ, appeal_art));
        for kind in ScoreKind::baselines() {
            let mut art = EvaluationArtifacts::from_confidence_baseline(
                &mut baseline,
                &mut big,
                test.images(),
                test.labels(),
                hard,
                kind,
                eval_batch,
            );
            if mode == CloudMode::BlackBox {
                art.big_correct = vec![true; test.len()];
            }
            artifacts.push((kind, art));
        }

        let little_flops = appealnet.flops();
        let big_flops = big.total_flops();
        Self {
            preset,
            family,
            mode,
            little_accuracy,
            appealnet_accuracy,
            big_accuracy,
            little_flops,
            big_flops,
            input_bytes: (input_shape.iter().product::<usize>() * 4) as u64,
            training_losses,
            models: TrainedModels {
                big,
                baseline,
                appealnet,
            },
            artifacts,
        }
    }

    /// Routing artifacts for a particular score kind.
    ///
    /// # Panics
    ///
    /// Panics if the score kind was not prepared (never happens for the four
    /// standard kinds).
    pub fn artifacts(&self, kind: ScoreKind) -> &EvaluationArtifacts {
        self.artifacts
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, a)| a)
            .unwrap_or_else(|| panic!("no artifacts prepared for {kind}"))
    }

    /// All prepared score kinds.
    pub fn score_kinds(&self) -> Vec<ScoreKind> {
        self.artifacts.iter().map(|(k, _)| *k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::new(Fidelity::Smoke, 7)
    }

    #[test]
    fn context_configs_scale_with_fidelity() {
        let smoke = ExperimentContext::new(Fidelity::Smoke, 1);
        let paper = ExperimentContext::new(Fidelity::Paper, 1);
        assert!(smoke.big_config().epochs < paper.big_config().epochs);
        assert!(smoke.joint_config().epochs <= paper.joint_config().epochs);
        assert_eq!(smoke.with_beta(0.5).beta, 0.5);
        assert_eq!(CloudMode::WhiteBox.short_name(), "whitebox");
    }

    #[test]
    fn prepare_whitebox_smoke_produces_all_artifacts() {
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx(),
        );
        assert_eq!(prepared.score_kinds().len(), 4);
        for kind in ScoreKind::all() {
            let art = prepared.artifacts(kind);
            assert_eq!(art.len(), 30);
            assert!(art.scores.iter().all(|s| s.is_finite()));
        }
        assert!(prepared.little_flops < prepared.big_flops);
        assert!(prepared.big_accuracy > 0.0 && prepared.big_accuracy <= 1.0);
        assert_eq!(prepared.training_losses.len(), 3);
        assert!(!format!("{prepared:?}").is_empty());
    }

    #[test]
    fn prepare_blackbox_treats_cloud_as_oracle() {
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::ShuffleNetLike,
            CloudMode::BlackBox,
            &ctx(),
        );
        assert_eq!(prepared.big_accuracy, 1.0);
        let art = prepared.artifacts(ScoreKind::AppealNetQ);
        assert!(art.big_correct.iter().all(|&c| c));
        // Only big + little + joint training entries minus the untrained big.
        assert_eq!(prepared.training_losses.len(), 2);
    }

    #[test]
    fn copy_params_transfers_trained_weights() {
        let mut rng = SeededRng::new(3);
        let spec = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10);
        let mut a = spec.build(&mut rng);
        let mut b = spec.build(&mut SeededRng::new(99));
        // Make them differ, then copy.
        let x = appeal_tensor::Tensor::randn(&[2, 3, 12, 12], &mut rng);
        assert!(a.forward(&x, false).max_abs_diff(&b.forward(&x, false)) > 1e-6);
        copy_params(&mut a, &mut b);
        assert!(a.forward(&x, false).max_abs_diff(&b.forward(&x, false)) < 1e-6);
    }
}
