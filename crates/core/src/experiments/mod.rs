//! Ready-made experiment pipelines for every figure and table in the paper's
//! evaluation section (Section VI).
//!
//! The heavy lifting — generating a dataset, training the big network, the
//! baseline little network and the AppealNet two-head network, and
//! precomputing per-sample routing artifacts — is done once by
//! [`PreparedExperiment::prepare`]; each figure/table module then reads the
//! cheap precomputed artifacts.

pub mod ablations;
pub mod energy;
pub mod fig4;
pub mod fig5;
pub mod table1;
pub mod table2;

use crate::loss::{AppealLoss, CloudMode};
use crate::parallel::{self, ChunkPolicy};
use crate::scores::ScoreKind;
use crate::system::EvaluationArtifacts;
use crate::training::{
    big_model_losses_with_policy, evaluate_classifier_with_policy, train_appealnet,
    train_classifier, TrainerConfig,
};
use crate::two_head::TwoHeadNet;
use appeal_dataset::{DatasetPair, DatasetPreset, Fidelity};
use appeal_models::{ClassifierParts, ModelFamily, ModelSpec};
use appeal_tensor::loss::SoftmaxCrossEntropy;
use appeal_tensor::{Layer, SeededRng};
use serde::{Deserialize, Serialize};

/// Extension helpers on [`CloudMode`] used by the experiment harnesses.
pub trait CloudModeExt {
    /// Short name used in report file names.
    fn short_name(&self) -> &'static str;
}

impl CloudModeExt for CloudMode {
    fn short_name(&self) -> &'static str {
        match self {
            CloudMode::WhiteBox => "whitebox",
            CloudMode::BlackBox => "blackbox",
        }
    }
}

/// Shared configuration of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentContext {
    /// Dataset / training scale.
    pub fidelity: Fidelity,
    /// Master seed; every component derives its own stream from it.
    pub seed: u64,
    /// Trade-off weight β of the joint objective (Eq. 9 / Eq. 10).
    pub beta: f32,
}

impl ExperimentContext {
    /// Creates a context with the default β used throughout the evaluation.
    pub fn new(fidelity: Fidelity, seed: u64) -> Self {
        Self {
            fidelity,
            seed,
            beta: 0.15,
        }
    }

    /// Returns a copy with a different β (used by the β ablation).
    pub fn with_beta(mut self, beta: f32) -> Self {
        self.beta = beta;
        self
    }

    /// Trainer configuration for the big cloud network.
    ///
    /// Configs carry the full fidelity-appropriate worker budget;
    /// [`PreparedExperiment::prepare_with_data`] splits it across whichever
    /// trainers it actually runs concurrently for the chosen [`CloudMode`].
    pub fn big_config(&self) -> TrainerConfig {
        let mut config = match self.fidelity {
            Fidelity::Smoke => TrainerConfig::new(2, 32, 0.08),
            Fidelity::Paper => TrainerConfig::new(6, 48, 0.08),
        };
        config.seed = self.seed ^ 0xB16;
        config.eval_policy = ChunkPolicy::for_fidelity(self.fidelity);
        config
    }

    /// Trainer configuration for the stand-alone little network.
    pub fn little_config(&self) -> TrainerConfig {
        let mut config = match self.fidelity {
            Fidelity::Smoke => TrainerConfig::new(2, 32, 0.08),
            Fidelity::Paper => TrainerConfig::new(8, 48, 0.08),
        };
        config.seed = self.seed ^ 0x117;
        config.eval_policy = ChunkPolicy::for_fidelity(self.fidelity);
        config
    }

    /// Trainer configuration for AppealNet joint training (Algorithm 1).
    pub fn joint_config(&self) -> TrainerConfig {
        let mut config = match self.fidelity {
            Fidelity::Smoke => TrainerConfig::new(2, 32, 0.04),
            Fidelity::Paper => TrainerConfig::new(6, 48, 0.04),
        };
        config.seed = self.seed ^ 0x107;
        config.eval_policy = ChunkPolicy::for_fidelity(self.fidelity);
        config
    }

    /// Batch size used for evaluation passes.
    pub fn eval_batch(&self) -> usize {
        128
    }
}

/// Copies parameter values from `src` into `dst`.
///
/// Both models must have been built from the same [`ModelSpec`] so their
/// parameter lists line up. Used to implement Algorithm 1's "initialize with
/// the pre-trained little model" without retraining.
fn copy_params(src: &mut ClassifierParts, dst: &mut ClassifierParts) {
    let mut src_params = src.backbone.params_mut();
    src_params.extend(src.head.params_mut());
    let mut dst_params = dst.backbone.params_mut();
    dst_params.extend(dst.head.params_mut());
    assert_eq!(
        src_params.len(),
        dst_params.len(),
        "models must share an architecture to copy parameters"
    );
    for (s, d) in src_params.iter().zip(dst_params.iter_mut()) {
        assert_eq!(s.value.shape(), d.value.shape(), "parameter shape mismatch");
        d.value = s.value.clone();
    }
}

/// The trained models retained by a [`PreparedExperiment`] so that ablations
/// and deployment examples can reuse them without retraining.
pub struct TrainedModels {
    /// The big cloud network (untrained in black-box mode).
    pub big: ClassifierParts,
    /// The stand-alone baseline little network.
    pub baseline: ClassifierParts,
    /// The jointly trained AppealNet two-head network.
    pub appealnet: TwoHeadNet,
}

/// A fully trained little/big model pair with precomputed routing artifacts
/// for every score kind, ready to answer any Fig. 5 / Table I / Table II query.
pub struct PreparedExperiment {
    /// Dataset preset this experiment ran on.
    pub preset: DatasetPreset,
    /// Little-network family.
    pub family: ModelFamily,
    /// White-box or black-box cloud model.
    pub mode: CloudMode,
    /// Test accuracy of the stand-alone baseline little network.
    pub little_accuracy: f64,
    /// Test accuracy of the AppealNet two-head network's approximator head.
    pub appealnet_accuracy: f64,
    /// Test accuracy of the big network (1.0 in black-box / oracle mode).
    pub big_accuracy: f64,
    /// Per-inference FLOPs of the little network (with predictor head).
    pub little_flops: u64,
    /// Per-inference FLOPs of the big network.
    pub big_flops: u64,
    /// Bytes uploaded per offloaded input (raw f32 image).
    pub input_bytes: u64,
    /// Training reports (big, little, joint) for diagnostics.
    pub training_losses: Vec<(String, Vec<f32>)>,
    /// The trained models themselves (for ablations and deployment examples).
    pub models: TrainedModels,
    artifacts: Vec<(ScoreKind, EvaluationArtifacts)>,
}

impl std::fmt::Debug for PreparedExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PreparedExperiment({}, {}, {}, little={:.3}, appeal={:.3}, big={:.3})",
            self.preset,
            self.family,
            self.mode,
            self.little_accuracy,
            self.appealnet_accuracy,
            self.big_accuracy
        )
    }
}

impl PreparedExperiment {
    /// Runs the full preparation pipeline:
    ///
    /// 1. generate the dataset preset;
    /// 2. train the big network (white-box mode only);
    /// 3. train the stand-alone little network (the confidence baselines);
    /// 4. initialize AppealNet from the trained little network, insert the
    ///    predictor head and jointly train it (Algorithm 1);
    /// 5. evaluate everything on the test split and precompute routing
    ///    artifacts for every score kind.
    pub fn prepare(
        preset: DatasetPreset,
        family: ModelFamily,
        mode: CloudMode,
        ctx: &ExperimentContext,
    ) -> Self {
        let spec = preset.spec(ctx.fidelity);
        let pair = spec.generate();
        Self::prepare_with_data(preset, &pair, family, mode, ctx)
    }

    /// Like [`PreparedExperiment::prepare`] but with a caller-provided dataset
    /// pair (lets several experiments share one generated dataset).
    ///
    /// Training of the big network and the stand-alone little baseline run on
    /// separate worker threads (they are independent given their derived RNG
    /// streams), and the three evaluation passes over the test split — the
    /// two-head network, the big network and the little baseline — also run
    /// concurrently, with each pass internally sharded per the fidelity's
    /// [`ChunkPolicy`]. Results are bit-identical to a sequential run.
    pub fn prepare_with_data(
        preset: DatasetPreset,
        pair: &DatasetPair,
        family: ModelFamily,
        mode: CloudMode,
        ctx: &ExperimentContext,
    ) -> Self {
        let spec = preset.spec(ctx.fidelity);
        let input_shape = [spec.channels, spec.height, spec.width];
        let num_classes = spec.num_classes;
        let mut rng = SeededRng::new(ctx.seed ^ preset.spec(ctx.fidelity).seed);
        let mut big_rng = rng.split();
        let mut little_rng = rng.split();
        let eval_batch = ctx.eval_batch();
        let policy = ChunkPolicy::for_fidelity(ctx.fidelity);
        let mut training_losses = Vec::new();

        // --- Big (cloud) network and stand-alone little baseline ---
        // Their RNG streams are derived up front, so the two training runs
        // are independent and can proceed in parallel.
        let little_spec = ModelSpec::little(family, input_shape, num_classes);
        let mut init_rng = little_rng.split();
        // In black-box mode the big branch does no work, so the little
        // trainer keeps the full worker budget.
        let train_branches = match mode {
            CloudMode::WhiteBox => 2,
            CloudMode::BlackBox => 1,
        };
        let (
            (mut big, big_accuracy, big_train_losses, big_report),
            (mut baseline, little_accuracy, little_report),
        ) = rayon::join(
            || {
                let mut big = ModelSpec::big(input_shape, num_classes).build(&mut big_rng);
                match mode {
                    CloudMode::WhiteBox => {
                        let mut config = ctx.big_config();
                        config.eval_policy = config.eval_policy.split_across(train_branches);
                        let report = train_classifier(&mut big, &pair.train, &config);
                        let acc = evaluate_classifier_with_policy(
                            &mut big,
                            &pair.test,
                            eval_batch,
                            &config.eval_policy,
                        );
                        let losses = big_model_losses_with_policy(
                            &mut big,
                            &pair.train,
                            eval_batch,
                            &config.eval_policy,
                        );
                        (big, acc, losses, Some(report))
                    }
                    CloudMode::BlackBox => (big, 1.0, Vec::new(), None),
                }
            },
            || {
                let mut baseline = little_spec.build(&mut init_rng);
                let mut config = ctx.little_config();
                config.eval_policy = config.eval_policy.split_across(train_branches);
                let report = train_classifier(&mut baseline, &pair.train, &config);
                let acc = evaluate_classifier_with_policy(
                    &mut baseline,
                    &pair.test,
                    eval_batch,
                    &config.eval_policy,
                );
                (baseline, acc, report)
            },
        );
        if let Some(report) = big_report {
            training_losses.push(("big".to_string(), report.epoch_losses));
        }
        training_losses.push(("little".to_string(), little_report.epoch_losses));

        // --- AppealNet two-head network, initialized from the trained little net ---
        let mut appeal_init_rng = little_rng.split();
        let mut appeal_little = little_spec.build(&mut appeal_init_rng);
        copy_params(&mut baseline, &mut appeal_little);
        let mut appealnet = TwoHeadNet::from_parts(appeal_little, &mut little_rng);
        let loss = AppealLoss::new(ctx.beta, mode);
        let report = train_appealnet(
            &mut appealnet,
            &pair.train,
            &loss,
            &big_train_losses,
            &ctx.joint_config(),
        );
        training_losses.push(("joint".to_string(), report.epoch_losses.clone()));

        // --- Evaluation artifacts on the test split ---
        // Three independent model passes (two-head, big, baseline) run
        // concurrently; the big network is evaluated once and its correctness
        // flags shared by all four score kinds (it used to be re-run per
        // kind), and the baseline's probabilities feed all three confidence
        // baselines from a single logits pass.
        let test = &pair.test;
        let hard = test.hard_flags();
        // The concurrent branches split the worker budget so their combined
        // thread count stays at the policy's budget; the black-box
        // big-correctness branch is a constant, so it does not count.
        let eval_branches = match mode {
            CloudMode::WhiteBox => 3,
            CloudMode::BlackBox => 2,
        };
        let policy = policy.split_across(eval_branches);
        let (appeal_out, (big_correct, (baseline_probs, baseline_correct))) = rayon::join(
            || appealnet.evaluate_with_policy(test.images(), eval_batch, &policy),
            || {
                rayon::join(
                    || match mode {
                        CloudMode::WhiteBox => parallel::classifier_correctness(
                            &mut big,
                            test.images(),
                            test.labels(),
                            eval_batch,
                            &policy,
                        ),
                        // Oracle cloud: always correct, no need to run it.
                        CloudMode::BlackBox => vec![true; test.len()],
                    },
                    || {
                        let logits = parallel::classifier_logits(
                            &mut baseline,
                            test.images(),
                            eval_batch,
                            &policy,
                        );
                        let correct: Vec<bool> = logits
                            .argmax_rows()
                            .iter()
                            .zip(test.labels().iter())
                            .map(|(p, y)| p == y)
                            .collect();
                        (SoftmaxCrossEntropy::new().probabilities(&logits), correct)
                    },
                )
            },
        );

        let little_flops = appealnet.flops();
        let big_flops = big.total_flops();
        let appeal_little_correct: Vec<bool> = appeal_out
            .predictions()
            .iter()
            .zip(test.labels().iter())
            .map(|(p, y)| p == y)
            .collect();
        let appealnet_accuracy =
            appeal_little_correct.iter().filter(|&&c| c).count() as f64 / test.len() as f64;
        let mut artifacts = Vec::new();
        artifacts.push((
            ScoreKind::AppealNetQ,
            EvaluationArtifacts {
                scores: appeal_out.q,
                little_correct: appeal_little_correct,
                big_correct: big_correct.clone(),
                hard_flags: hard.to_vec(),
                little_flops,
                big_flops,
                score_kind: ScoreKind::AppealNetQ,
            },
        ));
        for kind in ScoreKind::baselines() {
            artifacts.push((
                kind,
                EvaluationArtifacts::from_probabilities(
                    &baseline_probs,
                    baseline_correct.clone(),
                    big_correct.clone(),
                    hard,
                    baseline.total_flops(),
                    big_flops,
                    kind,
                ),
            ));
        }
        Self {
            preset,
            family,
            mode,
            little_accuracy,
            appealnet_accuracy,
            big_accuracy,
            little_flops,
            big_flops,
            input_bytes: (input_shape.iter().product::<usize>() * 4) as u64,
            training_losses,
            models: TrainedModels {
                big,
                baseline,
                appealnet,
            },
            artifacts,
        }
    }

    /// Routing artifacts for a particular score kind.
    ///
    /// # Panics
    ///
    /// Panics if the score kind was not prepared (never happens for the four
    /// standard kinds).
    pub fn artifacts(&self, kind: ScoreKind) -> &EvaluationArtifacts {
        self.artifacts
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, a)| a)
            .unwrap_or_else(|| panic!("no artifacts prepared for {kind}"))
    }

    /// All prepared score kinds.
    pub fn score_kinds(&self) -> Vec<ScoreKind> {
        self.artifacts.iter().map(|(k, _)| *k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::new(Fidelity::Smoke, 7)
    }

    #[test]
    fn context_configs_scale_with_fidelity() {
        let smoke = ExperimentContext::new(Fidelity::Smoke, 1);
        let paper = ExperimentContext::new(Fidelity::Paper, 1);
        assert!(smoke.big_config().epochs < paper.big_config().epochs);
        assert!(smoke.joint_config().epochs <= paper.joint_config().epochs);
        assert_eq!(smoke.with_beta(0.5).beta, 0.5);
        assert_eq!(CloudMode::WhiteBox.short_name(), "whitebox");
    }

    #[test]
    fn prepare_whitebox_smoke_produces_all_artifacts() {
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx(),
        );
        assert_eq!(prepared.score_kinds().len(), 4);
        for kind in ScoreKind::all() {
            let art = prepared.artifacts(kind);
            assert_eq!(art.len(), 30);
            assert!(art.scores.iter().all(|s| s.is_finite()));
        }
        assert!(prepared.little_flops < prepared.big_flops);
        assert!(prepared.big_accuracy > 0.0 && prepared.big_accuracy <= 1.0);
        assert_eq!(prepared.training_losses.len(), 3);
        assert!(!format!("{prepared:?}").is_empty());
    }

    #[test]
    fn prepare_blackbox_treats_cloud_as_oracle() {
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::ShuffleNetLike,
            CloudMode::BlackBox,
            &ctx(),
        );
        assert_eq!(prepared.big_accuracy, 1.0);
        let art = prepared.artifacts(ScoreKind::AppealNetQ);
        assert!(art.big_correct.iter().all(|&c| c));
        // Only big + little + joint training entries minus the untrained big.
        assert_eq!(prepared.training_losses.len(), 2);
    }

    #[test]
    fn copy_params_transfers_trained_weights() {
        let mut rng = SeededRng::new(3);
        let spec = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10);
        let mut a = spec.build(&mut rng);
        let mut b = spec.build(&mut SeededRng::new(99));
        // Make them differ, then copy.
        let x = appeal_tensor::Tensor::randn(&[2, 3, 12, 12], &mut rng);
        assert!(a.forward(&x, false).max_abs_diff(&b.forward(&x, false)) > 1e-6);
        copy_params(&mut a, &mut b);
        assert!(a.forward(&x, false).max_abs_diff(&b.forward(&x, false)) < 1e-6);
    }
}
