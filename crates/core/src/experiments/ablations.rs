//! Ablation studies on the design choices the paper calls out:
//!
//! * the β trade-off weight in the joint objective (Eq. 9);
//! * joint training of the predictor vs. a post-hoc predictor trained on a
//!   frozen little network (the key architectural claim of the paper).

use crate::experiments::fig4::auroc;
use crate::experiments::{ExperimentContext, PreparedExperiment};
use crate::loss::CloudMode;
use crate::scores::ScoreKind;
use crate::system::EvaluationArtifacts;
use appeal_dataset::DatasetPreset;
use appeal_models::ModelFamily;
use appeal_tensor::layers::{Dense, Sequential, Sigmoid};
use appeal_tensor::loss::BinaryCrossEntropy;
use appeal_tensor::optim::{Optimizer, Sgd};
use appeal_tensor::{Layer, SeededRng, Tensor};
use serde::{Deserialize, Serialize};

/// Result of training AppealNet with one β value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BetaAblationRow {
    /// The β used for joint training.
    pub beta: f32,
    /// Approximator-head test accuracy.
    pub appealnet_accuracy: f64,
    /// Mean predictor output `q` over the test set.
    pub mean_q: f64,
    /// Overall system accuracy at a 90% skipping rate.
    pub accuracy_at_sr90: f64,
    /// AUROC of `q` predicting little-network correctness.
    pub q_auroc: f64,
}

/// Runs the β ablation: trains one AppealNet per β value and reports how the
/// predictor behaviour changes.
pub fn beta_sweep(
    preset: DatasetPreset,
    family: ModelFamily,
    betas: &[f32],
    ctx: &ExperimentContext,
) -> Vec<BetaAblationRow> {
    let pair = preset.spec(ctx.fidelity).generate();
    betas
        .iter()
        .map(|&beta| {
            let prepared = PreparedExperiment::prepare_with_data(
                preset,
                &pair,
                family,
                CloudMode::WhiteBox,
                &ctx.with_beta(beta),
            );
            let art = prepared.artifacts(ScoreKind::AppealNetQ);
            BetaAblationRow {
                beta,
                appealnet_accuracy: prepared.appealnet_accuracy,
                mean_q: art.scores.iter().map(|&s| s as f64).sum::<f64>() / art.len() as f64,
                accuracy_at_sr90: art
                    .at_skipping_rate(0.9)
                    .expect("prepared artifacts are non-empty with finite scores")
                    .overall_accuracy,
                q_auroc: auroc(&art.scores, &art.little_correct),
            }
        })
        .collect()
}

/// Renders a β-ablation table as text.
pub fn render_beta_table(rows: &[BetaAblationRow]) -> String {
    let mut out = String::from("beta      appeal acc    mean q    acc @ SR=90%    AUROC(q)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<10.3}{:<14.4}{:<10.4}{:<16.4}{:.4}\n",
            r.beta, r.appealnet_accuracy, r.mean_q, r.accuracy_at_sr90, r.q_auroc
        ));
    }
    out
}

/// Comparison of the jointly trained predictor against a post-hoc predictor
/// trained on the frozen baseline little network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JointVsPostHoc {
    /// AUROC of the jointly trained predictor head.
    pub joint_auroc: f64,
    /// AUROC of the post-hoc predictor head.
    pub posthoc_auroc: f64,
    /// Overall accuracy at SR = 90% using the joint predictor.
    pub joint_accuracy_at_sr90: f64,
    /// Overall accuracy at SR = 90% using the post-hoc predictor.
    pub posthoc_accuracy_at_sr90: f64,
}

impl JointVsPostHoc {
    /// Renders the comparison as text.
    pub fn render_text(&self) -> String {
        format!(
            "joint predictor:    AUROC = {:.4}, overall acc @ SR=90% = {:.4}\n\
             post-hoc predictor: AUROC = {:.4}, overall acc @ SR=90% = {:.4}\n",
            self.joint_auroc,
            self.joint_accuracy_at_sr90,
            self.posthoc_auroc,
            self.posthoc_accuracy_at_sr90
        )
    }
}

/// Trains a post-hoc predictor head (Dense + sigmoid on frozen backbone
/// features, binary target = "little network is correct") and compares it
/// against the jointly trained AppealNet predictor from `prepared`.
///
/// `pair` must be the same dataset pair the experiment was prepared with.
pub fn joint_vs_posthoc(
    prepared: &mut PreparedExperiment,
    pair: &appeal_dataset::DatasetPair,
    ctx: &ExperimentContext,
) -> JointVsPostHoc {
    let eval_batch = ctx.eval_batch();
    let joint_art = prepared.artifacts(ScoreKind::AppealNetQ).clone();

    // --- Train the post-hoc predictor on frozen baseline features ---
    let baseline = &mut prepared.models.baseline;
    let train_features = collect_features(baseline, pair.train.images(), eval_batch);
    let train_logits = {
        let mut rows = Vec::new();
        let n = train_features.shape()[0];
        let mut start = 0;
        while start < n {
            let end = (start + eval_batch).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let f = train_features.select_rows(&idx);
            let logits = baseline.head.forward(&f, false);
            for i in 0..(end - start) {
                rows.push(logits.row(i));
            }
            start = end;
        }
        Tensor::stack_rows(&rows)
    };
    let targets: Vec<f32> = train_logits
        .argmax_rows()
        .iter()
        .zip(pair.train.labels().iter())
        .map(|(p, y)| if p == y { 1.0 } else { 0.0 })
        .collect();

    let feature_dim = train_features.shape()[1];
    let mut rng = SeededRng::new(ctx.seed ^ 0xF0F);
    let mut head = Sequential::new(vec![Box::new(Dense::new(feature_dim, 1, &mut rng))]);
    let bce = BinaryCrossEntropy::new();
    let mut optimizer = Sgd::with_momentum(0.1, 0.9, 1e-4);
    let epochs = ctx.joint_config().epochs.max(3);
    let batch_size = ctx.joint_config().batch_size;
    for _ in 0..epochs {
        let order = rng.permutation(train_features.shape()[0]);
        for chunk in order.chunks(batch_size) {
            let f = train_features.select_rows(chunk);
            let t: Vec<f32> = chunk.iter().map(|&i| targets[i]).collect();
            let scores = head.forward(&f, true);
            let grad = bce.grad(&scores, &t);
            head.backward(&grad);
            let mut params = head.params_mut();
            optimizer.step(&mut params);
        }
    }

    // --- Evaluate the post-hoc predictor on the test set ---
    let test_features = collect_features(baseline, pair.test.images(), eval_batch);
    let raw = head.forward(&test_features, false);
    let mut sigmoid = Sigmoid::new();
    let posthoc_scores = sigmoid.forward(&raw, false).data().to_vec();
    let posthoc_art = EvaluationArtifacts {
        scores: posthoc_scores,
        little_correct: prepared.artifacts(ScoreKind::Msp).little_correct.clone(),
        big_correct: prepared.artifacts(ScoreKind::Msp).big_correct.clone(),
        hard_flags: pair.test.hard_flags().to_vec(),
        little_flops: prepared.little_flops,
        big_flops: prepared.big_flops,
        score_kind: ScoreKind::AppealNetQ,
    };

    JointVsPostHoc {
        joint_auroc: auroc(&joint_art.scores, &joint_art.little_correct),
        posthoc_auroc: auroc(&posthoc_art.scores, &posthoc_art.little_correct),
        joint_accuracy_at_sr90: joint_art
            .at_skipping_rate(0.9)
            .expect("prepared artifacts are non-empty with finite scores")
            .overall_accuracy,
        posthoc_accuracy_at_sr90: posthoc_art
            .at_skipping_rate(0.9)
            .expect("prepared artifacts are non-empty with finite scores")
            .overall_accuracy,
    }
}

fn collect_features(
    model: &mut appeal_models::ClassifierParts,
    images: &Tensor,
    batch_size: usize,
) -> Tensor {
    let n = images.shape()[0];
    let mut rows = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let batch = images.select_rows(&idx);
        let features = model.backbone.forward(&batch, false);
        for i in 0..(end - start) {
            rows.push(features.row(i));
        }
        start = end;
    }
    Tensor::stack_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_dataset::Fidelity;

    #[test]
    fn beta_sweep_smoke_produces_one_row_per_beta() {
        let ctx = ExperimentContext::new(Fidelity::Smoke, 41);
        let rows = beta_sweep(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            &[0.05, 0.5],
            &ctx,
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.mean_q));
            assert!((0.0..=1.0).contains(&r.appealnet_accuracy));
            assert!((0.0..=1.0).contains(&r.q_auroc));
        }
        let text = render_beta_table(&rows);
        assert!(text.contains("beta"));
    }

    #[test]
    fn larger_beta_gives_larger_mean_q() {
        // The cost term −β·log q pushes q towards 1, so a (much) larger β
        // must produce a larger average q.
        let ctx = ExperimentContext::new(Fidelity::Smoke, 42);
        let rows = beta_sweep(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            &[0.01, 1.0],
            &ctx,
        );
        assert!(
            rows[1].mean_q > rows[0].mean_q,
            "beta=1.0 mean_q {} should exceed beta=0.01 mean_q {}",
            rows[1].mean_q,
            rows[0].mean_q
        );
    }

    #[test]
    fn joint_vs_posthoc_smoke_runs() {
        let ctx = ExperimentContext::new(Fidelity::Smoke, 43);
        let pair = DatasetPreset::Cifar10Like.spec(Fidelity::Smoke).generate();
        let mut prepared = PreparedExperiment::prepare_with_data(
            DatasetPreset::Cifar10Like,
            &pair,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        let result = joint_vs_posthoc(&mut prepared, &pair, &ctx);
        assert!((0.0..=1.0).contains(&result.joint_auroc));
        assert!((0.0..=1.0).contains(&result.posthoc_auroc));
        assert!(result.render_text().contains("post-hoc"));
    }
}
