//! Figure 4: score histograms for inputs the little network classifies
//! correctly vs. incorrectly, comparing the MSP baseline with AppealNet's
//! `q(z|x)` score.
//!
//! The paper's point is visual: AppealNet's score separates the two
//! populations cleanly while MSP overlaps heavily. To make the comparison
//! quantitative (and testable) this module also reports the area under the
//! ROC curve (AUROC) of "score predicts little-network correctness".

use crate::experiments::PreparedExperiment;
use crate::scores::ScoreKind;
use crate::system::EvaluationArtifacts;
use serde::{Deserialize, Serialize};

/// Histogram of one score, split by little-network correctness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreHistogram {
    /// The score being histogrammed.
    pub kind: ScoreKind,
    /// Bin edges (length `bins + 1`), spanning the observed score range.
    pub bin_edges: Vec<f64>,
    /// Number of correctly classified inputs per bin.
    pub correct_counts: Vec<usize>,
    /// Number of misclassified inputs per bin.
    pub incorrect_counts: Vec<usize>,
    /// AUROC of "higher score ⇒ little network is correct".
    pub auroc: f64,
}

/// The full Figure 4 result: one histogram per compared score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Dataset the histograms were computed on.
    pub dataset: String,
    /// Little-network family.
    pub family: String,
    /// Histograms, AppealNet first.
    pub histograms: Vec<ScoreHistogram>,
}

impl Fig4Result {
    /// The histogram for a given score kind, if present.
    pub fn histogram(&self, kind: ScoreKind) -> Option<&ScoreHistogram> {
        self.histograms.iter().find(|h| h.kind == kind)
    }

    /// Renders the result as the text the benchmark harness prints.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "Fig. 4 — score separation on {} ({} little network)\n",
            self.dataset, self.family
        );
        for h in &self.histograms {
            out.push_str(&format!(
                "  {:<10} AUROC(correct vs incorrect) = {:.4}\n",
                h.kind.name(),
                h.auroc
            ));
            out.push_str(&format!("  {:<10} correct:   {:?}\n", "", h.correct_counts));
            out.push_str(&format!(
                "  {:<10} incorrect: {:?}\n",
                "", h.incorrect_counts
            ));
        }
        out
    }
}

/// Area under the ROC curve of `scores` predicting `positive` (rank-based,
/// ties handled by midranks).
///
/// Returns 0.5 when either class is empty.
pub fn auroc(scores: &[f32], positive: &[bool]) -> f64 {
    assert_eq!(scores.len(), positive.len(), "length mismatch");
    let n_pos = positive.iter().filter(|&&p| p).count();
    let n_neg = positive.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank the scores (average ranks for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("scores must not be NaN")
    });
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(positive.iter())
        .filter(|(_, &p)| p)
        .map(|(&r, _)| r)
        .sum();
    (rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Builds a histogram of `artifacts.scores` split by little-network correctness.
///
/// # Panics
///
/// Panics if `bins == 0` or the artifacts are empty.
pub fn score_histogram(artifacts: &EvaluationArtifacts, bins: usize) -> ScoreHistogram {
    assert!(bins > 0, "bins must be positive");
    assert!(!artifacts.is_empty(), "no artifacts");
    let min = artifacts
        .scores
        .iter()
        .copied()
        .fold(f32::INFINITY, f32::min) as f64;
    let max = artifacts
        .scores
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max) as f64;
    let span = (max - min).max(1e-9);
    let bin_edges: Vec<f64> = (0..=bins)
        .map(|i| min + span * i as f64 / bins as f64)
        .collect();
    let mut correct_counts = vec![0usize; bins];
    let mut incorrect_counts = vec![0usize; bins];
    for (&s, &c) in artifacts.scores.iter().zip(artifacts.little_correct.iter()) {
        let mut bin = (((s as f64 - min) / span) * bins as f64).floor() as usize;
        if bin >= bins {
            bin = bins - 1;
        }
        if c {
            correct_counts[bin] += 1;
        } else {
            incorrect_counts[bin] += 1;
        }
    }
    ScoreHistogram {
        kind: artifacts.score_kind,
        bin_edges,
        correct_counts,
        incorrect_counts,
        auroc: auroc(&artifacts.scores, &artifacts.little_correct),
    }
}

/// Runs the Figure 4 experiment on a prepared system, comparing AppealNet's
/// score with the MSP baseline (the two panels of the figure).
pub fn run(prepared: &PreparedExperiment, bins: usize) -> Fig4Result {
    let histograms = vec![
        score_histogram(prepared.artifacts(ScoreKind::AppealNetQ), bins),
        score_histogram(prepared.artifacts(ScoreKind::Msp), bins),
    ];
    Fig4Result {
        dataset: prepared.preset.paper_name().to_string(),
        family: prepared.family.paper_name().to_string(),
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auroc_perfect_separation() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let correct = vec![true, true, false, false];
        assert!((auroc(&scores, &correct) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auroc_inverted_separation() {
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        let correct = vec![true, true, false, false];
        assert!(auroc(&scores, &correct) < 0.01);
    }

    #[test]
    fn auroc_random_is_half() {
        let scores = vec![0.5; 10];
        let correct: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        assert!((auroc(&scores, &correct) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auroc_degenerate_classes() {
        assert_eq!(auroc(&[0.1, 0.2], &[true, true]), 0.5);
        assert_eq!(auroc(&[0.1, 0.2], &[false, false]), 0.5);
    }

    #[test]
    fn histogram_counts_every_sample_once() {
        let artifacts = EvaluationArtifacts {
            scores: vec![0.1, 0.2, 0.5, 0.9, 0.95],
            little_correct: vec![false, false, true, true, true],
            big_correct: vec![true; 5],
            hard_flags: vec![false; 5],
            little_flops: 1,
            big_flops: 2,
            score_kind: ScoreKind::AppealNetQ,
        };
        let h = score_histogram(&artifacts, 4);
        let total: usize =
            h.correct_counts.iter().sum::<usize>() + h.incorrect_counts.iter().sum::<usize>();
        assert_eq!(total, 5);
        assert_eq!(h.bin_edges.len(), 5);
        assert!(h.auroc > 0.9);
    }

    #[test]
    fn constant_scores_do_not_panic() {
        let artifacts = EvaluationArtifacts {
            scores: vec![0.5; 4],
            little_correct: vec![true, false, true, false],
            big_correct: vec![true; 4],
            hard_flags: vec![false; 4],
            little_flops: 1,
            big_flops: 2,
            score_kind: ScoreKind::Msp,
        };
        let h = score_histogram(&artifacts, 3);
        assert_eq!(
            h.correct_counts.iter().sum::<usize>() + h.incorrect_counts.iter().sum::<usize>(),
            4
        );
    }
}
