//! Table I: overall computational cost (MFLOPs) of the edge/cloud system at
//! target relative accuracy improvements, score-margin baseline vs AppealNet.

use crate::experiments::PreparedExperiment;
use crate::scores::ScoreKind;
use crate::tuning::min_cost_for_acci;
use serde::{Deserialize, Serialize};

/// The AccI targets used by the paper (50%, 75%, 90%, 95%).
pub const ACCI_TARGETS: [f64; 4] = [0.50, 0.75, 0.90, 0.95];

/// One (dataset, AccI target) cell of Table I.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table1Entry {
    /// Relative accuracy-improvement target (Eq. 14).
    pub acci_target: f64,
    /// Minimum system cost achieving the target with the score-margin baseline.
    pub sm_cost_mflops: Option<f64>,
    /// Minimum system cost achieving the target with AppealNet.
    pub appealnet_cost_mflops: Option<f64>,
    /// Skipping rate of the baseline operating point.
    pub sm_skipping_rate: Option<f64>,
    /// Skipping rate of the AppealNet operating point.
    pub appealnet_skipping_rate: Option<f64>,
}

impl Table1Entry {
    /// Relative cost saving of AppealNet over the baseline
    /// (`(SM − AppealNet) / SM`), when both reached the target.
    pub fn relative_saving(&self) -> Option<f64> {
        match (self.sm_cost_mflops, self.appealnet_cost_mflops) {
            (Some(sm), Some(an)) if sm > 0.0 => Some((sm - an) / sm),
            _ => None,
        }
    }
}

/// One dataset row of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Dataset name (paper naming).
    pub dataset: String,
    /// Big / little / AppealNet stand-alone accuracies (the left part of the table).
    pub big_accuracy: f64,
    /// Stand-alone little-network accuracy.
    pub little_accuracy: f64,
    /// AppealNet approximator-head accuracy.
    pub appealnet_accuracy: f64,
    /// Per-inference cost of the big network in MFLOPs.
    pub big_mflops: f64,
    /// Per-inference cost of the little network in MFLOPs.
    pub little_mflops: f64,
    /// One entry per AccI target.
    pub entries: Vec<Table1Entry>,
}

impl Table1Row {
    /// Renders the row in the same layout as the paper's Table I.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{:<14} acc(big/little/appeal) = {:.2}/{:.2}/{:.2}%  cost(big/little) = {:.3}/{:.3} MFLOPs\n",
            self.dataset,
            self.big_accuracy * 100.0,
            self.little_accuracy * 100.0,
            self.appealnet_accuracy * 100.0,
            self.big_mflops,
            self.little_mflops,
        );
        for e in &self.entries {
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.3}"),
                None => "unreached".to_string(),
            };
            out.push_str(&format!(
                "    AccI ≥ {:>4.1}%:  SM = {:>10} MFLOPs   AppealNet = {:>10} MFLOPs   saving = {}\n",
                e.acci_target * 100.0,
                fmt(e.sm_cost_mflops),
                fmt(e.appealnet_cost_mflops),
                match e.relative_saving() {
                    Some(s) => format!("{:.2}%", s * 100.0),
                    None => "n/a".to_string(),
                }
            ));
        }
        out
    }
}

/// Computes the Table I row for one prepared (white-box) experiment.
pub fn run(prepared: &PreparedExperiment) -> Table1Row {
    run_with_targets(prepared, &ACCI_TARGETS)
}

/// Computes a Table I row with custom AccI targets.
pub fn run_with_targets(prepared: &PreparedExperiment, targets: &[f64]) -> Table1Row {
    let sm = prepared.artifacts(ScoreKind::ScoreMargin);
    let appeal = prepared.artifacts(ScoreKind::AppealNetQ);
    let entries = targets
        .iter()
        .map(|&target| {
            let sm_choice = min_cost_for_acci(sm, target)
                .expect("prepared artifacts are non-empty with finite scores");
            let appeal_choice = min_cost_for_acci(appeal, target)
                .expect("prepared artifacts are non-empty with finite scores");
            Table1Entry {
                acci_target: target,
                sm_cost_mflops: sm_choice.map(|c| c.metrics.overall_mflops()),
                appealnet_cost_mflops: appeal_choice.map(|c| c.metrics.overall_mflops()),
                sm_skipping_rate: sm_choice.map(|c| c.metrics.skipping_rate),
                appealnet_skipping_rate: appeal_choice.map(|c| c.metrics.skipping_rate),
            }
        })
        .collect();
    Table1Row {
        dataset: prepared.preset.paper_name().to_string(),
        big_accuracy: prepared.big_accuracy,
        little_accuracy: prepared.little_accuracy,
        appealnet_accuracy: prepared.appealnet_accuracy,
        big_mflops: prepared.big_flops as f64 / 1e6,
        little_mflops: prepared.little_flops as f64 / 1e6,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentContext;
    use crate::loss::CloudMode;
    use appeal_dataset::{DatasetPreset, Fidelity};
    use appeal_models::ModelFamily;

    #[test]
    fn entry_saving_computation() {
        let e = Table1Entry {
            acci_target: 0.5,
            sm_cost_mflops: Some(2.0),
            appealnet_cost_mflops: Some(1.0),
            sm_skipping_rate: Some(0.8),
            appealnet_skipping_rate: Some(0.9),
        };
        assert!((e.relative_saving().unwrap() - 0.5).abs() < 1e-12);
        let unreached = Table1Entry {
            acci_target: 0.95,
            sm_cost_mflops: None,
            appealnet_cost_mflops: Some(1.0),
            sm_skipping_rate: None,
            appealnet_skipping_rate: Some(0.9),
        };
        assert!(unreached.relative_saving().is_none());
    }

    #[test]
    fn table1_smoke_row_has_all_targets() {
        let ctx = ExperimentContext::new(Fidelity::Smoke, 11);
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        let row = run(&prepared);
        assert_eq!(row.entries.len(), 4);
        assert!(row.big_mflops > row.little_mflops);
        let text = row.render_text();
        assert!(text.contains("CIFAR-10"));
        assert!(text.contains("AccI"));
        // Costs, when reached, are bounded by the all-cloud cost.
        let all_cloud = row.big_mflops + row.little_mflops;
        for e in &row.entries {
            if let Some(c) = e.appealnet_cost_mflops {
                assert!(c <= all_cloud + 1e-9);
                assert!(c >= row.little_mflops - 1e-9);
            }
        }
    }
}
