//! Figure 5: overall accuracy vs. skipping rate for MSP / SM / Entropy /
//! AppealNet, with the stand-alone big network as the reference line.

use crate::experiments::PreparedExperiment;
use crate::scores::ScoreKind;
use crate::sweep::{paper_sr_grid, sweep_methods, SweepResult};
use serde::{Deserialize, Serialize};

/// The Figure 5 panel for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Dataset name (paper naming).
    pub dataset: String,
    /// Little-network family (paper naming).
    pub family: String,
    /// The accuracy-vs-skipping-rate sweep for all four methods.
    pub sweep: SweepResult,
}

impl Fig5Result {
    /// Renders the panel as the text series the harness prints
    /// (one row per method, one column per skipping rate).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "Fig. 5 — overall accuracy vs skipping rate on {} ({} little network)\n",
            self.dataset, self.family
        );
        out.push_str("  SR%:        ");
        for sr in &self.sweep.skipping_rates {
            out.push_str(&format!("{:>8.0}", sr * 100.0));
        }
        out.push('\n');
        for series in &self.sweep.series {
            out.push_str(&format!("  {:<12}", series.score.name()));
            for p in &series.points {
                out.push_str(&format!("{:>8.2}", p.overall_accuracy * 100.0));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  {:<12}{:>8.2} (stand-alone reference)\n",
            "Big net",
            self.sweep.big_accuracy * 100.0
        ));
        out.push_str(&format!(
            "  {:<12}{:>8.2} (stand-alone little)\n",
            "Little net",
            self.sweep.little_accuracy * 100.0
        ));
        out
    }

    /// Number of sweep points (out of the grid length) where AppealNet's
    /// accuracy is at least that of every baseline.
    pub fn appealnet_win_count(&self) -> usize {
        ScoreKind::baselines()
            .iter()
            .map(|&b| self.sweep.wins(ScoreKind::AppealNetQ, b))
            .min()
            .unwrap_or(0)
    }
}

/// Runs the Figure 5 sweep on a prepared experiment using the paper's
/// 70–100% skipping-rate grid.
pub fn run(prepared: &PreparedExperiment) -> Fig5Result {
    run_with_grid(prepared, &paper_sr_grid())
}

/// Runs the Figure 5 sweep with a custom skipping-rate grid.
pub fn run_with_grid(prepared: &PreparedExperiment, grid: &[f64]) -> Fig5Result {
    let methods: Vec<_> = ScoreKind::all()
        .iter()
        .map(|&k| (k, prepared.artifacts(k)))
        .collect();
    Fig5Result {
        dataset: prepared.preset.paper_name().to_string(),
        family: prepared.family.paper_name().to_string(),
        sweep: sweep_methods(&methods, grid)
            .expect("prepared artifacts are non-empty with finite scores"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentContext;
    use crate::loss::CloudMode;
    use appeal_dataset::{DatasetPreset, Fidelity};
    use appeal_models::ModelFamily;

    #[test]
    fn fig5_smoke_runs_end_to_end() {
        let ctx = ExperimentContext::new(Fidelity::Smoke, 3);
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        let result = run(&prepared);
        assert_eq!(result.sweep.series.len(), 4);
        assert_eq!(result.sweep.skipping_rates.len(), 7);
        let text = result.render_text();
        assert!(text.contains("AppealNet"));
        assert!(text.contains("MSP"));
        assert!(text.contains("CIFAR-10"));
        // Every accuracy must be a valid probability.
        for series in &result.sweep.series {
            for p in &series.points {
                assert!((0.0..=1.0).contains(&p.overall_accuracy));
            }
        }
        let _ = result.appealnet_win_count();
    }
}
