//! The typed error surface of the public API.
//!
//! Invalid *user* inputs — an out-of-range threshold, a NaN routing score, an
//! empty artifact set, a malformed request tensor — are reported as
//! [`CoreError`] values instead of panics. Internal invariants (shard
//! bookkeeping, parameter-shape agreement between replicas) remain `assert!`s:
//! violating them is a bug in this crate, not a caller mistake.

use crate::scores::ScoreKind;
use std::fmt;
use std::time::Duration;

/// Errors returned by the public routing / tuning / serving APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A routing threshold δ outside `[0, 1]` (or NaN) was supplied where the
    /// predictor-score convention requires a probability.
    InvalidThreshold(f64),
    /// A target skipping rate / accuracy outside `[0, 1]` (or NaN).
    InvalidRate(f64),
    /// A routing score is NaN; quantile and sort based queries are undefined.
    InvalidScore {
        /// Index of the first offending score.
        index: usize,
    },
    /// The requested score kind cannot be used here (e.g. deriving
    /// [`ScoreKind::AppealNetQ`] from softmax probabilities).
    InvalidScoreKind(ScoreKind),
    /// The engine's micro-batch capacity must be positive.
    InvalidMaxBatch,
    /// An operation that needs evaluated samples was given empty artifacts.
    EmptyArtifacts,
    /// A sweep was requested over an empty method list.
    EmptyMethods,
    /// Per-sample artifact vectors disagree in length.
    LengthMismatch {
        /// Which artifact field has the wrong length.
        field: &'static str,
        /// The length of `scores`, which every per-sample field must match.
        expected: usize,
        /// The offending field's length.
        got: usize,
    },
    /// A request or batch tensor does not match the model's input shape.
    ShapeMismatch {
        /// The shape the engine's edge model expects (per sample).
        expected: Vec<usize>,
        /// The shape that was supplied.
        got: Vec<usize>,
    },
    /// A builder was finalized without a required component.
    MissingComponent(&'static str),
    /// No operating point reaches the requested target.
    UnreachableTarget {
        /// The target that could not be met.
        target: f64,
    },
    /// The engine's micro-batch queue buffers desynchronized (a panic unwound
    /// mid-enqueue, or a caller poked internal state). The corrupt queue is
    /// dropped atomically before this is returned, so the engine is already
    /// consistent again — but the listed pending requests were lost and must
    /// be resubmitted.
    CorruptQueue {
        /// Requests that were queued when the corruption was detected.
        pending: usize,
        /// Bytes-worth of samples the id queue implied (`n·c·h·w` floats).
        expected: usize,
        /// Floats actually present in the data queue.
        got: usize,
    },
    /// The server's bounded admission queue is full; the request was rejected
    /// for backpressure. Retry after draining some in-flight work.
    Overloaded {
        /// The admission capacity that was exhausted.
        capacity: usize,
    },
    /// The request was shed by the server's cost-budget overload policy
    /// (the accounting window's offload budget is spent).
    Shed,
    /// The serving front-end has shut down and no longer answers requests.
    ServerStopped,
    /// A shed policy's accounting window must cover at least one request.
    InvalidShedWindow,
    /// The caller's per-request deadline elapsed before the answer arrived.
    /// The request is still in flight on the server (its admission slot is
    /// released only when the batcher settles it), but this ticket has
    /// abandoned the answer.
    DeadlineExceeded {
        /// The deadline that elapsed.
        deadline: Duration,
    },
    /// The batcher thread panicked. Its panic fence fails every queued
    /// request with this error and marks the server dead; already-coalescing
    /// tickets resolve with it too (via their disconnected channels), so no
    /// client hangs. The server cannot recover — restart it.
    BatcherPanicked,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidThreshold(t) => {
                write!(f, "routing threshold must be in [0, 1], got {t}")
            }
            CoreError::InvalidRate(r) => {
                write!(f, "target rate must be in [0, 1], got {r}")
            }
            CoreError::InvalidScore { index } => {
                write!(f, "routing score at index {index} is NaN")
            }
            CoreError::InvalidScoreKind(kind) => {
                write!(f, "score kind {kind} cannot be used in this context")
            }
            CoreError::InvalidMaxBatch => write!(f, "max_batch must be positive"),
            CoreError::EmptyArtifacts => write!(f, "no evaluation artifacts"),
            CoreError::EmptyMethods => write!(f, "at least one method is required"),
            CoreError::LengthMismatch {
                field,
                expected,
                got,
            } => {
                write!(
                    f,
                    "artifact field {field} has {got} entries, expected {expected}"
                )
            }
            CoreError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input shape mismatch: expected {expected:?}, got {got:?}"
                )
            }
            CoreError::MissingComponent(what) => {
                write!(f, "engine builder is missing a required component: {what}")
            }
            CoreError::UnreachableTarget { target } => {
                write!(f, "no operating point reaches the target {target}")
            }
            CoreError::CorruptQueue {
                pending,
                expected,
                got,
            } => {
                write!(
                    f,
                    "micro-batch queue desynchronized ({pending} pending ids imply \
                     {expected} floats, found {got}); the queue was dropped and the \
                     lost requests must be resubmitted"
                )
            }
            CoreError::Overloaded { capacity } => {
                write!(
                    f,
                    "admission queue full ({capacity} requests in flight); retry later"
                )
            }
            CoreError::Shed => {
                write!(
                    f,
                    "request shed: the overload policy's cost budget is spent"
                )
            }
            CoreError::ServerStopped => write!(f, "the serving front-end has shut down"),
            CoreError::InvalidShedWindow => {
                write!(f, "shed policy window must cover at least one request")
            }
            CoreError::DeadlineExceeded { deadline } => {
                write!(
                    f,
                    "no answer within the per-request deadline of {deadline:?}"
                )
            }
            CoreError::BatcherPanicked => {
                write!(
                    f,
                    "the batcher thread panicked; in-flight requests were failed \
                     and the server must be restarted"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias for results of the public API.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        assert!(CoreError::InvalidThreshold(1.5)
            .to_string()
            .contains("[0, 1]"));
        assert!(CoreError::InvalidScore { index: 3 }
            .to_string()
            .contains('3'));
        assert!(CoreError::ShapeMismatch {
            expected: vec![3, 12, 12],
            got: vec![1, 12, 12],
        }
        .to_string()
        .contains("expected"));
        assert!(CoreError::MissingComponent("big model")
            .to_string()
            .contains("big model"));
        assert!(CoreError::UnreachableTarget { target: 0.99 }
            .to_string()
            .contains("0.99"));
        assert!(CoreError::InvalidScoreKind(ScoreKind::AppealNetQ)
            .to_string()
            .contains("AppealNet"));
        let corrupt = CoreError::CorruptQueue {
            pending: 2,
            expected: 864,
            got: 10,
        };
        assert!(corrupt.to_string().contains("864"));
        assert!(corrupt.to_string().contains("resubmitted"));
        assert!(CoreError::Overloaded { capacity: 64 }
            .to_string()
            .contains("64"));
        assert!(CoreError::Shed.to_string().contains("budget"));
        assert!(CoreError::ServerStopped.to_string().contains("shut down"));
        assert!(CoreError::InvalidShedWindow.to_string().contains("window"));
        assert!(CoreError::DeadlineExceeded {
            deadline: Duration::from_millis(7)
        }
        .to_string()
        .contains("7ms"));
        assert!(CoreError::BatcherPanicked.to_string().contains("panicked"));
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(CoreError::EmptyArtifacts);
        assert_eq!(err.to_string(), "no evaluation artifacts");
    }
}
