//! Precomputed evaluation artifacts and the legacy collaborative-system
//! wrapper around the serving [`Engine`].
//!
//! For experiments it is wasteful to re-run both networks for every candidate
//! threshold δ, so [`EvaluationArtifacts`] stores per-sample routing scores
//! and correctness flags once; every threshold or skipping-rate query is then
//! a cheap scan. [`CollaborativeSystem`] is the original runtime entry point
//! (Eq. 1 with a fixed threshold); it is now a thin wrapper over
//! [`crate::serve::Engine`] with a [`crate::serve::ThresholdPolicy`] and is
//! kept for the fixed-threshold deployments the examples use — new code
//! should build an engine directly via [`crate::serve::EngineBuilder`].

use crate::error::{CoreError, CoreResult};
use crate::metrics::{routed_metrics, RoutedMetrics};
use crate::parallel::{self, ChunkPolicy};
use crate::scores::{confidence_scores, ScoreKind};
use crate::serve::{Engine, ThresholdPolicy};
use crate::two_head::TwoHeadNet;
use appeal_hw::{InferenceCost, SystemModel};
use appeal_models::ClassifierParts;
use appeal_tensor::loss::SoftmaxCrossEntropy;
use appeal_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Per-sample artifacts of evaluating a little/big model pair on a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationArtifacts {
    /// Routing score per input (higher = keep on the edge).
    pub scores: Vec<f32>,
    /// Whether the little network classifies each input correctly.
    pub little_correct: Vec<bool>,
    /// Whether the big network classifies each input correctly.
    pub big_correct: Vec<bool>,
    /// Ground-truth difficulty flags from the dataset synthesizer (analysis only).
    pub hard_flags: Vec<bool>,
    /// Per-inference FLOPs of the little network (including the predictor head).
    pub little_flops: u64,
    /// Per-inference FLOPs of the big network.
    pub big_flops: u64,
    /// Which score produced `scores`.
    pub score_kind: ScoreKind,
}

impl EvaluationArtifacts {
    /// Number of evaluated samples.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Returns `true` if no samples were evaluated.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Validates that the artifacts support routing queries: non-empty, no
    /// NaN score, and per-sample correctness vectors as long as `scores`
    /// (hand-built or deserialized artifacts can violate any of these).
    pub fn validate(&self) -> CoreResult<()> {
        if self.is_empty() {
            return Err(CoreError::EmptyArtifacts);
        }
        let n = self.scores.len();
        for (field, len) in [
            ("little_correct", self.little_correct.len()),
            ("big_correct", self.big_correct.len()),
        ] {
            if len != n {
                return Err(CoreError::LengthMismatch {
                    field,
                    expected: n,
                    got: len,
                });
            }
        }
        if let Some(index) = self.scores.iter().position(|s| s.is_nan()) {
            return Err(CoreError::InvalidScore { index });
        }
        Ok(())
    }

    /// Metrics when inputs with score `≥ δ` stay on the edge (Eq. 1).
    ///
    /// `delta` may lie outside `[0, 1]` (e.g. a candidate threshold above the
    /// maximum score routes everything to the cloud) but must not be NaN.
    pub fn at_threshold(&self, delta: f64) -> CoreResult<RoutedMetrics> {
        self.validate()?;
        if delta.is_nan() {
            return Err(CoreError::InvalidThreshold(delta));
        }
        Ok(self.metrics_at(delta))
    }

    /// Infallible core of [`Self::at_threshold`] for pre-validated callers.
    pub(crate) fn metrics_at(&self, delta: f64) -> RoutedMetrics {
        let keep: Vec<bool> = self.scores.iter().map(|&s| (s as f64) >= delta).collect();
        routed_metrics(
            &keep,
            &self.little_correct,
            &self.big_correct,
            self.little_flops,
            self.big_flops,
            delta,
        )
    }

    /// The threshold δ that keeps (approximately) a `target_sr` fraction of
    /// inputs on the edge: the `(1 − target_sr)` quantile of the scores.
    pub fn threshold_for_skipping_rate(&self, target_sr: f64) -> CoreResult<f64> {
        Ok(self.thresholds_for_skipping_rates(std::slice::from_ref(&target_sr))?[0])
    }

    /// Metrics at (approximately) the requested skipping rate.
    pub fn at_skipping_rate(&self, target_sr: f64) -> CoreResult<RoutedMetrics> {
        Ok(self.metrics_at(self.threshold_for_skipping_rate(target_sr)?))
    }

    /// Thresholds for several target skipping rates at once, sorting the
    /// scores a single time (the sweep hot path evaluates whole grids).
    ///
    /// Errors with [`CoreError::EmptyArtifacts`] on empty artifacts,
    /// [`CoreError::InvalidScore`] if any score is NaN, and
    /// [`CoreError::InvalidRate`] if any rate is outside `[0, 1]`.
    pub fn thresholds_for_skipping_rates(&self, target_srs: &[f64]) -> CoreResult<Vec<f64>> {
        self.validate()?;
        if let Some(&bad) = target_srs.iter().find(|sr| !(0.0..=1.0).contains(*sr)) {
            return Err(CoreError::InvalidRate(bad));
        }
        let mut sorted: Vec<f32> = self.scores.clone();
        // validate() rejected NaN, so the comparison is total.
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN scores rejected by validate"));
        let n = sorted.len();
        Ok(target_srs
            .iter()
            .map(|&sr| {
                // Keep the top `sr` fraction on the edge.
                let k = ((1.0 - sr) * n as f64).round() as usize;
                if k >= n {
                    // Nothing stays on the edge: a threshold above the maximum.
                    sorted[n - 1] as f64 + 1.0
                } else {
                    sorted[k] as f64
                }
            })
            .collect())
    }

    /// Candidate thresholds: every distinct score value (plus one above the
    /// maximum), which is sufficient to enumerate every possible routing.
    ///
    /// Errors with [`CoreError::EmptyArtifacts`] on empty artifacts and
    /// [`CoreError::InvalidScore`] if any score is NaN.
    pub fn candidate_thresholds(&self) -> CoreResult<Vec<f64>> {
        self.validate()?;
        let mut t: Vec<f64> = self.scores.iter().map(|&s| s as f64).collect();
        t.sort_by(|a, b| a.partial_cmp(b).expect("NaN scores rejected by validate"));
        t.dedup();
        if let Some(&max) = t.last() {
            t.push(max + 1.0);
        }
        Ok(t)
    }

    /// Largest absolute per-sample score difference against `other`.
    ///
    /// Errors if either side fails [`Self::validate`] or the sample counts
    /// differ. This is the observable divergence between an f32 and a
    /// quantized evaluation of the same model on the same inputs.
    pub fn max_score_divergence(&self, other: &Self) -> CoreResult<f64> {
        self.validate()?;
        other.validate()?;
        if self.len() != other.len() {
            return Err(CoreError::LengthMismatch {
                field: "scores",
                expected: self.len(),
                got: other.len(),
            });
        }
        Ok(self
            .scores
            .iter()
            .zip(&other.scores)
            .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
            .fold(0.0, f64::max))
    }

    /// Compares the routing these artifacts and `other` induce at threshold
    /// `delta`, attributing every disagreement to scores within `tol` of δ.
    ///
    /// If the two score sets really differ by at most `tol` per sample
    /// (e.g. f32 vs Q8_0 under the quantized-tolerance contract), a routing
    /// flip can only happen where a score *straddles* the threshold —
    /// [`RoutingDivergence::unexplained`] must come back 0.
    ///
    /// Errors if either side fails [`Self::validate`], the sample counts
    /// differ, or `delta`/`tol` is NaN (or `tol` negative).
    pub fn routing_divergence(
        &self,
        other: &Self,
        delta: f64,
        tol: f64,
    ) -> CoreResult<RoutingDivergence> {
        self.validate()?;
        other.validate()?;
        if self.len() != other.len() {
            return Err(CoreError::LengthMismatch {
                field: "scores",
                expected: self.len(),
                got: other.len(),
            });
        }
        if delta.is_nan() {
            return Err(CoreError::InvalidThreshold(delta));
        }
        if tol.is_nan() || tol < 0.0 {
            return Err(CoreError::InvalidThreshold(tol));
        }
        let mut div = RoutingDivergence {
            total: self.len(),
            differing: 0,
            straddling: 0,
            unexplained: 0,
        };
        for (&a, &b) in self.scores.iter().zip(&other.scores) {
            let (a, b) = (f64::from(a), f64::from(b));
            let differs = (a >= delta) != (b >= delta);
            let straddles = (a - delta).abs() <= tol || (b - delta).abs() <= tol;
            if differs {
                div.differing += 1;
            }
            if straddles {
                div.straddling += 1;
            }
            if differs && !straddles {
                div.unexplained += 1;
            }
        }
        Ok(div)
    }

    /// Builds artifacts for an AppealNet two-head model: the routing score is
    /// the predictor output `q(1|x)`.
    pub fn from_two_head(
        net: &mut TwoHeadNet,
        big: &mut ClassifierParts,
        images: &Tensor,
        labels: &[usize],
        hard_flags: &[bool],
        batch_size: usize,
    ) -> Self {
        let out = net.evaluate(images, batch_size);
        let little_correct: Vec<bool> = out
            .predictions()
            .iter()
            .zip(labels.iter())
            .map(|(p, y)| p == y)
            .collect();
        let big_correct = classifier_correctness(big, images, labels, batch_size);
        Self {
            scores: out.q,
            little_correct,
            big_correct,
            hard_flags: hard_flags.to_vec(),
            little_flops: net.flops(),
            big_flops: big.total_flops(),
            score_kind: ScoreKind::AppealNetQ,
        }
    }

    /// Assembles baseline artifacts for one confidence score from a
    /// precomputed probability matrix and correctness flags. This is the
    /// single assembly path shared by [`Self::from_confidence_baseline`] and
    /// the multi-kind pipeline in [`crate::experiments::PreparedExperiment`],
    /// which computes the probabilities/correctness passes once and reuses
    /// them for every kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`ScoreKind::AppealNetQ`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_probabilities(
        probs: &Tensor,
        little_correct: Vec<bool>,
        big_correct: Vec<bool>,
        hard_flags: &[bool],
        little_flops: u64,
        big_flops: u64,
        kind: ScoreKind,
    ) -> Self {
        assert!(
            kind.is_confidence_baseline(),
            "use from_two_head for the AppealNet score"
        );
        Self {
            scores: confidence_scores(probs, kind),
            little_correct,
            big_correct,
            hard_flags: hard_flags.to_vec(),
            little_flops,
            big_flops,
            score_kind: kind,
        }
    }

    /// Builds artifacts for a plain little classifier using one of the
    /// confidence-score baselines (MSP, SM, Entropy), running both models.
    ///
    /// Evaluating several kinds (or the AppealNet score alongside them)?
    /// Use [`crate::experiments::PreparedExperiment`], which runs each model
    /// once and shares the passes across kinds via
    /// [`Self::from_probabilities`].
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`ScoreKind::AppealNetQ`].
    pub fn from_confidence_baseline(
        little: &mut ClassifierParts,
        big: &mut ClassifierParts,
        images: &Tensor,
        labels: &[usize],
        hard_flags: &[bool],
        kind: ScoreKind,
        batch_size: usize,
    ) -> Self {
        let logits = classifier_logits(little, images, batch_size);
        let probs = SoftmaxCrossEntropy::new().probabilities(&logits);
        let little_correct: Vec<bool> = logits
            .argmax_rows()
            .iter()
            .zip(labels.iter())
            .map(|(p, y)| p == y)
            .collect();
        let big_correct = classifier_correctness(big, images, labels, batch_size);
        Self::from_probabilities(
            &probs,
            little_correct,
            big_correct,
            hard_flags,
            little.total_flops(),
            big.total_flops(),
            kind,
        )
    }
}

/// Runs a classifier over a dataset in batches and returns the stacked
/// logits, sharding the pass across worker threads when the workload is
/// large enough for the runtime [`ChunkPolicy`].
pub(crate) fn classifier_logits(
    model: &mut ClassifierParts,
    images: &Tensor,
    batch_size: usize,
) -> Tensor {
    parallel::classifier_logits(model, images, batch_size, &ChunkPolicy::runtime())
}

fn classifier_correctness(
    model: &mut ClassifierParts,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Vec<bool> {
    parallel::classifier_correctness(model, images, labels, batch_size, &ChunkPolicy::runtime())
}

/// How the routing induced by two score sets compares at one threshold δ
/// (see [`EvaluationArtifacts::routing_divergence`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingDivergence {
    /// Samples compared.
    pub total: usize,
    /// Samples the two score sets route differently at δ.
    pub differing: usize,
    /// Samples whose score (in either set) lies within the tolerance of δ.
    pub straddling: usize,
    /// Samples routed differently although *neither* score is within the
    /// tolerance of δ. Zero whenever the score sets genuinely differ by at
    /// most the tolerance per sample.
    pub unexplained: usize,
}

/// The decision made for one input at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Predicted class label.
    pub label: usize,
    /// Predictor score `q(1|x)` for this input.
    pub score: f32,
    /// Whether the input was offloaded to the cloud.
    pub offloaded: bool,
    /// Cost charged for this input.
    pub cost: InferenceCost,
}

/// A deployable edge/cloud collaborative system with a fixed threshold δ:
/// the paper's Eq. 1, verbatim.
///
/// This is a thin wrapper over the serving [`Engine`] with a
/// [`ThresholdPolicy`] — batches shard across per-worker scorer replicas
/// exactly as the engine's [`ChunkPolicy`] dictates, and results are
/// bit-identical across thread counts. Prefer
/// [`crate::serve::EngineBuilder`] for new code: it additionally offers
/// budgeted and calibrated policies, confidence-baseline scorers, single
/// request micro-batching and live [`crate::serve::EngineStats`].
pub struct CollaborativeSystem {
    engine: Engine,
    threshold: f64,
}

impl std::fmt::Debug for CollaborativeSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CollaborativeSystem(threshold={}, engine={:?})",
            self.threshold, self.engine
        )
    }
}

impl CollaborativeSystem {
    /// Assembles a collaborative system.
    ///
    /// Errors with [`CoreError::InvalidThreshold`] if `threshold` is outside
    /// `[0, 1]`.
    pub fn new(
        little: TwoHeadNet,
        big: ClassifierParts,
        threshold: f64,
        hardware: SystemModel,
    ) -> CoreResult<Self> {
        Self::with_policy(little, big, threshold, hardware, ChunkPolicy::runtime())
    }

    /// Assembles a collaborative system with an explicit batch-routing policy
    /// (use [`ChunkPolicy::sequential`] to force single-threaded routing).
    ///
    /// Errors with [`CoreError::InvalidThreshold`] if `threshold` is outside
    /// `[0, 1]`.
    pub fn with_policy(
        little: TwoHeadNet,
        big: ClassifierParts,
        threshold: f64,
        hardware: SystemModel,
        policy: ChunkPolicy,
    ) -> CoreResult<Self> {
        let engine = Engine::builder()
            .appealnet(little)
            .big(big)
            .policy(ThresholdPolicy::new(threshold)?)
            .hardware(hardware)
            .chunk_policy(policy)
            .build()?;
        Ok(Self { engine, threshold })
    }

    /// The routing threshold δ.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Updates the routing threshold δ.
    ///
    /// Errors with [`CoreError::InvalidThreshold`] if `threshold` is outside
    /// `[0, 1]`.
    pub fn set_threshold(&mut self, threshold: f64) -> CoreResult<()> {
        self.engine
            .set_policy(Box::new(ThresholdPolicy::new(threshold)?));
        self.threshold = threshold;
        Ok(())
    }

    /// Classifies a batch of images, routing each input per Eq. 1.
    ///
    /// Delegates to [`Engine::classify_batch`]: batches at least as large as
    /// the chunk policy's shard floor are processed in two parallel stages
    /// (little network across per-worker replicas, then one sharded big pass
    /// over the offloaded subset) with results identical to the sequential
    /// path and in input order.
    ///
    /// # Panics
    ///
    /// Panics if `images` does not match the little network's input shape
    /// (the engine path reports this as [`CoreError::ShapeMismatch`]).
    pub fn classify(&mut self, images: &Tensor) -> Vec<RoutingOutcome> {
        self.engine
            .classify_batch(images)
            .expect("batch matches the little network's input shape")
            .into_iter()
            .map(|r| RoutingOutcome {
                label: r.label,
                score: r.score,
                offloaded: r.route.is_cloud(),
                cost: r.cost,
            })
            .collect()
    }

    /// Aggregate cost of a set of routing outcomes.
    pub fn total_cost(outcomes: &[RoutingOutcome]) -> InferenceCost {
        outcomes
            .iter()
            .fold(InferenceCost::zero(), |acc, o| acc.add(&o.cost))
    }

    /// Consumes the wrapper, releasing the underlying serving engine (e.g.
    /// to swap in a different routing policy).
    pub fn into_engine(self) -> Engine {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_models::{ModelFamily, ModelSpec};
    use appeal_tensor::SeededRng;

    fn synthetic_artifacts() -> EvaluationArtifacts {
        // Scores 0.0..1.0 over 10 samples; little correct on high-score ones.
        EvaluationArtifacts {
            scores: (0..10).map(|i| i as f32 / 10.0).collect(),
            little_correct: (0..10).map(|i| i >= 4).collect(),
            big_correct: vec![true; 10],
            hard_flags: (0..10).map(|i| i < 4).collect(),
            little_flops: 100,
            big_flops: 1000,
            score_kind: ScoreKind::AppealNetQ,
        }
    }

    #[test]
    fn threshold_zero_keeps_everything_on_edge() {
        let a = synthetic_artifacts();
        let m = a.at_threshold(0.0).unwrap();
        assert_eq!(m.skipping_rate, 1.0);
        assert_eq!(m.overall_accuracy, 0.6);
    }

    #[test]
    fn high_threshold_offloads_everything() {
        let a = synthetic_artifacts();
        let m = a.at_threshold(2.0).unwrap();
        assert_eq!(m.skipping_rate, 0.0);
        assert_eq!(m.overall_accuracy, 1.0);
        assert_eq!(m.overall_flops, 1100.0);
    }

    #[test]
    fn perfect_scores_give_perfect_accuracy_at_intermediate_sr() {
        // Keeping the 60% of inputs the little model gets right and
        // offloading the rest yields 100% accuracy here.
        let a = synthetic_artifacts();
        let m = a.at_skipping_rate(0.6).unwrap();
        assert!((m.skipping_rate - 0.6).abs() < 1e-9);
        assert_eq!(m.overall_accuracy, 1.0);
    }

    #[test]
    fn threshold_for_sr_hits_requested_rate() {
        let a = synthetic_artifacts();
        for target in [0.0, 0.3, 0.5, 0.8, 1.0] {
            let m = a.at_skipping_rate(target).unwrap();
            assert!(
                (m.skipping_rate - target).abs() <= 0.1 + 1e-9,
                "target {target} got {}",
                m.skipping_rate
            );
        }
    }

    #[test]
    fn candidate_thresholds_cover_all_routings() {
        let a = synthetic_artifacts();
        let thresholds = a.candidate_thresholds().unwrap();
        assert_eq!(thresholds.len(), 11);
        let srs: Vec<f64> = thresholds
            .iter()
            .map(|&t| a.at_threshold(t).unwrap().skipping_rate)
            .collect();
        assert!(srs.contains(&1.0));
        assert!(srs.contains(&0.0));
    }

    #[test]
    fn routing_divergence_attributes_every_flip_to_straddling_scores() {
        let a = synthetic_artifacts();
        let mut b = a.clone();
        // Shift every score by less than the tolerance: any routing flip at
        // δ must then involve a score within tol of δ.
        for s in &mut b.scores {
            *s += 0.04;
        }
        assert!(a.max_score_divergence(&b).unwrap() <= 0.05);
        let div = a.routing_divergence(&b, 0.43, 0.05).unwrap();
        assert_eq!(div.total, 10);
        assert!(div.differing > 0, "the shift must flip at least one route");
        assert_eq!(div.unexplained, 0);
        // Identical scores: no flips at all, even at zero tolerance.
        let same = a.routing_divergence(&a, 0.43, 0.0).unwrap();
        assert_eq!(same.differing, 0);
        assert_eq!(same.unexplained, 0);
        assert_eq!(a.max_score_divergence(&a).unwrap(), 0.0);
    }

    #[test]
    fn routing_divergence_flags_unexplained_flips() {
        let a = synthetic_artifacts();
        let mut b = a.clone();
        // Sample 9 (score 0.9) drops below δ although it is far from δ in
        // both sets: an unexplained flip the tolerance cannot absorb.
        b.scores[9] = 0.1;
        let div = a.routing_divergence(&b, 0.43, 0.05).unwrap();
        assert_eq!(div.differing, 1);
        assert_eq!(div.unexplained, 1);
    }

    #[test]
    fn routing_divergence_rejects_mismatched_or_invalid_inputs() {
        let a = synthetic_artifacts();
        let mut short = a.clone();
        short.scores.pop();
        short.little_correct.pop();
        short.big_correct.pop();
        assert!(matches!(
            a.routing_divergence(&short, 0.5, 0.01).unwrap_err(),
            CoreError::LengthMismatch {
                field: "scores",
                ..
            }
        ));
        assert!(matches!(
            a.max_score_divergence(&short).unwrap_err(),
            CoreError::LengthMismatch {
                field: "scores",
                ..
            }
        ));
        assert!(matches!(
            a.routing_divergence(&a, f64::NAN, 0.01).unwrap_err(),
            CoreError::InvalidThreshold(_)
        ));
        assert!(a.routing_divergence(&a, 0.5, -0.01).is_err());
    }

    #[test]
    fn empty_artifacts_are_reported_not_panicked() {
        let mut a = synthetic_artifacts();
        a.scores.clear();
        a.little_correct.clear();
        a.big_correct.clear();
        assert_eq!(a.at_threshold(0.5).unwrap_err(), CoreError::EmptyArtifacts);
        assert_eq!(
            a.threshold_for_skipping_rate(0.5).unwrap_err(),
            CoreError::EmptyArtifacts
        );
        assert_eq!(
            a.candidate_thresholds().unwrap_err(),
            CoreError::EmptyArtifacts
        );
    }

    #[test]
    fn length_mismatched_artifacts_are_reported_not_panicked() {
        let mut a = synthetic_artifacts();
        a.little_correct.pop();
        assert_eq!(
            a.at_threshold(0.5).unwrap_err(),
            CoreError::LengthMismatch {
                field: "little_correct",
                expected: 10,
                got: 9,
            }
        );
        let mut b = synthetic_artifacts();
        b.big_correct.push(true);
        assert_eq!(
            b.at_skipping_rate(0.5).unwrap_err(),
            CoreError::LengthMismatch {
                field: "big_correct",
                expected: 10,
                got: 11,
            }
        );
    }

    #[test]
    fn nan_scores_are_reported_not_panicked() {
        let mut a = synthetic_artifacts();
        a.scores[7] = f32::NAN;
        assert_eq!(
            a.thresholds_for_skipping_rates(&[0.5]).unwrap_err(),
            CoreError::InvalidScore { index: 7 }
        );
        assert_eq!(
            a.candidate_thresholds().unwrap_err(),
            CoreError::InvalidScore { index: 7 }
        );
        assert_eq!(
            a.at_skipping_rate(0.5).unwrap_err(),
            CoreError::InvalidScore { index: 7 }
        );
    }

    #[test]
    fn invalid_rates_and_thresholds_are_reported() {
        let a = synthetic_artifacts();
        assert_eq!(
            a.thresholds_for_skipping_rates(&[0.5, 1.2]).unwrap_err(),
            CoreError::InvalidRate(1.2)
        );
        assert_eq!(
            a.at_skipping_rate(-0.1).unwrap_err(),
            CoreError::InvalidRate(-0.1)
        );
        assert!(matches!(
            a.at_threshold(f64::NAN).unwrap_err(),
            CoreError::InvalidThreshold(_)
        ));
    }

    fn tiny_models(classes: usize) -> (TwoHeadNet, ClassifierParts) {
        let mut rng = SeededRng::new(3);
        let little =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], classes).build(&mut rng);
        let big = ModelSpec::big([3, 12, 12], classes).build(&mut rng);
        (TwoHeadNet::from_parts(little, &mut rng), big)
    }

    #[test]
    fn artifacts_from_models_have_consistent_lengths() {
        let (mut net, mut big) = tiny_models(4);
        let mut rng = SeededRng::new(4);
        let images = Tensor::randn(&[12, 3, 12, 12], &mut rng);
        let labels: Vec<usize> = (0..12).map(|i| i % 4).collect();
        let hard = vec![false; 12];
        let art =
            EvaluationArtifacts::from_two_head(&mut net, &mut big, &images, &labels, &hard, 5);
        assert_eq!(art.len(), 12);
        assert!(!art.is_empty());
        assert!(art.little_flops < art.big_flops);
        assert_eq!(art.score_kind, ScoreKind::AppealNetQ);
    }

    #[test]
    fn baseline_artifacts_use_requested_score() {
        let mut rng = SeededRng::new(5);
        let mut little =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let mut big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        let images = Tensor::randn(&[8, 3, 12, 12], &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let hard = vec![false; 8];
        let art = EvaluationArtifacts::from_confidence_baseline(
            &mut little,
            &mut big,
            &images,
            &labels,
            &hard,
            ScoreKind::ScoreMargin,
            4,
        );
        assert_eq!(art.score_kind, ScoreKind::ScoreMargin);
        assert!(art.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn collaborative_system_routes_and_costs() {
        let (net, big) = tiny_models(4);
        let mut system = CollaborativeSystem::new(net, big, 0.5, SystemModel::typical()).unwrap();
        let mut rng = SeededRng::new(6);
        let images = Tensor::randn(&[6, 3, 12, 12], &mut rng);
        let outcomes = system.classify(&images);
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            assert!(o.label < 4);
            assert_eq!(o.offloaded, (o.score as f64) < 0.5);
        }
        let total = CollaborativeSystem::total_cost(&outcomes);
        assert!(total.flops > 0);
        // Threshold 0 keeps everything on the edge and must be cheaper.
        system.set_threshold(0.0).unwrap();
        let cheap = CollaborativeSystem::total_cost(&system.classify(&images));
        assert!(cheap.energy_mj <= total.energy_mj + 1e-9);
        assert_eq!(system.threshold(), 0.0);
    }

    #[test]
    fn rejects_bad_threshold() {
        let (net, big) = tiny_models(2);
        assert_eq!(
            CollaborativeSystem::new(net, big, 1.5, SystemModel::typical()).unwrap_err(),
            CoreError::InvalidThreshold(1.5)
        );
    }

    #[test]
    fn set_threshold_rejects_bad_values_and_keeps_old_threshold() {
        let (net, big) = tiny_models(2);
        let mut system = CollaborativeSystem::new(net, big, 0.4, SystemModel::typical()).unwrap();
        assert!(system.set_threshold(f64::NAN).is_err());
        assert_eq!(system.threshold(), 0.4);
    }

    #[test]
    fn batch_thresholds_match_single_rate_queries() {
        let a = synthetic_artifacts();
        let rates = [0.0, 0.25, 0.5, 0.75, 1.0];
        let batch = a.thresholds_for_skipping_rates(&rates).unwrap();
        for (t, &sr) in batch.iter().zip(rates.iter()) {
            assert_eq!(*t, a.threshold_for_skipping_rate(sr).unwrap());
        }
    }

    #[test]
    fn parallel_routing_matches_sequential_routing() {
        let (net, big) = tiny_models(4);
        let policy = crate::parallel::ChunkPolicy {
            min_shard: 8,
            max_shards: 4,
        };
        let mut parallel_system =
            CollaborativeSystem::with_policy(net, big, 0.5, SystemModel::typical(), policy)
                .unwrap();
        let (net2, big2) = tiny_models(4);
        let mut sequential_system = CollaborativeSystem::with_policy(
            net2,
            big2,
            0.5,
            SystemModel::typical(),
            crate::parallel::ChunkPolicy::sequential(),
        )
        .unwrap();
        let mut rng = SeededRng::new(9);
        let images = Tensor::randn(&[48, 3, 12, 12], &mut rng);
        let par = parallel_system.classify(&images);
        let seq = sequential_system.classify(&images);
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(seq.iter()) {
            assert_eq!(p.label, s.label);
            assert_eq!(p.offloaded, s.offloaded);
            assert_eq!(
                p.score.to_bits(),
                s.score.to_bits(),
                "scores must be bit-identical"
            );
        }
    }
}
