//! The edge/cloud collaborative system (paper Eq. 1) and precomputed
//! evaluation artifacts.
//!
//! For experiments it is wasteful to re-run both networks for every candidate
//! threshold δ, so [`EvaluationArtifacts`] stores per-sample routing scores
//! and correctness flags once; every threshold or skipping-rate query is then
//! a cheap scan. [`CollaborativeSystem`] is the runtime counterpart used by
//! the examples: it owns the two models and routes live batches.

use crate::metrics::{routed_metrics, RoutedMetrics};
use crate::parallel::{self, ChunkPolicy};
use crate::scores::{confidence_scores, ScoreKind};
use crate::two_head::TwoHeadNet;
use appeal_hw::{InferenceCost, SystemModel};
use appeal_models::ClassifierParts;
use appeal_tensor::loss::SoftmaxCrossEntropy;
use appeal_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Per-sample artifacts of evaluating a little/big model pair on a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationArtifacts {
    /// Routing score per input (higher = keep on the edge).
    pub scores: Vec<f32>,
    /// Whether the little network classifies each input correctly.
    pub little_correct: Vec<bool>,
    /// Whether the big network classifies each input correctly.
    pub big_correct: Vec<bool>,
    /// Ground-truth difficulty flags from the dataset synthesizer (analysis only).
    pub hard_flags: Vec<bool>,
    /// Per-inference FLOPs of the little network (including the predictor head).
    pub little_flops: u64,
    /// Per-inference FLOPs of the big network.
    pub big_flops: u64,
    /// Which score produced `scores`.
    pub score_kind: ScoreKind,
}

impl EvaluationArtifacts {
    /// Number of evaluated samples.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Returns `true` if no samples were evaluated.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Metrics when inputs with score `≥ δ` stay on the edge (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the artifacts are empty.
    pub fn at_threshold(&self, delta: f64) -> RoutedMetrics {
        let keep: Vec<bool> = self.scores.iter().map(|&s| (s as f64) >= delta).collect();
        routed_metrics(
            &keep,
            &self.little_correct,
            &self.big_correct,
            self.little_flops,
            self.big_flops,
            delta,
        )
    }

    /// The threshold δ that keeps (approximately) a `target_sr` fraction of
    /// inputs on the edge: the `(1 − target_sr)` quantile of the scores.
    ///
    /// # Panics
    ///
    /// Panics if the artifacts are empty or `target_sr` is outside `[0, 1]`.
    pub fn threshold_for_skipping_rate(&self, target_sr: f64) -> f64 {
        self.thresholds_for_skipping_rates(std::slice::from_ref(&target_sr))[0]
    }

    /// Metrics at (approximately) the requested skipping rate.
    pub fn at_skipping_rate(&self, target_sr: f64) -> RoutedMetrics {
        self.at_threshold(self.threshold_for_skipping_rate(target_sr))
    }

    /// Thresholds for several target skipping rates at once, sorting the
    /// scores a single time (the sweep hot path evaluates whole grids).
    ///
    /// # Panics
    ///
    /// Panics if the artifacts are empty or any rate is outside `[0, 1]`.
    pub fn thresholds_for_skipping_rates(&self, target_srs: &[f64]) -> Vec<f64> {
        assert!(!self.is_empty(), "no evaluation artifacts");
        let mut sorted: Vec<f32> = self.scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("scores must not be NaN"));
        let n = sorted.len();
        target_srs
            .iter()
            .map(|&sr| {
                assert!(
                    (0.0..=1.0).contains(&sr),
                    "target skipping rate must be in [0, 1]"
                );
                // Keep the top `sr` fraction on the edge.
                let k = ((1.0 - sr) * n as f64).round() as usize;
                if k >= n {
                    // Nothing stays on the edge: a threshold above the maximum.
                    sorted[n - 1] as f64 + 1.0
                } else {
                    sorted[k] as f64
                }
            })
            .collect()
    }

    /// Candidate thresholds: every distinct score value (plus one above the
    /// maximum), which is sufficient to enumerate every possible routing.
    pub fn candidate_thresholds(&self) -> Vec<f64> {
        let mut t: Vec<f64> = self.scores.iter().map(|&s| s as f64).collect();
        t.sort_by(|a, b| a.partial_cmp(b).expect("scores must not be NaN"));
        t.dedup();
        if let Some(&max) = t.last() {
            t.push(max + 1.0);
        }
        t
    }

    /// Builds artifacts for an AppealNet two-head model: the routing score is
    /// the predictor output `q(1|x)`.
    pub fn from_two_head(
        net: &mut TwoHeadNet,
        big: &mut ClassifierParts,
        images: &Tensor,
        labels: &[usize],
        hard_flags: &[bool],
        batch_size: usize,
    ) -> Self {
        let out = net.evaluate(images, batch_size);
        let little_correct: Vec<bool> = out
            .predictions()
            .iter()
            .zip(labels.iter())
            .map(|(p, y)| p == y)
            .collect();
        let big_correct = classifier_correctness(big, images, labels, batch_size);
        Self {
            scores: out.q,
            little_correct,
            big_correct,
            hard_flags: hard_flags.to_vec(),
            little_flops: net.flops(),
            big_flops: big.total_flops(),
            score_kind: ScoreKind::AppealNetQ,
        }
    }

    /// Assembles baseline artifacts for one confidence score from a
    /// precomputed probability matrix and correctness flags. This is the
    /// single assembly path shared by [`Self::from_confidence_baseline`] and
    /// the multi-kind pipeline in [`crate::experiments::PreparedExperiment`],
    /// which computes the probabilities/correctness passes once and reuses
    /// them for every kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`ScoreKind::AppealNetQ`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_probabilities(
        probs: &Tensor,
        little_correct: Vec<bool>,
        big_correct: Vec<bool>,
        hard_flags: &[bool],
        little_flops: u64,
        big_flops: u64,
        kind: ScoreKind,
    ) -> Self {
        assert!(
            kind.is_confidence_baseline(),
            "use from_two_head for the AppealNet score"
        );
        Self {
            scores: confidence_scores(probs, kind),
            little_correct,
            big_correct,
            hard_flags: hard_flags.to_vec(),
            little_flops,
            big_flops,
            score_kind: kind,
        }
    }

    /// Builds artifacts for a plain little classifier using one of the
    /// confidence-score baselines (MSP, SM, Entropy), running both models.
    ///
    /// Evaluating several kinds (or the AppealNet score alongside them)?
    /// Use [`crate::experiments::PreparedExperiment`], which runs each model
    /// once and shares the passes across kinds via
    /// [`Self::from_probabilities`].
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`ScoreKind::AppealNetQ`].
    pub fn from_confidence_baseline(
        little: &mut ClassifierParts,
        big: &mut ClassifierParts,
        images: &Tensor,
        labels: &[usize],
        hard_flags: &[bool],
        kind: ScoreKind,
        batch_size: usize,
    ) -> Self {
        let logits = classifier_logits(little, images, batch_size);
        let probs = SoftmaxCrossEntropy::new().probabilities(&logits);
        let little_correct: Vec<bool> = logits
            .argmax_rows()
            .iter()
            .zip(labels.iter())
            .map(|(p, y)| p == y)
            .collect();
        let big_correct = classifier_correctness(big, images, labels, batch_size);
        Self::from_probabilities(
            &probs,
            little_correct,
            big_correct,
            hard_flags,
            little.total_flops(),
            big.total_flops(),
            kind,
        )
    }
}

/// Runs a classifier over a dataset in batches and returns the stacked
/// logits, sharding the pass across worker threads when the workload is
/// large enough for the runtime [`ChunkPolicy`].
pub(crate) fn classifier_logits(
    model: &mut ClassifierParts,
    images: &Tensor,
    batch_size: usize,
) -> Tensor {
    parallel::classifier_logits(model, images, batch_size, &ChunkPolicy::runtime())
}

fn classifier_correctness(
    model: &mut ClassifierParts,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Vec<bool> {
    parallel::classifier_correctness(model, images, labels, batch_size, &ChunkPolicy::runtime())
}

/// The decision made for one input at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Predicted class label.
    pub label: usize,
    /// Predictor score `q(1|x)` for this input.
    pub score: f32,
    /// Whether the input was offloaded to the cloud.
    pub offloaded: bool,
    /// Cost charged for this input.
    pub cost: InferenceCost,
}

/// A deployable edge/cloud collaborative system: the jointly trained two-head
/// little network on the edge, the big network in the cloud, a threshold δ
/// and a hardware cost model.
///
/// Batches are routed across CPU cores: when a batch is large enough for the
/// system's [`ChunkPolicy`], it is split into contiguous shards and each
/// shard is classified by a per-worker replica of the models. Replicas are
/// built lazily on first use and reused across calls (the models never change
/// after construction). Per-sample results are identical to the sequential
/// path and are returned in input order.
pub struct CollaborativeSystem {
    little: TwoHeadNet,
    big: ClassifierParts,
    threshold: f64,
    hardware: SystemModel,
    input_bytes: u64,
    policy: ChunkPolicy,
    /// Lazily built little-network replicas, one per worker thread. Only the
    /// little net is retained per worker: the big network is >10× its size,
    /// and the big pass over the offloaded subset shards with transient
    /// replicas instead (see [`CollaborativeSystem::classify`]).
    workers: Vec<TwoHeadNet>,
}

impl std::fmt::Debug for CollaborativeSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CollaborativeSystem(little={:?}, threshold={}, hardware={:?})",
            self.little, self.threshold, self.hardware
        )
    }
}

impl CollaborativeSystem {
    /// Assembles a collaborative system.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(
        little: TwoHeadNet,
        big: ClassifierParts,
        threshold: f64,
        hardware: SystemModel,
    ) -> Self {
        Self::with_policy(little, big, threshold, hardware, ChunkPolicy::runtime())
    }

    /// Assembles a collaborative system with an explicit batch-routing policy
    /// (use [`ChunkPolicy::sequential`] to force single-threaded routing).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn with_policy(
        little: TwoHeadNet,
        big: ClassifierParts,
        threshold: f64,
        hardware: SystemModel,
        policy: ChunkPolicy,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        let input_bytes = (little.spec().input_shape.iter().product::<usize>() * 4) as u64;
        Self {
            little,
            big,
            threshold,
            hardware,
            input_bytes,
            policy,
            workers: Vec::new(),
        }
    }

    /// The routing threshold δ.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Updates the routing threshold δ.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn set_threshold(&mut self, threshold: f64) {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        self.threshold = threshold;
    }

    /// Classifies a batch of images, routing each input per Eq. 1.
    ///
    /// Batches at least as large as the routing policy's shard floor are
    /// processed in two parallel stages — the little network runs on every
    /// input across per-worker replicas, then the big network runs one
    /// (internally sharded) pass over the concatenated offloaded subset.
    /// Results are identical to the sequential path and in input order.
    pub fn classify(&mut self, images: &Tensor) -> Vec<RoutingOutcome> {
        let n = images.shape()[0];
        let shards = self.policy.shards(n);
        let edge_cost = self.hardware.edge_only_cost(self.little.flops());
        let offload_cost = self.hardware.offload_cost(
            self.little.flops(),
            self.big.total_flops(),
            self.input_bytes,
        );
        let threshold = self.threshold;
        if shards.len() <= 1 {
            return classify_range(
                &mut self.little,
                &mut self.big,
                images,
                0..n,
                threshold,
                edge_cost,
                offload_cost,
            );
        }
        // Stage 1: little network over every input, sharded across the
        // retained worker replicas.
        self.ensure_workers(shards.len());
        let mut slots: Vec<(Vec<usize>, Vec<f32>)> = Vec::new();
        slots.resize_with(shards.len(), Default::default);
        rayon::scope(|s| {
            for ((little, shard), slot) in self.workers.iter_mut().zip(shards).zip(slots.iter_mut())
            {
                s.spawn(move |_| {
                    let idx: Vec<usize> = shard.collect();
                    let out = little.forward(&images.select_rows(&idx), false);
                    *slot = (out.predictions(), out.q);
                });
            }
        });
        let mut little_preds = Vec::with_capacity(n);
        let mut q = Vec::with_capacity(n);
        for (shard_preds, shard_q) in slots {
            little_preds.extend(shard_preds);
            q.extend(shard_q);
        }
        // Stage 2: one big-network pass over the offloaded subset, itself
        // sharded per the policy (with transient replicas).
        let offload_idx: Vec<usize> = (0..n).filter(|&i| (q[i] as f64) < threshold).collect();
        let big_preds: Vec<usize> = if offload_idx.is_empty() {
            Vec::new()
        } else {
            let big_batch = images.select_rows(&offload_idx);
            parallel::classifier_logits(&mut self.big, &big_batch, offload_idx.len(), &self.policy)
                .argmax_rows()
        };
        let mut big_iter = big_preds.into_iter();
        (0..n)
            .map(|i| {
                let offloaded = (q[i] as f64) < threshold;
                RoutingOutcome {
                    label: if offloaded {
                        big_iter
                            .next()
                            .expect("one big prediction per offloaded input")
                    } else {
                        little_preds[i]
                    },
                    score: q[i],
                    offloaded,
                    cost: if offloaded { offload_cost } else { edge_cost },
                }
            })
            .collect()
    }

    /// Builds little-network replicas until at least `count` workers exist.
    /// Workers live as long as the system, so replicas drop the source
    /// model's activation caches (see [`parallel::Replica`]).
    fn ensure_workers(&mut self, count: usize) {
        use crate::parallel::Replica;
        while self.workers.len() < count {
            self.workers.push(self.little.replica());
        }
    }

    /// Aggregate cost of a set of routing outcomes.
    pub fn total_cost(outcomes: &[RoutingOutcome]) -> InferenceCost {
        outcomes
            .iter()
            .fold(InferenceCost::zero(), |acc, o| acc.add(&o.cost))
    }
}

/// Routes the samples of `range` through one little/big model pair (Eq. 1).
/// Shared by the sequential path and every parallel worker.
fn classify_range(
    little: &mut TwoHeadNet,
    big: &mut ClassifierParts,
    images: &Tensor,
    range: Range<usize>,
    threshold: f64,
    edge_cost: InferenceCost,
    offload_cost: InferenceCost,
) -> Vec<RoutingOutcome> {
    let local_n = range.end.saturating_sub(range.start);
    if local_n == 0 {
        return Vec::new();
    }
    // A range covering the whole tensor (the sequential path) is forwarded
    // directly; shards materialize their row subset.
    let shard_copy;
    let batch: &Tensor = if range.start == 0 && range.end == images.shape()[0] {
        images
    } else {
        let idx: Vec<usize> = range.collect();
        shard_copy = images.select_rows(&idx);
        &shard_copy
    };
    let out = little.forward(batch, false);
    let little_preds = out.predictions();
    // Find which inputs must be appealed to the cloud.
    let offload_local: Vec<usize> = (0..local_n)
        .filter(|&i| (out.q[i] as f64) < threshold)
        .collect();
    let big_preds: Vec<usize> = if offload_local.is_empty() {
        Vec::new()
    } else {
        let big_batch = batch.select_rows(&offload_local);
        big.forward(&big_batch, false).argmax_rows()
    };
    let mut big_iter = big_preds.into_iter();
    (0..local_n)
        .map(|i| {
            let offloaded = (out.q[i] as f64) < threshold;
            RoutingOutcome {
                label: if offloaded {
                    big_iter
                        .next()
                        .expect("one big prediction per offloaded input")
                } else {
                    little_preds[i]
                },
                score: out.q[i],
                offloaded,
                cost: if offloaded { offload_cost } else { edge_cost },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_models::{ModelFamily, ModelSpec};
    use appeal_tensor::SeededRng;

    fn synthetic_artifacts() -> EvaluationArtifacts {
        // Scores 0.0..1.0 over 10 samples; little correct on high-score ones.
        EvaluationArtifacts {
            scores: (0..10).map(|i| i as f32 / 10.0).collect(),
            little_correct: (0..10).map(|i| i >= 4).collect(),
            big_correct: vec![true; 10],
            hard_flags: (0..10).map(|i| i < 4).collect(),
            little_flops: 100,
            big_flops: 1000,
            score_kind: ScoreKind::AppealNetQ,
        }
    }

    #[test]
    fn threshold_zero_keeps_everything_on_edge() {
        let a = synthetic_artifacts();
        let m = a.at_threshold(0.0);
        assert_eq!(m.skipping_rate, 1.0);
        assert_eq!(m.overall_accuracy, 0.6);
    }

    #[test]
    fn high_threshold_offloads_everything() {
        let a = synthetic_artifacts();
        let m = a.at_threshold(2.0);
        assert_eq!(m.skipping_rate, 0.0);
        assert_eq!(m.overall_accuracy, 1.0);
        assert_eq!(m.overall_flops, 1100.0);
    }

    #[test]
    fn perfect_scores_give_perfect_accuracy_at_intermediate_sr() {
        // Keeping the 60% of inputs the little model gets right and
        // offloading the rest yields 100% accuracy here.
        let a = synthetic_artifacts();
        let m = a.at_skipping_rate(0.6);
        assert!((m.skipping_rate - 0.6).abs() < 1e-9);
        assert_eq!(m.overall_accuracy, 1.0);
    }

    #[test]
    fn threshold_for_sr_hits_requested_rate() {
        let a = synthetic_artifacts();
        for target in [0.0, 0.3, 0.5, 0.8, 1.0] {
            let m = a.at_skipping_rate(target);
            assert!(
                (m.skipping_rate - target).abs() <= 0.1 + 1e-9,
                "target {target} got {}",
                m.skipping_rate
            );
        }
    }

    #[test]
    fn candidate_thresholds_cover_all_routings() {
        let a = synthetic_artifacts();
        let thresholds = a.candidate_thresholds();
        assert_eq!(thresholds.len(), 11);
        let srs: Vec<f64> = thresholds
            .iter()
            .map(|&t| a.at_threshold(t).skipping_rate)
            .collect();
        assert!(srs.contains(&1.0));
        assert!(srs.contains(&0.0));
    }

    fn tiny_models(classes: usize) -> (TwoHeadNet, ClassifierParts) {
        let mut rng = SeededRng::new(3);
        let little =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], classes).build(&mut rng);
        let big = ModelSpec::big([3, 12, 12], classes).build(&mut rng);
        (TwoHeadNet::from_parts(little, &mut rng), big)
    }

    #[test]
    fn artifacts_from_models_have_consistent_lengths() {
        let (mut net, mut big) = tiny_models(4);
        let mut rng = SeededRng::new(4);
        let images = Tensor::randn(&[12, 3, 12, 12], &mut rng);
        let labels: Vec<usize> = (0..12).map(|i| i % 4).collect();
        let hard = vec![false; 12];
        let art =
            EvaluationArtifacts::from_two_head(&mut net, &mut big, &images, &labels, &hard, 5);
        assert_eq!(art.len(), 12);
        assert!(!art.is_empty());
        assert!(art.little_flops < art.big_flops);
        assert_eq!(art.score_kind, ScoreKind::AppealNetQ);
    }

    #[test]
    fn baseline_artifacts_use_requested_score() {
        let mut rng = SeededRng::new(5);
        let mut little =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let mut big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        let images = Tensor::randn(&[8, 3, 12, 12], &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let hard = vec![false; 8];
        let art = EvaluationArtifacts::from_confidence_baseline(
            &mut little,
            &mut big,
            &images,
            &labels,
            &hard,
            ScoreKind::ScoreMargin,
            4,
        );
        assert_eq!(art.score_kind, ScoreKind::ScoreMargin);
        assert!(art.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn collaborative_system_routes_and_costs() {
        let (net, big) = tiny_models(4);
        let mut system = CollaborativeSystem::new(net, big, 0.5, SystemModel::typical());
        let mut rng = SeededRng::new(6);
        let images = Tensor::randn(&[6, 3, 12, 12], &mut rng);
        let outcomes = system.classify(&images);
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            assert!(o.label < 4);
            assert_eq!(o.offloaded, (o.score as f64) < 0.5);
        }
        let total = CollaborativeSystem::total_cost(&outcomes);
        assert!(total.flops > 0);
        // Threshold 0 keeps everything on the edge and must be cheaper.
        system.set_threshold(0.0);
        let cheap = CollaborativeSystem::total_cost(&system.classify(&images));
        assert!(cheap.energy_mj <= total.energy_mj + 1e-9);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn rejects_bad_threshold() {
        let (net, big) = tiny_models(2);
        let _ = CollaborativeSystem::new(net, big, 1.5, SystemModel::typical());
    }

    #[test]
    fn batch_thresholds_match_single_rate_queries() {
        let a = synthetic_artifacts();
        let rates = [0.0, 0.25, 0.5, 0.75, 1.0];
        let batch = a.thresholds_for_skipping_rates(&rates);
        for (t, &sr) in batch.iter().zip(rates.iter()) {
            assert_eq!(*t, a.threshold_for_skipping_rate(sr));
        }
    }

    #[test]
    fn parallel_routing_matches_sequential_routing() {
        let (net, big) = tiny_models(4);
        let policy = crate::parallel::ChunkPolicy {
            min_shard: 8,
            max_shards: 4,
        };
        let mut parallel_system =
            CollaborativeSystem::with_policy(net, big, 0.5, SystemModel::typical(), policy);
        let (net2, big2) = tiny_models(4);
        let mut sequential_system = CollaborativeSystem::with_policy(
            net2,
            big2,
            0.5,
            SystemModel::typical(),
            crate::parallel::ChunkPolicy::sequential(),
        );
        let mut rng = SeededRng::new(9);
        let images = Tensor::randn(&[48, 3, 12, 12], &mut rng);
        let par = parallel_system.classify(&images);
        let seq = sequential_system.classify(&images);
        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(seq.iter()) {
            assert_eq!(p.label, s.label);
            assert_eq!(p.offloaded, s.offloaded);
            assert_eq!(
                p.score.to_bits(),
                s.score.to_bits(),
                "scores must be bit-identical"
            );
        }
    }
}
