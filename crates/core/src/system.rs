//! The edge/cloud collaborative system (paper Eq. 1) and precomputed
//! evaluation artifacts.
//!
//! For experiments it is wasteful to re-run both networks for every candidate
//! threshold δ, so [`EvaluationArtifacts`] stores per-sample routing scores
//! and correctness flags once; every threshold or skipping-rate query is then
//! a cheap scan. [`CollaborativeSystem`] is the runtime counterpart used by
//! the examples: it owns the two models and routes live batches.

use crate::metrics::{routed_metrics, RoutedMetrics};
use crate::scores::{confidence_scores, ScoreKind};
use crate::two_head::TwoHeadNet;
use appeal_hw::{InferenceCost, SystemModel};
use appeal_models::ClassifierParts;
use appeal_tensor::loss::SoftmaxCrossEntropy;
use appeal_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Per-sample artifacts of evaluating a little/big model pair on a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationArtifacts {
    /// Routing score per input (higher = keep on the edge).
    pub scores: Vec<f32>,
    /// Whether the little network classifies each input correctly.
    pub little_correct: Vec<bool>,
    /// Whether the big network classifies each input correctly.
    pub big_correct: Vec<bool>,
    /// Ground-truth difficulty flags from the dataset synthesizer (analysis only).
    pub hard_flags: Vec<bool>,
    /// Per-inference FLOPs of the little network (including the predictor head).
    pub little_flops: u64,
    /// Per-inference FLOPs of the big network.
    pub big_flops: u64,
    /// Which score produced `scores`.
    pub score_kind: ScoreKind,
}

impl EvaluationArtifacts {
    /// Number of evaluated samples.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Returns `true` if no samples were evaluated.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Metrics when inputs with score `≥ δ` stay on the edge (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the artifacts are empty.
    pub fn at_threshold(&self, delta: f64) -> RoutedMetrics {
        let keep: Vec<bool> = self.scores.iter().map(|&s| (s as f64) >= delta).collect();
        routed_metrics(
            &keep,
            &self.little_correct,
            &self.big_correct,
            self.little_flops,
            self.big_flops,
            delta,
        )
    }

    /// The threshold δ that keeps (approximately) a `target_sr` fraction of
    /// inputs on the edge: the `(1 − target_sr)` quantile of the scores.
    ///
    /// # Panics
    ///
    /// Panics if the artifacts are empty or `target_sr` is outside `[0, 1]`.
    pub fn threshold_for_skipping_rate(&self, target_sr: f64) -> f64 {
        assert!(!self.is_empty(), "no evaluation artifacts");
        assert!(
            (0.0..=1.0).contains(&target_sr),
            "target skipping rate must be in [0, 1]"
        );
        let mut sorted: Vec<f32> = self.scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("scores must not be NaN"));
        let n = sorted.len();
        // Keep the top `target_sr` fraction on the edge.
        let k = ((1.0 - target_sr) * n as f64).round() as usize;
        if k >= n {
            // Nothing stays on the edge: use a threshold above the maximum.
            sorted[n - 1] as f64 + 1.0
        } else {
            sorted[k] as f64
        }
    }

    /// Metrics at (approximately) the requested skipping rate.
    pub fn at_skipping_rate(&self, target_sr: f64) -> RoutedMetrics {
        self.at_threshold(self.threshold_for_skipping_rate(target_sr))
    }

    /// Candidate thresholds: every distinct score value (plus one above the
    /// maximum), which is sufficient to enumerate every possible routing.
    pub fn candidate_thresholds(&self) -> Vec<f64> {
        let mut t: Vec<f64> = self.scores.iter().map(|&s| s as f64).collect();
        t.sort_by(|a, b| a.partial_cmp(b).expect("scores must not be NaN"));
        t.dedup();
        if let Some(&max) = t.last() {
            t.push(max + 1.0);
        }
        t
    }

    /// Builds artifacts for an AppealNet two-head model: the routing score is
    /// the predictor output `q(1|x)`.
    pub fn from_two_head(
        net: &mut TwoHeadNet,
        big: &mut ClassifierParts,
        images: &Tensor,
        labels: &[usize],
        hard_flags: &[bool],
        batch_size: usize,
    ) -> Self {
        let out = net.evaluate(images, batch_size);
        let little_correct: Vec<bool> = out
            .predictions()
            .iter()
            .zip(labels.iter())
            .map(|(p, y)| p == y)
            .collect();
        let big_correct = classifier_correctness(big, images, labels, batch_size);
        Self {
            scores: out.q,
            little_correct,
            big_correct,
            hard_flags: hard_flags.to_vec(),
            little_flops: net.flops(),
            big_flops: big.total_flops(),
            score_kind: ScoreKind::AppealNetQ,
        }
    }

    /// Builds artifacts for a plain little classifier using one of the
    /// confidence-score baselines (MSP, SM, Entropy).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`ScoreKind::AppealNetQ`].
    pub fn from_confidence_baseline(
        little: &mut ClassifierParts,
        big: &mut ClassifierParts,
        images: &Tensor,
        labels: &[usize],
        hard_flags: &[bool],
        kind: ScoreKind,
        batch_size: usize,
    ) -> Self {
        assert!(
            kind.is_confidence_baseline(),
            "use from_two_head for the AppealNet score"
        );
        let logits = classifier_logits(little, images, batch_size);
        let probs = SoftmaxCrossEntropy::new().probabilities(&logits);
        let scores = confidence_scores(&probs, kind);
        let little_correct: Vec<bool> = logits
            .argmax_rows()
            .iter()
            .zip(labels.iter())
            .map(|(p, y)| p == y)
            .collect();
        let big_correct = classifier_correctness(big, images, labels, batch_size);
        Self {
            scores,
            little_correct,
            big_correct,
            hard_flags: hard_flags.to_vec(),
            little_flops: little.total_flops(),
            big_flops: big.total_flops(),
            score_kind: kind,
        }
    }
}

/// Runs a classifier over a dataset in batches and returns the stacked logits.
pub(crate) fn classifier_logits(
    model: &mut ClassifierParts,
    images: &Tensor,
    batch_size: usize,
) -> Tensor {
    assert!(batch_size > 0, "batch_size must be positive");
    let n = images.shape()[0];
    let mut rows = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let batch = images.select_rows(&idx);
        let logits = model.forward(&batch, false);
        for i in 0..(end - start) {
            rows.push(logits.row(i));
        }
        start = end;
    }
    Tensor::stack_rows(&rows)
}

fn classifier_correctness(
    model: &mut ClassifierParts,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Vec<bool> {
    let logits = classifier_logits(model, images, batch_size);
    logits
        .argmax_rows()
        .iter()
        .zip(labels.iter())
        .map(|(p, y)| p == y)
        .collect()
}

/// The decision made for one input at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Predicted class label.
    pub label: usize,
    /// Predictor score `q(1|x)` for this input.
    pub score: f32,
    /// Whether the input was offloaded to the cloud.
    pub offloaded: bool,
    /// Cost charged for this input.
    pub cost: InferenceCost,
}

/// A deployable edge/cloud collaborative system: the jointly trained two-head
/// little network on the edge, the big network in the cloud, a threshold δ
/// and a hardware cost model.
pub struct CollaborativeSystem {
    little: TwoHeadNet,
    big: ClassifierParts,
    threshold: f64,
    hardware: SystemModel,
    input_bytes: u64,
}

impl std::fmt::Debug for CollaborativeSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CollaborativeSystem(little={:?}, threshold={}, hardware={:?})",
            self.little, self.threshold, self.hardware
        )
    }
}

impl CollaborativeSystem {
    /// Assembles a collaborative system.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(little: TwoHeadNet, big: ClassifierParts, threshold: f64, hardware: SystemModel) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        let input_bytes = (little.spec().input_shape.iter().product::<usize>() * 4) as u64;
        Self {
            little,
            big,
            threshold,
            hardware,
            input_bytes,
        }
    }

    /// The routing threshold δ.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Updates the routing threshold δ.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn set_threshold(&mut self, threshold: f64) {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        self.threshold = threshold;
    }

    /// Classifies a batch of images, routing each input per Eq. 1.
    pub fn classify(&mut self, images: &Tensor) -> Vec<RoutingOutcome> {
        let n = images.shape()[0];
        let out = self.little.forward(images, false);
        let little_preds = out.predictions();
        // Find which inputs must be appealed to the cloud.
        let offload_idx: Vec<usize> = (0..n)
            .filter(|&i| (out.q[i] as f64) < self.threshold)
            .collect();
        let big_preds: Vec<usize> = if offload_idx.is_empty() {
            Vec::new()
        } else {
            let batch = images.select_rows(&offload_idx);
            self.big.forward(&batch, false).argmax_rows()
        };
        let edge_cost = self.hardware.edge_only_cost(self.little.flops());
        let offload_cost = self.hardware.offload_cost(
            self.little.flops(),
            self.big.total_flops(),
            self.input_bytes,
        );
        let mut big_iter = big_preds.into_iter();
        (0..n)
            .map(|i| {
                let offloaded = (out.q[i] as f64) < self.threshold;
                RoutingOutcome {
                    label: if offloaded {
                        big_iter.next().expect("one big prediction per offloaded input")
                    } else {
                        little_preds[i]
                    },
                    score: out.q[i],
                    offloaded,
                    cost: if offloaded { offload_cost } else { edge_cost },
                }
            })
            .collect()
    }

    /// Aggregate cost of a set of routing outcomes.
    pub fn total_cost(outcomes: &[RoutingOutcome]) -> InferenceCost {
        outcomes
            .iter()
            .fold(InferenceCost::zero(), |acc, o| acc.add(&o.cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_models::{ModelFamily, ModelSpec};
    use appeal_tensor::SeededRng;

    fn synthetic_artifacts() -> EvaluationArtifacts {
        // Scores 0.0..1.0 over 10 samples; little correct on high-score ones.
        EvaluationArtifacts {
            scores: (0..10).map(|i| i as f32 / 10.0).collect(),
            little_correct: (0..10).map(|i| i >= 4).collect(),
            big_correct: vec![true; 10],
            hard_flags: (0..10).map(|i| i < 4).collect(),
            little_flops: 100,
            big_flops: 1000,
            score_kind: ScoreKind::AppealNetQ,
        }
    }

    #[test]
    fn threshold_zero_keeps_everything_on_edge() {
        let a = synthetic_artifacts();
        let m = a.at_threshold(0.0);
        assert_eq!(m.skipping_rate, 1.0);
        assert_eq!(m.overall_accuracy, 0.6);
    }

    #[test]
    fn high_threshold_offloads_everything() {
        let a = synthetic_artifacts();
        let m = a.at_threshold(2.0);
        assert_eq!(m.skipping_rate, 0.0);
        assert_eq!(m.overall_accuracy, 1.0);
        assert_eq!(m.overall_flops, 1100.0);
    }

    #[test]
    fn perfect_scores_give_perfect_accuracy_at_intermediate_sr() {
        // Keeping the 60% of inputs the little model gets right and
        // offloading the rest yields 100% accuracy here.
        let a = synthetic_artifacts();
        let m = a.at_skipping_rate(0.6);
        assert!((m.skipping_rate - 0.6).abs() < 1e-9);
        assert_eq!(m.overall_accuracy, 1.0);
    }

    #[test]
    fn threshold_for_sr_hits_requested_rate() {
        let a = synthetic_artifacts();
        for target in [0.0, 0.3, 0.5, 0.8, 1.0] {
            let m = a.at_skipping_rate(target);
            assert!(
                (m.skipping_rate - target).abs() <= 0.1 + 1e-9,
                "target {target} got {}",
                m.skipping_rate
            );
        }
    }

    #[test]
    fn candidate_thresholds_cover_all_routings() {
        let a = synthetic_artifacts();
        let thresholds = a.candidate_thresholds();
        assert_eq!(thresholds.len(), 11);
        let srs: Vec<f64> = thresholds.iter().map(|&t| a.at_threshold(t).skipping_rate).collect();
        assert!(srs.contains(&1.0));
        assert!(srs.contains(&0.0));
    }

    fn tiny_models(classes: usize) -> (TwoHeadNet, ClassifierParts) {
        let mut rng = SeededRng::new(3);
        let little =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], classes).build(&mut rng);
        let big = ModelSpec::big([3, 12, 12], classes).build(&mut rng);
        (TwoHeadNet::from_parts(little, &mut rng), big)
    }

    #[test]
    fn artifacts_from_models_have_consistent_lengths() {
        let (mut net, mut big) = tiny_models(4);
        let mut rng = SeededRng::new(4);
        let images = Tensor::randn(&[12, 3, 12, 12], &mut rng);
        let labels: Vec<usize> = (0..12).map(|i| i % 4).collect();
        let hard = vec![false; 12];
        let art = EvaluationArtifacts::from_two_head(&mut net, &mut big, &images, &labels, &hard, 5);
        assert_eq!(art.len(), 12);
        assert!(!art.is_empty());
        assert!(art.little_flops < art.big_flops);
        assert_eq!(art.score_kind, ScoreKind::AppealNetQ);
    }

    #[test]
    fn baseline_artifacts_use_requested_score() {
        let mut rng = SeededRng::new(5);
        let mut little =
            ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let mut big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        let images = Tensor::randn(&[8, 3, 12, 12], &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let hard = vec![false; 8];
        let art = EvaluationArtifacts::from_confidence_baseline(
            &mut little,
            &mut big,
            &images,
            &labels,
            &hard,
            ScoreKind::ScoreMargin,
            4,
        );
        assert_eq!(art.score_kind, ScoreKind::ScoreMargin);
        assert!(art.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn collaborative_system_routes_and_costs() {
        let (net, big) = tiny_models(4);
        let mut system = CollaborativeSystem::new(net, big, 0.5, SystemModel::typical());
        let mut rng = SeededRng::new(6);
        let images = Tensor::randn(&[6, 3, 12, 12], &mut rng);
        let outcomes = system.classify(&images);
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            assert!(o.label < 4);
            assert_eq!(o.offloaded, (o.score as f64) < 0.5);
        }
        let total = CollaborativeSystem::total_cost(&outcomes);
        assert!(total.flops > 0);
        // Threshold 0 keeps everything on the edge and must be cheaper.
        system.set_threshold(0.0);
        let cheap = CollaborativeSystem::total_cost(&system.classify(&images));
        assert!(cheap.energy_mj <= total.energy_mj + 1e-9);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn rejects_bad_threshold() {
        let (net, big) = tiny_models(2);
        let _ = CollaborativeSystem::new(net, big, 1.5, SystemModel::typical());
    }
}
