//! # appealnet-core
//!
//! A Rust reproduction of **AppealNet** (Li et al., DAC 2021): an edge/cloud
//! collaborative architecture for DNN inference that explicitly models
//! inference difficulty with a two-head little network and jointly optimizes
//! the approximator and the offloading predictor.
//!
//! ## The idea
//!
//! A little network runs on the edge device. Its backbone feeds two heads:
//!
//! * the **approximator head** produces the class distribution `p(y|x)`;
//! * the **predictor head** (one fully-connected layer + sigmoid) produces
//!   `q(1|x)`, the probability that the little network's answer can be
//!   trusted for this input.
//!
//! At deployment (the paper's Eq. 1) the input is handled on the edge when
//! `q(1|x) ≥ δ` and *appealed* to the big cloud network otherwise. Training
//! minimizes the joint objective of Eq. 9 (white-box cloud model) or Eq. 10
//! (black-box / oracle cloud model):
//!
//! ```text
//! L = q·ℓ(f1(x), y) + (1 − q)·ℓ(f0(x), y) + β·(−log q)
//! ```
//!
//! ## Serving
//!
//! The documented runtime entry point is the [`serve`] subsystem: an
//! [`Engine`] built via [`Engine::builder`] from an edge
//! [`Scorer`] (the two-head network, or a confidence
//! baseline), the big cloud model, a pluggable
//! [`RoutingPolicy`] ([`ThresholdPolicy`] for Eq. 1,
//! [`BudgetPolicy`] for bounded cloud spend, [`CalibratedPolicy`] for a
//! target skipping rate or accuracy) and a hardware cost model. The engine
//! serves single [`InferenceRequest`]s by
//! transparently micro-batching them through the sharded parallel path, and
//! reports live [`EngineStats`]. Invalid inputs surface
//! as typed [`CoreError`]s, never as panics.
//!
//! ## Crate layout
//!
//! * [`serve`] — the policy-driven serving engine (the runtime surface).
//! * [`error`] — the [`CoreError`] type all public APIs report through.
//! * [`two_head`] — the two-head little network.
//! * [`loss`] — the joint training objective.
//! * [`training`] — Algorithm 1 (joint training) and plain classifier training.
//! * [`scores`] — AppealNet's `q` score and the confidence baselines
//!   (MSP, score margin, entropy).
//! * [`system`] — precomputed routing artifacts and the legacy
//!   fixed-threshold wrapper over the engine.
//! * [`metrics`] — SR / AR / overall accuracy / AccI / overall cost (Eq. 11–15).
//! * [`tuning`] — threshold selection for target skipping rates or accuracy.
//! * [`sweep`] — skipping-rate sweeps across routing methods.
//! * [`experiments`] — ready-made harnesses for every figure and table in the
//!   paper's evaluation section.
//!
//! # Example
//!
//! Train a system, then serve it:
//!
//! ```no_run
//! use appealnet_core::prelude::*;
//! use appeal_dataset::prelude::*;
//! use appeal_models::prelude::*;
//!
//! # fn main() -> Result<(), CoreError> {
//! let ctx = ExperimentContext::new(Fidelity::Smoke, 42);
//! let prepared = PreparedExperiment::prepare(
//!     DatasetPreset::Cifar10Like,
//!     ModelFamily::MobileNetLike,
//!     CloudMode::WhiteBox,
//!     &ctx,
//! );
//! // Offline: inspect the accuracy/cost trade-off on the test split.
//! let artifacts = prepared.artifacts(ScoreKind::AppealNetQ);
//! let metrics = artifacts.at_skipping_rate(0.9)?;
//! println!("overall accuracy at SR=90%: {:.2}%", 100.0 * metrics.overall_accuracy);
//! // Online: deploy the trained models behind a calibrated policy.
//! let policy = CalibratedPolicy::for_skipping_rate(artifacts, 0.9)?;
//! let mut engine = Engine::builder()
//!     .appealnet(prepared.models.appealnet)
//!     .big(prepared.models.big)
//!     .policy(policy)
//!     .build()?;
//! # let frame = appeal_tensor::Tensor::zeros(&[3, 12, 12]);
//! engine.submit(InferenceRequest::new(0, frame))?;
//! let answers = engine.flush()?;
//! println!("served {} requests at {:.0} req/s",
//!     engine.stats().requests, engine.stats().throughput_rps());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod experiments;
pub mod loss;
pub mod metrics;
pub mod parallel;
pub mod scores;
pub mod serve;
pub mod server;
pub mod sweep;
pub mod system;
pub mod training;
pub mod tuning;
pub mod two_head;

pub use error::{CoreError, CoreResult};
pub use loss::{AppealLoss, CloudMode};
pub use metrics::RoutedMetrics;
pub use parallel::ChunkPolicy;
pub use scores::ScoreKind;
pub use serve::{
    BudgetPolicy, CalibratedPolicy, Engine, EngineBuilder, EngineStats, InferenceRequest,
    InferenceResponse, Route, RoutingPolicy, Scorer, ThresholdPolicy,
};
pub use server::{MicroBatcher, Server, ServerConfig, ServerHandle, ServerStats, ShedConfig};
pub use system::{CollaborativeSystem, EvaluationArtifacts, RoutingDivergence};
pub use training::{TrainerConfig, TrainingReport};
pub use two_head::{TwoHeadNet, TwoHeadOutput};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::error::{CoreError, CoreResult};
    pub use crate::experiments::{CloudModeExt, ExperimentContext, PreparedExperiment};
    pub use crate::loss::{AppealLoss, CloudMode};
    pub use crate::metrics::RoutedMetrics;
    pub use crate::parallel::ChunkPolicy;
    pub use crate::scores::ScoreKind;
    pub use crate::serve::{
        BudgetPolicy, CalibratedPolicy, ConfidenceScorer, Engine, EngineBuilder, EngineStats,
        InferenceRequest, InferenceResponse, QScorer, Route, RoutingContext, RoutingPolicy, Scorer,
        ThresholdPolicy,
    };
    pub use crate::server::{
        MicroBatcher, ServedResponse, Server, ServerConfig, ServerHandle, ServerStats, ShedConfig,
        Ticket,
    };
    pub use crate::sweep::{MethodSeries, SweepResult};
    pub use crate::system::{CollaborativeSystem, EvaluationArtifacts, RoutingDivergence};
    pub use crate::training::{TrainerConfig, TrainingReport};
    pub use crate::tuning::ThresholdChoice;
    pub use crate::two_head::{TwoHeadNet, TwoHeadOutput};
}
