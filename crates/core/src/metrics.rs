//! Evaluation metrics of the edge/cloud collaborative system
//! (the paper's Eq. 11 — Eq. 15).

use serde::{Deserialize, Serialize};

/// Metrics of the collaborative system at a particular routing threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutedMetrics {
    /// Skipping rate SR (Eq. 11): fraction of inputs handled on the edge.
    pub skipping_rate: f64,
    /// Appealing rate AR (Eq. 12): fraction of inputs offloaded to the cloud.
    pub appealing_rate: f64,
    /// Overall accuracy of the collaborative system (Eq. 13).
    pub overall_accuracy: f64,
    /// Stand-alone accuracy of the little network on the same evaluation set.
    pub little_accuracy: f64,
    /// Stand-alone accuracy of the big network on the same evaluation set.
    pub big_accuracy: f64,
    /// Expected per-input computational cost in FLOPs (Eq. 15).
    pub overall_flops: f64,
    /// The threshold δ that produced this routing.
    pub threshold: f64,
}

impl RoutedMetrics {
    /// Relative accuracy improvement AccI (Eq. 14): how much of the
    /// little-to-big accuracy gap the collaborative system recovers.
    ///
    /// Returns `None` when the big and little networks have identical
    /// accuracy (the denominator of Eq. 14 vanishes).
    pub fn accuracy_improvement(&self) -> Option<f64> {
        let gap = self.big_accuracy - self.little_accuracy;
        if gap.abs() < 1e-9 {
            None
        } else {
            Some((self.overall_accuracy - self.little_accuracy) / gap)
        }
    }

    /// Overall cost in MFLOPs (the unit of the paper's Table I).
    pub fn overall_mflops(&self) -> f64 {
        self.overall_flops / 1e6
    }
}

/// Computes Eq. 11 — Eq. 15 from per-sample routing decisions.
///
/// `keep_on_edge[i]` is the predictor decision (`q(1|x_i) ≥ δ`),
/// `little_correct[i]` / `big_correct[i]` record whether each network
/// classifies sample `i` correctly, and `little_flops` / `big_flops` are the
/// per-inference costs `cost(f1, q)` and `cost(f0, q)` of Eq. 5.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn routed_metrics(
    keep_on_edge: &[bool],
    little_correct: &[bool],
    big_correct: &[bool],
    little_flops: u64,
    big_flops: u64,
    threshold: f64,
) -> RoutedMetrics {
    let n = keep_on_edge.len();
    assert!(n > 0, "cannot compute metrics over an empty evaluation set");
    assert_eq!(little_correct.len(), n, "little_correct length mismatch");
    assert_eq!(big_correct.len(), n, "big_correct length mismatch");

    let kept = keep_on_edge.iter().filter(|&&k| k).count();
    let sr = kept as f64 / n as f64;
    let correct = keep_on_edge
        .iter()
        .zip(little_correct.iter().zip(big_correct.iter()))
        .filter(|(&k, (&lc, &bc))| if k { lc } else { bc })
        .count();
    let little_acc = little_correct.iter().filter(|&&c| c).count() as f64 / n as f64;
    let big_acc = big_correct.iter().filter(|&&c| c).count() as f64 / n as f64;
    // Eq. 15: SR·cost(f1,q) + (1 − SR)·cost(f0,q), where the offload cost
    // includes having already run the little network on the edge.
    let overall_flops = sr * little_flops as f64 + (1.0 - sr) * (little_flops + big_flops) as f64;
    RoutedMetrics {
        skipping_rate: sr,
        appealing_rate: 1.0 - sr,
        overall_accuracy: correct as f64 / n as f64,
        little_accuracy: little_acc,
        big_accuracy: big_acc,
        overall_flops,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_edge_routing_matches_little_accuracy() {
        let keep = vec![true; 4];
        let little = vec![true, false, true, true];
        let big = vec![true, true, true, true];
        let m = routed_metrics(&keep, &little, &big, 100, 1000, 0.5);
        assert_eq!(m.skipping_rate, 1.0);
        assert_eq!(m.appealing_rate, 0.0);
        assert_eq!(m.overall_accuracy, 0.75);
        assert_eq!(m.overall_flops, 100.0);
    }

    #[test]
    fn all_cloud_routing_matches_big_accuracy_and_cost() {
        let keep = vec![false; 4];
        let little = vec![false, false, false, false];
        let big = vec![true, true, false, true];
        let m = routed_metrics(&keep, &little, &big, 100, 1000, 0.9);
        assert_eq!(m.skipping_rate, 0.0);
        assert_eq!(m.overall_accuracy, 0.75);
        // Offloaded inputs still paid for the little network on the edge.
        assert_eq!(m.overall_flops, 1100.0);
    }

    #[test]
    fn mixed_routing_uses_the_right_model_per_sample() {
        // Sample 0 kept (little wrong), sample 1 offloaded (big right).
        let keep = vec![true, false];
        let little = vec![false, false];
        let big = vec![false, true];
        let m = routed_metrics(&keep, &little, &big, 10, 100, 0.5);
        assert_eq!(m.overall_accuracy, 0.5);
        assert_eq!(m.skipping_rate, 0.5);
        assert_eq!(m.overall_flops, 0.5 * 10.0 + 0.5 * 110.0);
    }

    #[test]
    fn acci_recovers_fraction_of_gap() {
        let m = RoutedMetrics {
            skipping_rate: 0.9,
            appealing_rate: 0.1,
            overall_accuracy: 0.95,
            little_accuracy: 0.90,
            big_accuracy: 1.00,
            overall_flops: 0.0,
            threshold: 0.5,
        };
        assert!((m.accuracy_improvement().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn acci_can_exceed_one_when_system_beats_big_model() {
        // The paper observes "accuracy boosting": the collaborative system can
        // beat the stand-alone big network.
        let m = RoutedMetrics {
            skipping_rate: 0.9,
            appealing_rate: 0.1,
            overall_accuracy: 0.99,
            little_accuracy: 0.90,
            big_accuracy: 0.95,
            overall_flops: 0.0,
            threshold: 0.5,
        };
        assert!(m.accuracy_improvement().unwrap() > 1.0);
    }

    #[test]
    fn acci_none_when_gap_vanishes() {
        let m = RoutedMetrics {
            skipping_rate: 1.0,
            appealing_rate: 0.0,
            overall_accuracy: 0.9,
            little_accuracy: 0.9,
            big_accuracy: 0.9,
            overall_flops: 0.0,
            threshold: 0.5,
        };
        assert!(m.accuracy_improvement().is_none());
    }

    #[test]
    fn mflops_conversion() {
        let m = RoutedMetrics {
            skipping_rate: 1.0,
            appealing_rate: 0.0,
            overall_accuracy: 1.0,
            little_accuracy: 1.0,
            big_accuracy: 1.0,
            overall_flops: 2_500_000.0,
            threshold: 0.5,
        };
        assert!((m.overall_mflops() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sr_plus_ar_is_one() {
        let keep = vec![true, false, true];
        let ok = vec![true, true, true];
        let m = routed_metrics(&keep, &ok, &ok, 1, 2, 0.3);
        assert!((m.skipping_rate + m.appealing_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty evaluation set")]
    fn rejects_empty_input() {
        let _ = routed_metrics(&[], &[], &[], 1, 2, 0.5);
    }

    /// Hand-computed 4-sample fixture exercising Eq. 11 — Eq. 15 end to end,
    /// including the δ-threshold boundary of Eq. 1 (`q(1|x) ≥ δ` stays on the
    /// edge, so a score exactly equal to δ is *not* offloaded).
    mod hand_computed_fixture {
        use super::super::*;
        use crate::scores::ScoreKind;
        use crate::system::EvaluationArtifacts;

        /// scores [0.9, 0.6, 0.4, 0.1], little correct on samples {0, 3},
        /// big correct on samples {0, 1, 2}; little costs 100, big 1000.
        fn fixture() -> EvaluationArtifacts {
            EvaluationArtifacts {
                scores: vec![0.9, 0.6, 0.4, 0.1],
                little_correct: vec![true, false, false, true],
                big_correct: vec![true, true, true, false],
                hard_flags: vec![false, false, true, true],
                little_flops: 100,
                big_flops: 1000,
                score_kind: ScoreKind::AppealNetQ,
            }
        }

        #[test]
        fn eq1_score_equal_to_delta_stays_on_edge() {
            // δ = 0.6: samples 0 (0.9) and 1 (0.6, the boundary) stay on the
            // edge; samples 2 and 3 are appealed.
            let m = fixture().at_threshold(0.6).unwrap();
            // Eq. 11: SR = 2/4.
            assert_eq!(m.skipping_rate, 0.5);
            // Eq. 12: AR = 1 − SR = 2/4.
            assert_eq!(m.appealing_rate, 0.5);
            // Eq. 13: kept {0: little right, 1: little wrong},
            //         appealed {2: big right, 3: big wrong} → 2/4.
            assert_eq!(m.overall_accuracy, 0.5);
            // Eq. 15: 0.5·100 + 0.5·(100 + 1000) = 600 FLOPs per input.
            assert_eq!(m.overall_flops, 600.0);
            // Eq. 14: overall equals little accuracy → AccI = 0.
            assert_eq!(m.little_accuracy, 0.5);
            assert_eq!(m.big_accuracy, 0.75);
            assert_eq!(m.accuracy_improvement(), Some(0.0));
        }

        #[test]
        fn eq1_delta_zero_keeps_all_scores_on_edge() {
            // Every score is ≥ 0, so δ = 0 keeps all four on the edge.
            let m = fixture().at_threshold(0.0).unwrap();
            assert_eq!(m.skipping_rate, 1.0);
            assert_eq!(m.overall_accuracy, 0.5); // little accuracy
            assert_eq!(m.overall_flops, 100.0); // Eq. 15 collapses to cost(f1)
        }

        #[test]
        fn eq1_delta_above_max_appeals_everything() {
            let m = fixture()
                .at_threshold(0.9 + f32::EPSILON as f64 * 2.0)
                .unwrap();
            assert_eq!(m.skipping_rate, 0.0);
            assert_eq!(m.overall_accuracy, 0.75); // big accuracy
            assert_eq!(m.overall_flops, 1100.0); // edge + cloud on every input
                                                 // Eq. 14: full gap recovered.
            assert_eq!(m.accuracy_improvement(), Some(1.0));
        }

        #[test]
        fn eq14_partial_gap_recovery() {
            // δ = 0.5 keeps {0, 1} on the edge (same routing as δ = 0.6 — no
            // score lies in (0.5, 0.6)), but verify AccI via routed_metrics
            // with a routing that recovers half the gap: keep {0, 1, 3}.
            let keep = vec![true, true, false, true];
            let m = routed_metrics(
                &keep,
                &[true, false, false, true],
                &[true, true, true, false],
                100,
                1000,
                0.2,
            );
            // kept: 0 right, 1 wrong, 3 right; appealed: 2 big right → 3/4.
            assert_eq!(m.overall_accuracy, 0.75);
            // AccI = (0.75 − 0.5) / (0.75 − 0.5) = 1.0.
            assert_eq!(m.accuracy_improvement(), Some(1.0));
            // Eq. 15 with SR = 3/4: 0.75·100 + 0.25·1100 = 350.
            assert_eq!(m.skipping_rate, 0.75);
            assert_eq!(m.overall_flops, 350.0);
        }

        #[test]
        fn eq11_eq12_sum_to_one_on_fixture() {
            for delta in [0.0, 0.1, 0.4, 0.6, 0.9, 1.0] {
                let m = fixture().at_threshold(delta).unwrap();
                assert!((m.skipping_rate + m.appealing_rate - 1.0).abs() < 1e-12);
            }
        }
    }
}
