//! The AppealNet joint training objective (paper Eq. 9 and Eq. 10).
//!
//! For a batch of samples with little-network logits, predictor outputs
//! `q ∈ (0, 1)`, ground-truth labels and (in the white-box case) the big
//! network's per-sample cross-entropy losses, the objective is
//!
//! ```text
//! L = (1/M) Σ_i [ q_i·ℓ(f1(x_i), y_i) + (1 − q_i)·ℓ(f0(x_i), y_i) + β·(−log q_i) ]
//! ```
//!
//! In the black-box (oracle) setting `ℓ(f0(x), y) = 0`, which recovers Eq. 10.

use appeal_tensor::loss::SoftmaxCrossEntropy;
use appeal_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// How the big cloud network is treated during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CloudMode {
    /// The big network's per-sample losses are available (paper Section IV-A).
    WhiteBox,
    /// The big network is an oracle: its loss term is zero (paper Section IV-B).
    BlackBox,
}

impl std::fmt::Display for CloudMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudMode::WhiteBox => write!(f, "white-box"),
            CloudMode::BlackBox => write!(f, "black-box"),
        }
    }
}

/// Value and gradients of the joint objective for one batch.
#[derive(Debug, Clone)]
pub struct AppealLossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Mean of the prediction term `q·ℓ1 + (1−q)·ℓ0`.
    pub prediction_term: f32,
    /// Mean of the cost term `−log q` (before scaling by β).
    pub cost_term: f32,
    /// Gradient with respect to the approximator logits, `[n, k]`.
    pub grad_logits: Tensor,
    /// Gradient with respect to the predictor output `q`, `[n, 1]`.
    pub grad_q: Tensor,
}

/// The AppealNet joint loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppealLoss {
    beta: f32,
    mode: CloudMode,
}

impl AppealLoss {
    /// Creates the loss with trade-off weight `beta` (the paper's β).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative.
    pub fn new(beta: f32, mode: CloudMode) -> Self {
        assert!(beta >= 0.0, "beta must be non-negative");
        Self { beta, mode }
    }

    /// The configured β.
    pub fn beta(&self) -> f32 {
        self.beta
    }

    /// The configured cloud mode.
    pub fn mode(&self) -> CloudMode {
        self.mode
    }

    /// Computes the loss and its gradients for one batch.
    ///
    /// `big_losses` must hold the big network's per-sample cross-entropy for
    /// each sample in the batch when the mode is [`CloudMode::WhiteBox`]; it
    /// is ignored (and may be empty) in [`CloudMode::BlackBox`].
    ///
    /// # Panics
    ///
    /// Panics if the batch sizes of `logits`, `q`, `labels` (and `big_losses`
    /// in white-box mode) disagree.
    pub fn compute(
        &self,
        logits: &Tensor,
        q: &[f32],
        labels: &[usize],
        big_losses: &[f32],
    ) -> AppealLossOutput {
        let n = labels.len();
        assert_eq!(logits.shape()[0], n, "logit batch size mismatch");
        assert_eq!(q.len(), n, "q batch size mismatch");
        if self.mode == CloudMode::WhiteBox {
            assert_eq!(big_losses.len(), n, "big-loss batch size mismatch");
        }

        let ce = SoftmaxCrossEntropy::new();
        let little_losses = ce.per_sample(logits, labels);

        // Clamp q away from 0/1 so log q and 1/q stay finite.
        let q_safe: Vec<f32> = q.iter().map(|&v| v.clamp(1e-6, 1.0 - 1e-6)).collect();

        let mut prediction_term = 0.0f32;
        let mut cost_term = 0.0f32;
        let mut grad_q = Tensor::zeros(&[n, 1]);
        for i in 0..n {
            let l1 = little_losses[i];
            let l0 = match self.mode {
                CloudMode::WhiteBox => big_losses[i],
                CloudMode::BlackBox => 0.0,
            };
            let qi = q_safe[i];
            prediction_term += qi * l1 + (1.0 - qi) * l0;
            cost_term += -qi.ln();
            // dL/dq_i = (ℓ1 − ℓ0 − β / q_i) / n
            grad_q.data_mut()[i] = (l1 - l0 - self.beta / qi) / n as f32;
        }
        prediction_term /= n as f32;
        cost_term /= n as f32;

        // dL/dlogits_i = q_i · dCE_i/dlogits_i / n  (grad_weighted already divides by n).
        let grad_logits = ce.grad_weighted(logits, labels, &q_safe);

        AppealLossOutput {
            loss: prediction_term + self.beta * cost_term,
            prediction_term,
            cost_term,
            grad_logits,
            grad_q,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_tensor::SeededRng;

    fn batch(n: usize, k: usize, seed: u64) -> (Tensor, Vec<usize>, Vec<f32>, Vec<f32>) {
        let mut rng = SeededRng::new(seed);
        let logits = Tensor::randn(&[n, k], &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();
        let q: Vec<f32> = (0..n).map(|_| rng.uniform(0.05, 0.95)).collect();
        let big: Vec<f32> = (0..n).map(|_| rng.uniform(0.0, 0.5)).collect();
        (logits, labels, q, big)
    }

    #[test]
    fn blackbox_ignores_big_losses() {
        let (logits, labels, q, big) = batch(6, 4, 1);
        let loss_bb = AppealLoss::new(0.1, CloudMode::BlackBox).compute(&logits, &q, &labels, &[]);
        let loss_bb2 =
            AppealLoss::new(0.1, CloudMode::BlackBox).compute(&logits, &q, &labels, &big);
        assert!((loss_bb.loss - loss_bb2.loss).abs() < 1e-7);
    }

    #[test]
    fn whitebox_loss_decreases_when_big_model_is_better() {
        let (logits, labels, q, _) = batch(6, 4, 2);
        let loss_good_cloud =
            AppealLoss::new(0.1, CloudMode::WhiteBox).compute(&logits, &q, &labels, &[0.0; 6]);
        let loss_bad_cloud =
            AppealLoss::new(0.1, CloudMode::WhiteBox).compute(&logits, &q, &labels, &[5.0; 6]);
        assert!(loss_good_cloud.loss < loss_bad_cloud.loss);
    }

    #[test]
    fn beta_zero_removes_cost_term_from_loss() {
        let (logits, labels, q, big) = batch(5, 3, 3);
        let out = AppealLoss::new(0.0, CloudMode::WhiteBox).compute(&logits, &q, &labels, &big);
        assert!((out.loss - out.prediction_term).abs() < 1e-6);
    }

    #[test]
    fn larger_beta_pushes_q_upwards() {
        // The gradient on q should become more negative (push q up) as beta grows.
        let (logits, labels, q, big) = batch(5, 3, 4);
        let small = AppealLoss::new(0.01, CloudMode::WhiteBox).compute(&logits, &q, &labels, &big);
        let large = AppealLoss::new(1.0, CloudMode::WhiteBox).compute(&logits, &q, &labels, &big);
        for i in 0..5 {
            assert!(large.grad_q.data()[i] < small.grad_q.data()[i]);
        }
    }

    #[test]
    fn grad_q_matches_finite_difference() {
        let (logits, labels, mut q, big) = batch(4, 3, 5);
        let loss_fn = AppealLoss::new(0.2, CloudMode::WhiteBox);
        let out = loss_fn.compute(&logits, &q, &labels, &big);
        let eps = 1e-3;
        for i in 0..q.len() {
            let orig = q[i];
            q[i] = orig + eps;
            let plus = loss_fn.compute(&logits, &q, &labels, &big).loss;
            q[i] = orig - eps;
            let minus = loss_fn.compute(&logits, &q, &labels, &big).loss;
            q[i] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (out.grad_q.data()[i] - numeric).abs() < 1e-3,
                "sample {i}: analytic {} numeric {numeric}",
                out.grad_q.data()[i]
            );
        }
    }

    #[test]
    fn grad_logits_matches_finite_difference() {
        let (mut logits, labels, q, big) = batch(3, 4, 6);
        let loss_fn = AppealLoss::new(0.2, CloudMode::WhiteBox);
        let out = loss_fn.compute(&logits, &q, &labels, &big);
        let eps = 1e-2;
        for idx in 0..logits.len() {
            let orig = logits.data()[idx];
            logits.data_mut()[idx] = orig + eps;
            let plus = loss_fn.compute(&logits, &q, &labels, &big).loss;
            logits.data_mut()[idx] = orig - eps;
            let minus = loss_fn.compute(&logits, &q, &labels, &big).loss;
            logits.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (out.grad_logits.data()[idx] - numeric).abs() < 2e-3,
                "idx {idx}: analytic {} numeric {numeric}",
                out.grad_logits.data()[idx]
            );
        }
    }

    #[test]
    fn extreme_q_values_stay_finite() {
        let (logits, labels, _, big) = batch(4, 3, 7);
        let q = vec![0.0, 1.0, 1e-9, 1.0 - 1e-9];
        let out = AppealLoss::new(0.5, CloudMode::WhiteBox).compute(&logits, &q, &labels, &big);
        assert!(out.loss.is_finite());
        assert!(out.grad_q.all_finite());
    }

    #[test]
    #[should_panic(expected = "beta must be non-negative")]
    fn rejects_negative_beta() {
        let _ = AppealLoss::new(-0.1, CloudMode::WhiteBox);
    }

    #[test]
    fn accessors() {
        let l = AppealLoss::new(0.3, CloudMode::BlackBox);
        assert_eq!(l.beta(), 0.3);
        assert_eq!(l.mode(), CloudMode::BlackBox);
        assert_eq!(CloudMode::WhiteBox.to_string(), "white-box");
    }
}
