//! Threshold selection.
//!
//! Table I and Table II of the paper fix an accuracy-improvement target
//! (AccI ∈ {50%, 75%, 90%, 95%}) and then tune the routing threshold δ to the
//! cheapest operating point that still meets the target. This module
//! implements that search over precomputed [`EvaluationArtifacts`].
//!
//! All searches validate their inputs up front ([`CoreError::EmptyArtifacts`]
//! on empty artifacts, [`CoreError::InvalidScore`] on NaN scores) and report
//! an unreachable target as `Ok(None)` rather than an error.

use crate::error::{CoreError, CoreResult};
use crate::metrics::RoutedMetrics;
use crate::system::EvaluationArtifacts;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Evaluates the metrics of every candidate threshold, in parallel for large
/// evaluation sets. The scan over all candidates is the O(n²) hot path of
/// Table I / Table II tuning; results come back in candidate order, so the
/// downstream arg-min selection is deterministic. The caller has already
/// validated the artifacts, so the per-candidate scans are infallible.
fn candidate_metrics(artifacts: &EvaluationArtifacts) -> CoreResult<Vec<(f64, RoutedMetrics)>> {
    Ok(artifacts
        .candidate_thresholds()?
        .into_par_iter()
        .with_min_len(64)
        .map(|t| (t, artifacts.metrics_at(t)))
        .collect())
}

/// A chosen threshold and the metrics it achieves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdChoice {
    /// The selected threshold δ.
    pub threshold: f64,
    /// Metrics of the collaborative system at that threshold.
    pub metrics: RoutedMetrics,
}

/// Finds the cheapest threshold (highest skipping rate) whose relative
/// accuracy improvement (Eq. 14) is at least `target_acci`.
///
/// Returns `Ok(None)` if no threshold reaches the target, or if the
/// little/big accuracy gap vanishes so AccI is undefined; errors on empty
/// artifacts or NaN scores.
pub fn min_cost_for_acci(
    artifacts: &EvaluationArtifacts,
    target_acci: f64,
) -> CoreResult<Option<ThresholdChoice>> {
    artifacts.validate()?;
    // AccI (Eq. 14) is undefined exactly when the little/big accuracy gap
    // vanishes, which is threshold-independent — check it once up front
    // instead of after the full O(n²) candidate scan.
    let n = artifacts.len() as f64;
    let little_acc = artifacts.little_correct.iter().filter(|&&c| c).count() as f64 / n;
    let big_acc = artifacts.big_correct.iter().filter(|&&c| c).count() as f64 / n;
    if (big_acc - little_acc).abs() < 1e-9 {
        return Ok(None);
    }
    let mut best: Option<ThresholdChoice> = None;
    for (t, metrics) in candidate_metrics(artifacts)? {
        let acci = match metrics.accuracy_improvement() {
            Some(acci) => acci,
            None => return Ok(None),
        };
        if acci + 1e-9 >= target_acci {
            let better = match &best {
                None => true,
                Some(b) => metrics.overall_flops < b.metrics.overall_flops,
            };
            if better {
                best = Some(ThresholdChoice {
                    threshold: t,
                    metrics,
                });
            }
        }
    }
    Ok(best)
}

/// Finds the threshold whose overall accuracy is at least `target_accuracy`
/// at minimum cost. Returns `Ok(None)` if the target is unreachable; errors
/// on empty artifacts or NaN scores.
pub fn min_cost_for_accuracy(
    artifacts: &EvaluationArtifacts,
    target_accuracy: f64,
) -> CoreResult<Option<ThresholdChoice>> {
    artifacts.validate()?;
    let mut best: Option<ThresholdChoice> = None;
    for (t, metrics) in candidate_metrics(artifacts)? {
        if metrics.overall_accuracy + 1e-9 >= target_accuracy {
            let better = match &best {
                None => true,
                Some(b) => metrics.overall_flops < b.metrics.overall_flops,
            };
            if better {
                best = Some(ThresholdChoice {
                    threshold: t,
                    metrics,
                });
            }
        }
    }
    Ok(best)
}

/// Finds the most accurate threshold whose skipping rate is at least
/// `min_sr` (i.e. whose cost does not exceed the corresponding budget),
/// mirroring the budgeted formulation of the paper's Eq. 7.
///
/// Errors on empty artifacts, NaN scores, or `min_sr` outside `[0, 1]`.
pub fn max_accuracy_for_skipping_rate(
    artifacts: &EvaluationArtifacts,
    min_sr: f64,
) -> CoreResult<ThresholdChoice> {
    artifacts.validate()?;
    if !(0.0..=1.0).contains(&min_sr) {
        return Err(CoreError::InvalidRate(min_sr));
    }
    let mut best: Option<ThresholdChoice> = None;
    for (t, metrics) in candidate_metrics(artifacts)? {
        if metrics.skipping_rate + 1e-9 >= min_sr {
            let better = match &best {
                None => true,
                Some(b) => metrics.overall_accuracy > b.metrics.overall_accuracy,
            };
            if better {
                best = Some(ThresholdChoice {
                    threshold: t,
                    metrics,
                });
            }
        }
    }
    Ok(best.expect("threshold 0 always satisfies any skipping-rate floor"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scores::ScoreKind;

    /// Ten samples with scores 0.0..0.9; the little model is correct exactly
    /// on the six highest-scoring samples, the big model is always correct.
    fn artifacts() -> EvaluationArtifacts {
        EvaluationArtifacts {
            scores: (0..10).map(|i| i as f32 / 10.0).collect(),
            little_correct: (0..10).map(|i| i >= 4).collect(),
            big_correct: vec![true; 10],
            hard_flags: vec![false; 10],
            little_flops: 100,
            big_flops: 1000,
            score_kind: ScoreKind::AppealNetQ,
        }
    }

    #[test]
    fn full_acci_requires_offloading_all_little_mistakes() {
        let choice = min_cost_for_acci(&artifacts(), 1.0)
            .unwrap()
            .expect("reachable");
        // Little accuracy 0.6, big 1.0; AccI = 1 needs overall accuracy 1.0,
        // achieved by offloading the four lowest-score samples (SR = 0.6).
        assert!((choice.metrics.skipping_rate - 0.6).abs() < 1e-9);
        assert_eq!(choice.metrics.overall_accuracy, 1.0);
    }

    #[test]
    fn partial_acci_is_cheaper_than_full() {
        let full = min_cost_for_acci(&artifacts(), 1.0).unwrap().unwrap();
        let half = min_cost_for_acci(&artifacts(), 0.5).unwrap().unwrap();
        assert!(half.metrics.overall_flops < full.metrics.overall_flops);
        assert!(half.metrics.accuracy_improvement().unwrap() >= 0.5);
    }

    #[test]
    fn zero_acci_target_keeps_everything_on_edge() {
        let choice = min_cost_for_acci(&artifacts(), 0.0).unwrap().unwrap();
        assert!((choice.metrics.skipping_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_acci_returns_none() {
        let mut a = artifacts();
        // Make the big model as bad as the little one on the mistaken inputs,
        // so AccI = 1.2 is impossible.
        a.big_correct = a.little_correct.clone();
        assert!(min_cost_for_acci(&a, 1.2).unwrap().is_none());
    }

    #[test]
    fn accuracy_target_search() {
        let choice = min_cost_for_accuracy(&artifacts(), 0.8).unwrap().unwrap();
        assert!(choice.metrics.overall_accuracy >= 0.8);
        // 0.8 accuracy needs only half of the little model's mistakes fixed.
        assert!(choice.metrics.skipping_rate >= 0.6);
        assert!(min_cost_for_accuracy(&artifacts(), 1.01).unwrap().is_none());
    }

    #[test]
    fn budgeted_search_trades_accuracy_for_cost() {
        let tight = max_accuracy_for_skipping_rate(&artifacts(), 0.9).unwrap();
        let loose = max_accuracy_for_skipping_rate(&artifacts(), 0.5).unwrap();
        assert!(tight.metrics.skipping_rate >= 0.9);
        assert!(loose.metrics.overall_accuracy >= tight.metrics.overall_accuracy);
    }

    #[test]
    fn acci_undefined_returns_none() {
        let mut a = artifacts();
        a.big_correct = a.little_correct.clone();
        // Gap is zero -> AccI undefined -> None even for an easy target.
        assert!(min_cost_for_acci(&a, 0.5).unwrap().is_none());
    }

    #[test]
    fn invalid_inputs_are_reported_not_panicked() {
        let mut empty = artifacts();
        empty.scores.clear();
        empty.little_correct.clear();
        empty.big_correct.clear();
        assert_eq!(
            min_cost_for_acci(&empty, 0.5).unwrap_err(),
            CoreError::EmptyArtifacts
        );
        let mut nan = artifacts();
        nan.scores[0] = f32::NAN;
        assert_eq!(
            min_cost_for_accuracy(&nan, 0.5).unwrap_err(),
            CoreError::InvalidScore { index: 0 }
        );
        assert_eq!(
            max_accuracy_for_skipping_rate(&artifacts(), 1.5).unwrap_err(),
            CoreError::InvalidRate(1.5)
        );
    }
}
