//! Routing scores: AppealNet's `q(1|x)` and the confidence-based baselines.
//!
//! All scores follow the convention "higher = keep on the edge". The three
//! baselines are the ones the paper compares against (Section VI-A):
//!
//! * **MSP** — maximum softmax probability (Hendrycks & Gimpel).
//! * **Score margin (SM)** — difference between the largest and
//!   second-largest softmax probabilities (Park et al., the Big/Little paper).
//! * **Entropy** — `Σ_j p_j log p_j` (negative entropy, so that higher is
//!   more confident), as used by BranchyNet.
//!
//! At serving time these scores are produced behind the
//! [`crate::serve::Scorer`] trait: [`crate::serve::QScorer`] for the learned
//! `q(1|x)` and [`crate::serve::ConfidenceScorer`] for the baselines here.

use appeal_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which per-input routing score to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScoreKind {
    /// AppealNet's learned predictor output `q(1|x)`.
    AppealNetQ,
    /// Maximum softmax probability.
    Msp,
    /// Softmax score margin (top-1 minus top-2).
    ScoreMargin,
    /// Negative entropy of the softmax distribution.
    Entropy,
}

impl ScoreKind {
    /// All score kinds, AppealNet first (the order used in Fig. 5 legends).
    pub fn all() -> [ScoreKind; 4] {
        [
            ScoreKind::AppealNetQ,
            ScoreKind::Msp,
            ScoreKind::ScoreMargin,
            ScoreKind::Entropy,
        ]
    }

    /// The confidence-score baselines (everything except AppealNet).
    pub fn baselines() -> [ScoreKind; 3] {
        [ScoreKind::Msp, ScoreKind::ScoreMargin, ScoreKind::Entropy]
    }

    /// Short name used in tables and plots.
    pub fn name(&self) -> &'static str {
        match self {
            ScoreKind::AppealNetQ => "AppealNet",
            ScoreKind::Msp => "MSP",
            ScoreKind::ScoreMargin => "SM",
            ScoreKind::Entropy => "Entropy",
        }
    }

    /// Returns `true` for the baselines that only need softmax probabilities.
    pub fn is_confidence_baseline(&self) -> bool {
        !matches!(self, ScoreKind::AppealNetQ)
    }
}

impl fmt::Display for ScoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Computes a confidence score per row of a `[n, k]` softmax-probability tensor.
///
/// # Panics
///
/// Panics if `probs` is not rank 2, or `kind` is [`ScoreKind::AppealNetQ`]
/// (that score comes from the predictor head, not from probabilities).
pub fn confidence_scores(probs: &Tensor, kind: ScoreKind) -> Vec<f32> {
    assert_eq!(probs.rank(), 2, "probabilities must be [batch, classes]");
    assert!(
        kind.is_confidence_baseline(),
        "AppealNetQ is produced by the predictor head, not derived from probabilities"
    );
    let (n, k) = (probs.shape()[0], probs.shape()[1]);
    (0..n)
        .map(|i| {
            let row = &probs.data()[i * k..(i + 1) * k];
            match kind {
                ScoreKind::Msp => row.iter().copied().fold(f32::NEG_INFINITY, f32::max),
                ScoreKind::ScoreMargin => {
                    let mut top1 = f32::NEG_INFINITY;
                    let mut top2 = f32::NEG_INFINITY;
                    for &p in row {
                        if p > top1 {
                            top2 = top1;
                            top1 = p;
                        } else if p > top2 {
                            top2 = p;
                        }
                    }
                    if k == 1 {
                        top1
                    } else {
                        top1 - top2
                    }
                }
                ScoreKind::Entropy => row
                    .iter()
                    .map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 })
                    .sum(),
                ScoreKind::AppealNetQ => unreachable!("rejected above"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs() -> Tensor {
        // Row 0: confident; row 1: uncertain.
        Tensor::from_vec(vec![0.9, 0.05, 0.05, 0.4, 0.35, 0.25], &[2, 3]).unwrap()
    }

    #[test]
    fn msp_is_max_probability() {
        let s = confidence_scores(&probs(), ScoreKind::Msp);
        assert!((s[0] - 0.9).abs() < 1e-6);
        assert!((s[1] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn score_margin_is_top1_minus_top2() {
        let s = confidence_scores(&probs(), ScoreKind::ScoreMargin);
        assert!((s[0] - 0.85).abs() < 1e-6);
        assert!((s[1] - 0.05).abs() < 1e-6);
    }

    #[test]
    fn entropy_score_ranks_confident_higher() {
        let s = confidence_scores(&probs(), ScoreKind::Entropy);
        assert!(
            s[0] > s[1],
            "confident row must have higher (less negative) score"
        );
    }

    #[test]
    fn all_baselines_rank_confident_above_uncertain() {
        for kind in ScoreKind::baselines() {
            let s = confidence_scores(&probs(), kind);
            assert!(
                s[0] > s[1],
                "{kind} failed to rank the confident row higher"
            );
        }
    }

    #[test]
    fn uniform_distribution_scores_lowest() {
        let uniform = Tensor::from_vec(vec![0.25; 4], &[1, 4]).unwrap();
        let peaked = Tensor::from_vec(vec![0.97, 0.01, 0.01, 0.01], &[1, 4]).unwrap();
        for kind in ScoreKind::baselines() {
            let u = confidence_scores(&uniform, kind)[0];
            let p = confidence_scores(&peaked, kind)[0];
            assert!(p > u, "{kind}: peaked {p} should beat uniform {u}");
        }
    }

    #[test]
    #[should_panic(expected = "predictor head")]
    fn appealnet_q_cannot_be_derived_from_probabilities() {
        let _ = confidence_scores(&probs(), ScoreKind::AppealNetQ);
    }

    #[test]
    fn names_and_ordering() {
        assert_eq!(ScoreKind::all()[0], ScoreKind::AppealNetQ);
        assert_eq!(ScoreKind::Msp.to_string(), "MSP");
        assert_eq!(ScoreKind::ScoreMargin.name(), "SM");
        assert!(ScoreKind::Msp.is_confidence_baseline());
        assert!(!ScoreKind::AppealNetQ.is_confidence_baseline());
    }

    #[test]
    fn single_class_edge_case() {
        let p = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        for kind in ScoreKind::baselines() {
            let s = confidence_scores(&p, kind);
            assert!(s[0].is_finite());
        }
    }
}
