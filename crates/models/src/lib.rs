//! # appeal-models
//!
//! The model zoo used by the AppealNet reproduction.
//!
//! The paper builds its little (edge) networks from three off-the-shelf
//! efficient CNN families — MobileNet, EfficientNet and ShuffleNet — and uses
//! ResNet-101 as the big (cloud) network. This crate provides scaled-down
//! Rust counterparts built from the [`appeal_tensor`] layer library:
//!
//! * [`ModelFamily::MobileNetLike`] — depthwise-separable convolutions.
//! * [`ModelFamily::EfficientNetLike`] — wider standard convolutions with a
//!   residual stage.
//! * [`ModelFamily::ShuffleNetLike`] — depthwise + pointwise convolutions
//!   with channel shuffles.
//! * [`ModelFamily::ResNetLike`] — the big network: a deep residual CNN with
//!   roughly 20–30× the little networks' FLOPs, mirroring the
//!   ResNet-101 : MobileNet ratio in the paper's Table I.
//!
//! Every model is split into a *backbone* (feature extractor) and a *head*
//! (classifier) because AppealNet attaches its predictor head to the shared
//! backbone. Exact per-layer FLOP accounting is available for the cost model.
//!
//! # Example
//!
//! ```
//! use appeal_models::prelude::*;
//! use appeal_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! let spec = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10);
//! let model = spec.build(&mut rng);
//! assert!(model.total_flops() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod cost;
pub mod zoo;

pub use builder::ClassifierParts;
pub use cost::ModelCost;
pub use zoo::{ModelFamily, ModelSpec};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::builder::ClassifierParts;
    pub use crate::cost::ModelCost;
    pub use crate::zoo::{ModelFamily, ModelSpec};
}
