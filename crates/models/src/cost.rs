//! Model cost summaries.

use crate::zoo::ModelFamily;
use serde::{Deserialize, Serialize};
use std::fmt;

/// FLOP and parameter counts for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelCost {
    /// FLOPs for one forward pass of a single sample.
    pub flops: u64,
    /// Number of trainable parameters.
    pub params: u64,
    /// Architecture family.
    pub family: ModelFamily,
}

impl ModelCost {
    /// FLOPs expressed in MFLOPs (the unit the paper's Table I uses).
    pub fn mflops(&self) -> f64 {
        self.flops as f64 / 1e6
    }

    /// Parameters expressed in thousands.
    pub fn kparams(&self) -> f64 {
        self.params as f64 / 1e3
    }
}

impl fmt::Display for ModelCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} MFLOPs, {:.1}k params",
            self.family,
            self.mflops(),
            self.kparams()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let cost = ModelCost {
            flops: 2_500_000,
            params: 12_000,
            family: ModelFamily::MobileNetLike,
        };
        assert!((cost.mflops() - 2.5).abs() < 1e-9);
        assert!((cost.kparams() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_units() {
        let cost = ModelCost {
            flops: 1_000_000,
            params: 1_000,
            family: ModelFamily::ResNetLike,
        };
        let s = cost.to_string();
        assert!(s.contains("MFLOPs"));
        assert!(s.contains("resnet_like"));
    }
}
