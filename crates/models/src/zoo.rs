//! Model families and specifications.

use crate::builder::{build_parts, ClassifierParts};
use appeal_tensor::SeededRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// CNN architecture families available in the zoo.
///
/// The first three are "efficient" families suitable for edge deployment
/// (counterparts of the paper's MobileNet / EfficientNet / ShuffleNet); the
/// last is the big cloud network (counterpart of ResNet-101).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Depthwise-separable convolutions (MobileNet-style).
    MobileNetLike,
    /// Wider standard convolutions with one residual stage (EfficientNet-style).
    EfficientNetLike,
    /// Depthwise + pointwise convolutions with channel shuffle (ShuffleNet-style).
    ShuffleNetLike,
    /// Deep residual network (ResNet-style) — the big cloud model.
    ResNetLike,
}

impl ModelFamily {
    /// The three efficient (edge) families.
    pub fn little_families() -> [ModelFamily; 3] {
        [
            ModelFamily::MobileNetLike,
            ModelFamily::EfficientNetLike,
            ModelFamily::ShuffleNetLike,
        ]
    }

    /// Short name used in tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelFamily::MobileNetLike => "mobilenet_like",
            ModelFamily::EfficientNetLike => "efficientnet_like",
            ModelFamily::ShuffleNetLike => "shufflenet_like",
            ModelFamily::ResNetLike => "resnet_like",
        }
    }

    /// Name of the architecture this family stands in for in the paper.
    pub fn paper_name(&self) -> &'static str {
        match self {
            ModelFamily::MobileNetLike => "MobileNet",
            ModelFamily::EfficientNetLike => "EfficientNet",
            ModelFamily::ShuffleNetLike => "ShuffleNet",
            ModelFamily::ResNetLike => "ResNet-101",
        }
    }

    /// Returns `true` for the efficient edge families.
    pub fn is_little(&self) -> bool {
        !matches!(self, ModelFamily::ResNetLike)
    }
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Full specification of a model instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Architecture family.
    pub family: ModelFamily,
    /// Channel width multiplier (1.0 = the family's base width).
    pub width: f32,
    /// Input image shape `[channels, height, width]`.
    pub input_shape: [usize; 3],
    /// Number of output classes.
    pub num_classes: usize,
}

impl ModelSpec {
    /// Specification for a little (edge) model at base width.
    ///
    /// # Panics
    ///
    /// Panics if `family` is not one of the little families.
    pub fn little(family: ModelFamily, input_shape: [usize; 3], num_classes: usize) -> Self {
        assert!(family.is_little(), "little() requires an efficient family");
        Self {
            family,
            width: 1.0,
            input_shape,
            num_classes,
        }
    }

    /// Specification for the big (cloud) model.
    pub fn big(input_shape: [usize; 3], num_classes: usize) -> Self {
        Self {
            family: ModelFamily::ResNetLike,
            width: 1.0,
            input_shape,
            num_classes,
        }
    }

    /// Returns a copy with a different width multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive.
    pub fn with_width(mut self, width: f32) -> Self {
        assert!(width > 0.0, "width multiplier must be positive");
        self.width = width;
        self
    }

    /// Builds the model (backbone + classifier head) with freshly initialized weights.
    pub fn build(&self, rng: &mut SeededRng) -> ClassifierParts {
        build_parts(self, rng)
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(w={}, in={:?}, classes={})",
            self.family, self.width, self.input_shape, self.num_classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_and_predicates() {
        assert_eq!(ModelFamily::MobileNetLike.name(), "mobilenet_like");
        assert_eq!(ModelFamily::ResNetLike.paper_name(), "ResNet-101");
        assert!(ModelFamily::ShuffleNetLike.is_little());
        assert!(!ModelFamily::ResNetLike.is_little());
        assert_eq!(ModelFamily::little_families().len(), 3);
    }

    #[test]
    fn spec_constructors() {
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10);
        assert_eq!(little.width, 1.0);
        let big = ModelSpec::big([3, 12, 12], 10);
        assert_eq!(big.family, ModelFamily::ResNetLike);
        let wide = little.clone().with_width(2.0);
        assert_eq!(wide.width, 2.0);
    }

    #[test]
    #[should_panic(expected = "requires an efficient family")]
    fn little_rejects_big_family() {
        let _ = ModelSpec::little(ModelFamily::ResNetLike, [3, 12, 12], 10);
    }

    #[test]
    fn display_is_informative() {
        let spec = ModelSpec::big([3, 16, 16], 200);
        let s = spec.to_string();
        assert!(s.contains("resnet_like"));
        assert!(s.contains("200"));
    }
}
