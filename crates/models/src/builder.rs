//! Model construction: backbones and classifier heads.

use crate::cost::ModelCost;
use crate::zoo::{ModelFamily, ModelSpec};
use appeal_tensor::layers::{
    BatchNorm2d, ChannelShuffle, Conv2d, Dense, DepthwiseConv2d, GlobalAvgPool2d, Relu, Residual,
    Sequential,
};
use appeal_tensor::{Layer, SeededRng, Tensor};

/// A classifier split into a feature-extracting backbone and a classifier head.
///
/// AppealNet shares the backbone between its approximator head and its
/// predictor head, which is why the split is part of the zoo's public API.
///
/// Cloning replicates the full model (parameters, running statistics and
/// caches); the parallel evaluation engine uses this to give each worker
/// thread its own replica.
#[derive(Clone)]
pub struct ClassifierParts {
    /// Feature extractor: images `[n, c, h, w]` → features `[n, feature_dim]`.
    pub backbone: Sequential,
    /// Classifier head: features `[n, feature_dim]` → logits `[n, num_classes]`.
    pub head: Sequential,
    /// Dimensionality of the backbone output.
    pub feature_dim: usize,
    /// The specification this model was built from.
    pub spec: ModelSpec,
}

impl std::fmt::Debug for ClassifierParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ClassifierParts(spec={}, feature_dim={})",
            self.spec, self.feature_dim
        )
    }
}

impl ClassifierParts {
    /// Runs the full classifier (backbone then head) on a batch of images.
    pub fn forward(&mut self, images: &Tensor, train: bool) -> Tensor {
        let features = self.backbone.forward(images, train);
        self.head.forward(&features, train)
    }

    /// FLOPs of one inference through backbone + head for a single sample.
    pub fn total_flops(&self) -> u64 {
        let input_shape = self.spec.input_shape.to_vec();
        let backbone_flops = self.backbone.flops(&input_shape);
        let feature_shape = self.backbone.output_shape(&input_shape);
        backbone_flops + self.head.flops(&feature_shape)
    }

    /// FLOPs of the backbone alone for a single sample.
    pub fn backbone_flops(&self) -> u64 {
        self.backbone.flops(self.spec.input_shape.as_ref())
    }

    /// Total number of trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.backbone.param_count() + self.head.param_count()
    }

    /// Cost summary (FLOPs and parameters) for this model.
    pub fn cost(&mut self) -> ModelCost {
        ModelCost {
            flops: self.total_flops(),
            params: self.param_count() as u64,
            family: self.spec.family,
        }
    }

    /// Zeroes all parameter gradients in backbone and head.
    pub fn zero_grad(&mut self) {
        self.backbone.zero_grad();
        self.head.zero_grad();
    }

    /// Drops all forward-pass activation caches (see [`Layer::clear_cache`]).
    pub fn clear_cache(&mut self) {
        self.backbone.clear_cache();
        self.head.clear_cache();
    }

    /// Switches the classifier to the quantized (Q8_0) weight tier.
    ///
    /// Quantizes every dense and convolution weight in backbone and head
    /// (see [`appeal_tensor::quant`]), returning per-layer round-trip
    /// reports. Eval-mode forwards then run the int8 GEMM under the
    /// "quantized-tolerance" numeric contract; training stays f32.
    pub fn quantize_weights(&mut self) -> Vec<appeal_tensor::quant::QuantLayerReport> {
        let mut reports = self.backbone.quantize_weights();
        reports.extend(self.head.quantize_weights());
        reports
    }

    /// `true` once [`ClassifierParts::quantize_weights`] has installed the
    /// int8 tier.
    pub fn is_quantized(&self) -> bool {
        self.backbone.is_quantized() || self.head.is_quantized()
    }
}

/// Rounds a scaled channel count to at least 2 channels.
fn scaled(base: usize, width: f32) -> usize {
    ((base as f32 * width).round() as usize).max(2)
}

/// Builds the backbone + head for a model specification.
///
/// The conv/dense layers these backbones are assembled from run on the
/// GEMM-lowered kernel layer (`appeal_tensor::kernels`): pointwise (1x1)
/// convolutions — the bulk of the MobileNet/ShuffleNet-style blocks — map
/// straight onto the blocked GEMM with no im2col, and every layer carries
/// its own scratch arena so repeated inference allocates nothing.
///
/// # Panics
///
/// Panics if the input shape is too small for the family's downsampling
/// schedule (minimum 8×8).
pub fn build_parts(spec: &ModelSpec, rng: &mut SeededRng) -> ClassifierParts {
    let [c, h, w] = spec.input_shape;
    assert!(h >= 8 && w >= 8, "input spatial size must be at least 8x8");
    let (backbone, feature_dim) = match spec.family {
        ModelFamily::MobileNetLike => mobilenet_backbone(c, spec.width, rng),
        ModelFamily::EfficientNetLike => efficientnet_backbone(c, spec.width, rng),
        ModelFamily::ShuffleNetLike => shufflenet_backbone(c, spec.width, rng),
        ModelFamily::ResNetLike => resnet_backbone(c, spec.width, rng),
    };
    let head = Sequential::new(vec![Box::new(Dense::new(
        feature_dim,
        spec.num_classes,
        rng,
    ))]);
    ClassifierParts {
        backbone,
        head,
        feature_dim,
        spec: spec.clone(),
    }
}

/// MobileNet-style backbone: standard stem + depthwise-separable blocks.
fn mobilenet_backbone(in_c: usize, width: f32, rng: &mut SeededRng) -> (Sequential, usize) {
    let c1 = scaled(8, width);
    let c2 = scaled(16, width);
    let c3 = scaled(24, width);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_c, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c1)),
        Box::new(Relu::new()),
        // Depthwise separable block 1 (stride 2).
        Box::new(DepthwiseConv2d::new(c1, 3, 2, 1, rng)),
        Box::new(Conv2d::new(c1, c2, 1, 1, 0, rng)),
        Box::new(BatchNorm2d::new(c2)),
        Box::new(Relu::new()),
        // Depthwise separable block 2 (stride 1).
        Box::new(DepthwiseConv2d::new(c2, 3, 1, 1, rng)),
        Box::new(Conv2d::new(c2, c2, 1, 1, 0, rng)),
        Box::new(BatchNorm2d::new(c2)),
        Box::new(Relu::new()),
        // Depthwise separable block 3 (stride 2).
        Box::new(DepthwiseConv2d::new(c2, 3, 2, 1, rng)),
        Box::new(Conv2d::new(c2, c3, 1, 1, 0, rng)),
        Box::new(BatchNorm2d::new(c3)),
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool2d::new()),
    ];
    (Sequential::new(layers), c3)
}

/// EfficientNet-style backbone: wider standard convolutions plus a residual stage.
fn efficientnet_backbone(in_c: usize, width: f32, rng: &mut SeededRng) -> (Sequential, usize) {
    let c1 = scaled(8, width);
    let c2 = scaled(14, width);
    let c3 = scaled(20, width);
    let res_body = Sequential::new(vec![
        Box::new(Conv2d::new(c2, c2, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c2)),
        Box::new(Relu::new()),
    ]);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_c, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c1)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(c1, c2, 3, 2, 1, rng)),
        Box::new(BatchNorm2d::new(c2)),
        Box::new(Relu::new()),
        Box::new(Residual::new(res_body)),
        Box::new(Conv2d::new(c2, c3, 3, 2, 1, rng)),
        Box::new(BatchNorm2d::new(c3)),
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool2d::new()),
    ];
    (Sequential::new(layers), c3)
}

/// ShuffleNet-style backbone: depthwise + pointwise convolutions with channel shuffles.
fn shufflenet_backbone(in_c: usize, width: f32, rng: &mut SeededRng) -> (Sequential, usize) {
    let c1 = scaled(8, width);
    let c2 = scaled(16, width);
    let c3 = scaled(24, width);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_c, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c1)),
        Box::new(Relu::new()),
        Box::new(DepthwiseConv2d::new(c1, 3, 2, 1, rng)),
        Box::new(Conv2d::new(c1, c2, 1, 1, 0, rng)),
        Box::new(BatchNorm2d::new(c2)),
        Box::new(Relu::new()),
        Box::new(ChannelShuffle::new(2)),
        Box::new(DepthwiseConv2d::new(c2, 3, 2, 1, rng)),
        Box::new(Conv2d::new(c2, c3, 1, 1, 0, rng)),
        Box::new(BatchNorm2d::new(c3)),
        Box::new(Relu::new()),
        Box::new(ChannelShuffle::new(2)),
        Box::new(GlobalAvgPool2d::new()),
    ];
    (Sequential::new(layers), c3)
}

/// ResNet-style big backbone: deep residual CNN with ~20-30x the little nets' FLOPs.
fn resnet_backbone(in_c: usize, width: f32, rng: &mut SeededRng) -> (Sequential, usize) {
    let c1 = scaled(12, width);
    let c2 = scaled(24, width);
    let c3 = scaled(40, width);

    let basic_block = |channels: usize, rng: &mut SeededRng| -> Box<dyn Layer> {
        let body = Sequential::new(vec![
            Box::new(Conv2d::new(channels, channels, 3, 1, 1, rng)),
            Box::new(BatchNorm2d::new(channels)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(channels, channels, 3, 1, 1, rng)),
            Box::new(BatchNorm2d::new(channels)),
        ]);
        Box::new(Residual::new(body))
    };
    let down_block = |cin: usize, cout: usize, rng: &mut SeededRng| -> Box<dyn Layer> {
        let body = Sequential::new(vec![
            Box::new(Conv2d::new(cin, cout, 3, 2, 1, rng)),
            Box::new(BatchNorm2d::new(cout)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(cout, cout, 3, 1, 1, rng)),
            Box::new(BatchNorm2d::new(cout)),
        ]);
        let shortcut = Sequential::new(vec![Box::new(Conv2d::new(cin, cout, 1, 2, 0, rng))]);
        Box::new(Residual::with_shortcut(body, shortcut))
    };

    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_c, c1, 3, 1, 1, rng)),
        Box::new(BatchNorm2d::new(c1)),
        Box::new(Relu::new()),
        basic_block(c1, rng),
        down_block(c1, c2, rng),
        basic_block(c2, rng),
        down_block(c2, c3, rng),
        basic_block(c3, rng),
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool2d::new()),
    ];
    (Sequential::new(layers), c3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_family(family: ModelFamily, classes: usize) -> ClassifierParts {
        let mut rng = SeededRng::new(1);
        let spec = if family.is_little() {
            ModelSpec::little(family, [3, 12, 12], classes)
        } else {
            ModelSpec::big([3, 12, 12], classes)
        };
        let mut model = spec.build(&mut rng);
        let x = Tensor::randn(&[2, 3, 12, 12], &mut rng);
        let logits = model.forward(&x, true);
        assert_eq!(logits.shape(), &[2, classes]);
        assert!(logits.all_finite());
        model
    }

    #[test]
    fn mobilenet_builds_and_runs() {
        let mut m = check_family(ModelFamily::MobileNetLike, 10);
        assert!(m.param_count() > 0);
    }

    #[test]
    fn efficientnet_builds_and_runs() {
        check_family(ModelFamily::EfficientNetLike, 43);
    }

    #[test]
    fn shufflenet_builds_and_runs() {
        check_family(ModelFamily::ShuffleNetLike, 10);
    }

    #[test]
    fn resnet_builds_and_runs() {
        check_family(ModelFamily::ResNetLike, 100);
    }

    #[test]
    fn big_model_is_much_more_expensive_than_little_models() {
        let mut rng = SeededRng::new(2);
        let big = ModelSpec::big([3, 12, 12], 10).build(&mut rng);
        for family in ModelFamily::little_families() {
            let little = ModelSpec::little(family, [3, 12, 12], 10).build(&mut rng);
            let ratio = big.total_flops() as f64 / little.total_flops() as f64;
            assert!(
                ratio > 8.0,
                "{family}: big/little FLOP ratio only {ratio:.1}"
            );
        }
    }

    #[test]
    fn width_multiplier_scales_cost() {
        let mut rng = SeededRng::new(3);
        let base = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
        let wide = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10)
            .with_width(2.0)
            .build(&mut rng);
        assert!(wide.total_flops() > base.total_flops() * 2);
    }

    #[test]
    fn backbone_output_matches_feature_dim() {
        let mut rng = SeededRng::new(4);
        for family in ModelFamily::little_families() {
            let spec = ModelSpec::little(family, [3, 12, 12], 10);
            let mut model = spec.build(&mut rng);
            let x = Tensor::randn(&[3, 3, 12, 12], &mut rng);
            let features = model.backbone.forward(&x, false);
            assert_eq!(features.shape(), &[3, model.feature_dim]);
        }
    }

    #[test]
    fn flops_split_is_consistent() {
        let mut rng = SeededRng::new(5);
        let model = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
        assert!(model.backbone_flops() < model.total_flops());
        assert!(model.backbone_flops() > model.total_flops() / 2);
    }

    #[test]
    fn deterministic_build_given_seed() {
        let mut a = SeededRng::new(9);
        let mut b = SeededRng::new(9);
        let spec = ModelSpec::little(ModelFamily::ShuffleNetLike, [3, 12, 12], 5);
        let mut ma = spec.build(&mut a);
        let mut mb = spec.build(&mut b);
        let x = Tensor::randn(&[1, 3, 12, 12], &mut SeededRng::new(10));
        assert_eq!(ma.forward(&x, false).data(), mb.forward(&x, false).data());
    }

    #[test]
    fn cost_summary_reports_family() {
        let mut rng = SeededRng::new(6);
        let mut model = ModelSpec::big([3, 12, 12], 10).build(&mut rng);
        let cost = model.cost();
        assert_eq!(cost.family, ModelFamily::ResNetLike);
        assert!(cost.flops > 0 && cost.params > 0);
    }

    #[test]
    fn every_family_quantizes_within_bound() {
        let mut rng = SeededRng::new(8);
        for family in ModelFamily::little_families() {
            let spec = ModelSpec::little(family, [3, 12, 12], 10);
            let mut model = spec.build(&mut rng);
            let x = Tensor::randn(&[2, 3, 12, 12], &mut rng);
            let f32_logits = model.forward(&x, false);
            assert!(!model.is_quantized());
            let reports = model.quantize_weights();
            assert!(model.is_quantized());
            assert!(
                reports.iter().all(|r| r.within_bound()),
                "{family}: quantization round-trip broke the error bound"
            );
            let q_logits = model.forward(&x, false);
            assert_eq!(q_logits.shape(), f32_logits.shape());
            assert!(q_logits.all_finite());
            assert!(
                q_logits.max_abs_diff(&f32_logits) < 1.0,
                "{family}: quantized logits drifted too far"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn rejects_tiny_inputs() {
        let mut rng = SeededRng::new(7);
        let _ = ModelSpec::big([3, 4, 4], 10).build(&mut rng);
    }
}
