//! Fleet health state: per-node digests, the staleness-weighted
//! [`FleetHealthView`] each node aggregates them into, and the cloud
//! backpressure signal folded in from appeal responses.
//!
//! The health plane answers one question per node: *how stressed is the
//! fleet right now?* Two signal paths feed it:
//!
//! * **Gossip** ([`crate::gossip`]): every round a node packages its own
//!   appeal-path health into a [`HealthDigest`] (breaker state, the failure
//!   and slow-call fractions of its last round's attempts, its round-trip
//!   EWMA) and pushes it — plus everything it has heard — to a few random
//!   peers. Receivers merge by origin timestamp: newer wins, older is
//!   dropped as stale and ledgered.
//! * **Backpressure piggyback** ([`crate::cloud::CloudSignal`]): the cloud
//!   stamps its batching-queue depth, GPU backlog and ingress shed rate on
//!   every appeal response, so a node that talks to the cloud at all learns
//!   its load for free — no extra messages.
//!
//! Staleness decay: a digest aged `a` against a horizon `stale` contributes
//! weight `max(0, 1 − a/stale)` — linear decay to zero, so a node that went
//! quiet (crashed, partitioned) fades out of everyone's view instead of
//! pinning it forever.

use crate::cloud::CloudSignal;

/// One node's self-reported appeal-path health at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthDigest {
    /// The node this digest describes (its fleet index).
    pub origin: usize,
    /// Virtual time the digest was taken, in nanoseconds. Merge freshness
    /// is decided on this, never on arrival time.
    pub at_nanos: u64,
    /// Whether the origin's breaker was not Closed (Open or HalfOpen) at
    /// digest time.
    pub breaker_open: bool,
    /// Failed fraction of the origin's appeal attempts over its last gossip
    /// round (0 when it attempted nothing).
    pub failure_rate: f64,
    /// Slow fraction of the origin's *successful* appeals over its last
    /// round.
    pub slow_rate: f64,
    /// EWMA of the origin's measured appeal round-trips, in milliseconds
    /// (0 until it has observed one).
    pub rtt_ewma_ms: f64,
}

/// What one node believes about the rest of the fleet and the cloud:
/// the freshest [`HealthDigest`] per origin plus EWMAs of the piggybacked
/// cloud backpressure signal.
#[derive(Debug, Clone)]
pub struct FleetHealthView {
    /// Freshest digest per origin; the owner's own slot stays `None`.
    entries: Vec<Option<HealthDigest>>,
    /// EWMA of the cloud's reported GPU backlog, in milliseconds.
    cloud_backlog_ewma_ms: f64,
    /// EWMA of the cloud's reported ingress shed rate.
    cloud_shed_ewma: f64,
    /// Whether any cloud signal has been folded in yet.
    cloud_observed: bool,
}

/// EWMA smoothing for the cloud signal: new observations carry this weight.
const CLOUD_EWMA_ALPHA: f64 = 0.3;

impl FleetHealthView {
    /// An empty view over a fleet of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            entries: vec![None; nodes],
            cloud_backlog_ewma_ms: 0.0,
            cloud_shed_ewma: 0.0,
            cloud_observed: false,
        }
    }

    /// Merges one received digest: applied if strictly fresher than what the
    /// view already holds for that origin (returns `true`), otherwise
    /// dropped as stale (returns `false`). Digests about unknown origins are
    /// stale by definition.
    pub fn merge(&mut self, digest: HealthDigest) -> bool {
        let Some(slot) = self.entries.get_mut(digest.origin) else {
            return false;
        };
        match slot {
            Some(existing) if existing.at_nanos >= digest.at_nanos => false,
            _ => {
                *slot = Some(digest);
                true
            }
        }
    }

    /// The freshest digest known for `origin`, if any.
    pub fn entry(&self, origin: usize) -> Option<&HealthDigest> {
        self.entries.get(origin).and_then(Option::as_ref)
    }

    /// Iterates over every known digest (all origins except empty slots).
    pub fn entries(&self) -> impl Iterator<Item = &HealthDigest> {
        self.entries.iter().flatten()
    }

    /// Folds one piggybacked cloud signal into the backlog/shed EWMAs.
    pub fn observe_cloud(&mut self, signal: &CloudSignal) {
        if self.cloud_observed {
            self.cloud_backlog_ewma_ms +=
                CLOUD_EWMA_ALPHA * (signal.backlog_ms - self.cloud_backlog_ewma_ms);
            self.cloud_shed_ewma += CLOUD_EWMA_ALPHA * (signal.shed_rate - self.cloud_shed_ewma);
        } else {
            self.cloud_backlog_ewma_ms = signal.backlog_ms;
            self.cloud_shed_ewma = signal.shed_rate;
            self.cloud_observed = true;
        }
    }

    /// The staleness weight of a digest aged from `at_nanos` to `now_nanos`
    /// against a `stale_nanos` horizon: linear decay from 1 (fresh) to 0 (at
    /// or beyond the horizon).
    pub fn staleness_weight(at_nanos: u64, now_nanos: u64, stale_nanos: u64) -> f64 {
        if stale_nanos == 0 {
            return 0.0;
        }
        let age = now_nanos.saturating_sub(at_nanos);
        if age >= stale_nanos {
            0.0
        } else {
            1.0 - age as f64 / stale_nanos as f64
        }
    }

    /// The staleness-weighted mass of *unhealthy* neighbours as seen at
    /// `now_nanos`: a neighbour counts when its freshest digest reports an
    /// open breaker or a failure rate at or above `unhealthy_failure_rate`,
    /// scaled by its staleness weight. The caller's own slot is empty, so
    /// only true neighbours contribute.
    pub fn unhealthy_mass(
        &self,
        now_nanos: u64,
        stale_nanos: u64,
        unhealthy_failure_rate: f64,
    ) -> f64 {
        self.entries()
            .filter(|d| d.breaker_open || d.failure_rate >= unhealthy_failure_rate)
            .map(|d| Self::staleness_weight(d.at_nanos, now_nanos, stale_nanos))
            .sum()
    }

    /// How many neighbours currently report an open breaker with a fresh
    /// (non-zero-weight) digest — the electorate of the staggered-probe
    /// election.
    pub fn open_neighbours_below(&self, node: usize, now_nanos: u64, stale_nanos: u64) -> usize {
        self.entries()
            .filter(|d| {
                d.breaker_open
                    && d.origin < node
                    && Self::staleness_weight(d.at_nanos, now_nanos, stale_nanos) > 0.0
            })
            .count()
    }

    /// Cloud backpressure in `[0, 1]`: the backlog EWMA normalized by
    /// `backlog_target_ms` or the shed-rate EWMA (whichever screams louder),
    /// clamped. Zero until a signal has been observed.
    pub fn cloud_pressure(&self, backlog_target_ms: f64) -> f64 {
        if !self.cloud_observed || backlog_target_ms <= 0.0 {
            return 0.0;
        }
        let backlog = self.cloud_backlog_ewma_ms / backlog_target_ms;
        // A shedding cloud is saturated by definition: weight the shed rate
        // so sustained shedding alone can drive pressure to 1.
        let shed = 2.0 * self.cloud_shed_ewma;
        backlog.max(shed).clamp(0.0, 1.0)
    }

    /// The backlog EWMA, in milliseconds (for reports/tests).
    pub fn cloud_backlog_ewma_ms(&self) -> f64 {
        self.cloud_backlog_ewma_ms
    }

    /// The shed-rate EWMA (for reports/tests).
    pub fn cloud_shed_ewma(&self) -> f64 {
        self.cloud_shed_ewma
    }
}

/// The per-node health bookkeeping behind the gossip digests: rolling
/// per-round attempt counters, the round-trip EWMA, the node's aggregated
/// [`FleetHealthView`], and the cached fleet-stress scalar the cooperative
/// policy routes against.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    /// What this node believes about everyone else.
    pub view: FleetHealthView,
    round_attempts: u64,
    round_failures: u64,
    round_successes: u64,
    round_slow: u64,
    last_round_successes: u64,
    rtt_ewma_ms: f64,
    rtt_observed: bool,
    stress: f64,
}

/// EWMA smoothing for a node's own round-trip estimate.
const RTT_EWMA_ALPHA: f64 = 0.3;

impl NodeHealth {
    /// Fresh health state for one node of a fleet of `nodes`.
    pub fn new(nodes: usize) -> Self {
        Self {
            view: FleetHealthView::new(nodes),
            round_attempts: 0,
            round_failures: 0,
            round_successes: 0,
            round_slow: 0,
            last_round_successes: 0,
            rtt_ewma_ms: 0.0,
            rtt_observed: false,
            stress: 0.0,
        }
    }

    /// Records one failed appeal attempt (timeout, dead link, shed retry,
    /// corrupt response).
    pub fn record_failure(&mut self) {
        self.round_attempts += 1;
        self.round_failures += 1;
    }

    /// Records one successful appeal round-trip.
    pub fn record_success(&mut self, round_trip_ms: f64, slow: bool) {
        self.round_attempts += 1;
        self.round_successes += 1;
        if slow {
            self.round_slow += 1;
        }
        if self.rtt_observed {
            self.rtt_ewma_ms += RTT_EWMA_ALPHA * (round_trip_ms - self.rtt_ewma_ms);
        } else {
            self.rtt_ewma_ms = round_trip_ms;
            self.rtt_observed = true;
        }
    }

    /// Successful appeals observed in the current round or the one just
    /// digested — the contrary-evidence guard against pre-emptively opening
    /// a breaker whose path recently proved healthy.
    pub fn recent_successes(&self) -> u64 {
        self.round_successes + self.last_round_successes
    }

    /// Takes this node's digest for a gossip round at `now_nanos` and resets
    /// the per-round counters, so each digest's rates cover exactly one
    /// round.
    pub fn take_digest(
        &mut self,
        origin: usize,
        now_nanos: u64,
        breaker_open: bool,
    ) -> HealthDigest {
        let failure_rate = if self.round_attempts > 0 {
            self.round_failures as f64 / self.round_attempts as f64
        } else {
            0.0
        };
        let slow_rate = if self.round_successes > 0 {
            self.round_slow as f64 / self.round_successes as f64
        } else {
            0.0
        };
        self.round_attempts = 0;
        self.round_failures = 0;
        self.last_round_successes = self.round_successes;
        self.round_successes = 0;
        self.round_slow = 0;
        HealthDigest {
            origin,
            at_nanos: now_nanos,
            breaker_open,
            failure_rate,
            slow_rate,
            rtt_ewma_ms: self.rtt_ewma_ms,
        }
    }

    /// The cached fleet-stress scalar in `[0, 1]`.
    pub fn stress(&self) -> f64 {
        self.stress
    }

    /// Recomputes and caches the stress scalar: the larger of the
    /// quorum-normalized unhealthy-neighbour mass and the cloud
    /// backpressure, clamped to `[0, 1]`.
    pub fn update_stress(
        &mut self,
        now_nanos: u64,
        stale_nanos: u64,
        unhealthy_failure_rate: f64,
        quorum: f64,
        cloud_backlog_target_ms: f64,
    ) -> f64 {
        let mass = self
            .view
            .unhealthy_mass(now_nanos, stale_nanos, unhealthy_failure_rate);
        let neighbour = if quorum > 0.0 { mass / quorum } else { 0.0 };
        let cloud = self.view.cloud_pressure(cloud_backlog_target_ms);
        self.stress = neighbour.max(cloud).clamp(0.0, 1.0);
        self.stress
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(origin: usize, at: u64, open: bool, failure_rate: f64) -> HealthDigest {
        HealthDigest {
            origin,
            at_nanos: at,
            breaker_open: open,
            failure_rate,
            slow_rate: 0.0,
            rtt_ewma_ms: 10.0,
        }
    }

    #[test]
    fn merge_applies_fresher_and_drops_stale() {
        let mut v = FleetHealthView::new(4);
        assert!(v.merge(digest(1, 100, false, 0.0)));
        assert!(
            !v.merge(digest(1, 100, true, 1.0)),
            "equal timestamp is stale"
        );
        assert!(!v.merge(digest(1, 50, true, 1.0)), "older is stale");
        assert!(v.merge(digest(1, 200, true, 1.0)));
        assert!(v.entry(1).unwrap().breaker_open);
        assert!(!v.merge(digest(9, 0, true, 1.0)), "unknown origin is stale");
    }

    #[test]
    fn staleness_weight_decays_linearly_to_zero() {
        let stale = 100;
        assert_eq!(FleetHealthView::staleness_weight(50, 50, stale), 1.0);
        assert!((FleetHealthView::staleness_weight(50, 100, stale) - 0.5).abs() < 1e-12);
        assert_eq!(FleetHealthView::staleness_weight(50, 150, stale), 0.0);
        assert_eq!(FleetHealthView::staleness_weight(50, 1_000, stale), 0.0);
        assert_eq!(FleetHealthView::staleness_weight(0, 0, 0), 0.0);
    }

    #[test]
    fn unhealthy_mass_weights_open_and_failing_neighbours() {
        let mut v = FleetHealthView::new(4);
        v.merge(digest(1, 100, true, 0.0)); // open, fresh at t=100
        v.merge(digest(2, 100, false, 0.9)); // failing hard
        v.merge(digest(3, 100, false, 0.1)); // healthy
        let mass = v.unhealthy_mass(100, 100, 0.5);
        assert!(
            (mass - 2.0).abs() < 1e-12,
            "two unhealthy at weight 1: {mass}"
        );
        // Half the horizon later both have decayed to weight 0.5.
        let mass = v.unhealthy_mass(150, 100, 0.5);
        assert!((mass - 1.0).abs() < 1e-12, "{mass}");
        // Beyond the horizon everyone fades out.
        assert_eq!(v.unhealthy_mass(500, 100, 0.5), 0.0);
    }

    #[test]
    fn cloud_pressure_tracks_backlog_and_shed() {
        let mut v = FleetHealthView::new(2);
        assert_eq!(v.cloud_pressure(50.0), 0.0, "no signal yet");
        v.observe_cloud(&CloudSignal {
            queue_depth: 4,
            backlog_ms: 25.0,
            shed_rate: 0.0,
        });
        assert!((v.cloud_pressure(50.0) - 0.5).abs() < 1e-12);
        // A shedding cloud saturates pressure even with low backlog.
        for _ in 0..32 {
            v.observe_cloud(&CloudSignal {
                queue_depth: 1,
                backlog_ms: 0.0,
                shed_rate: 0.9,
            });
        }
        assert_eq!(v.cloud_pressure(50.0), 1.0);
    }

    #[test]
    fn digest_rates_cover_one_round_and_reset() {
        let mut h = NodeHealth::new(4);
        h.record_failure();
        h.record_failure();
        h.record_success(30.0, true);
        h.record_success(10.0, false);
        let d = h.take_digest(2, 1_000, false);
        assert_eq!(d.origin, 2);
        assert!((d.failure_rate - 0.5).abs() < 1e-12);
        assert!((d.slow_rate - 0.5).abs() < 1e-12);
        assert!(d.rtt_ewma_ms > 0.0);
        // Counters reset: an empty round reports zero rates but keeps the
        // round-trip EWMA.
        let d2 = h.take_digest(2, 2_000, false);
        assert_eq!(d2.failure_rate, 0.0);
        assert_eq!(d2.slow_rate, 0.0);
        assert_eq!(d2.rtt_ewma_ms, d.rtt_ewma_ms);
    }

    #[test]
    fn stress_takes_the_louder_of_neighbours_and_cloud() {
        let mut h = NodeHealth::new(4);
        h.view.merge(digest(1, 100, true, 1.0));
        // One open neighbour at weight 1 against a quorum of 2 → 0.5.
        let s = h.update_stress(100, 100, 0.5, 2.0, 50.0);
        assert!((s - 0.5).abs() < 1e-12);
        // Cloud screaming louder than the neighbours wins.
        h.view.observe_cloud(&CloudSignal {
            queue_depth: 8,
            backlog_ms: 45.0,
            shed_rate: 0.0,
        });
        let s = h.update_stress(100, 100, 0.5, 2.0, 50.0);
        assert!((s - 0.9).abs() < 1e-12, "{s}");
        assert_eq!(h.stress(), s);
    }

    #[test]
    fn open_neighbours_below_counts_the_probe_electorate() {
        let mut v = FleetHealthView::new(4);
        v.merge(digest(0, 100, true, 1.0));
        v.merge(digest(1, 100, false, 0.0));
        v.merge(digest(3, 100, true, 1.0));
        assert_eq!(v.open_neighbours_below(2, 100, 100,), 1);
        assert_eq!(v.open_neighbours_below(4, 100, 100), 2);
        // Stale opens leave the electorate.
        assert_eq!(v.open_neighbours_below(4, 500, 100), 0);
    }
}
