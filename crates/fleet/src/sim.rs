//! The deterministic discrete-event simulator: N edge nodes and one cloud
//! tier advancing a shared virtual clock.
//!
//! Every source of time is virtual and every source of randomness is a
//! [`SeededRng`], so a run is a pure function of `(models, config, trace)`:
//! the event heap breaks timestamp ties by insertion sequence, link weather
//! is sampled in event order from one seeded stream, and request images are
//! pregenerated from the seed and addressed by request index (so the *same*
//! inputs flow through the system regardless of fleet size). Two runs with
//! the same seed are byte-identical; see `tests/fleet_determinism.rs`.
//!
//! One request's life:
//!
//! 1. **Arrival** — the trace event lands on its node (`client % nodes`) and
//!    queues behind the node's single-server compute FIFO.
//! 2. **Edge pass** — the little net + predictor head score the input; the
//!    routing policy (Eq. 1) decides edge vs. cloud. Edge answers complete
//!    immediately.
//! 3. **Appeal** — the adaptive budget (if any) may deny the offload; an
//!    admitted appeal samples a stochastic uplink transfer and enters the
//!    node's bounded radio queue. A full queue sheds the appeal back to the
//!    edge answer (link fallback).
//! 4. **Cloud** — the appeal joins the cloud's size-or-deadline batching
//!    queue; the flushed batch runs the big network on the GPU clock, and
//!    each answer rides the (unqueued) downlink back, completing the request
//!    and feeding the measured round-trip into the node's adaptive budget.

use crate::adaptive::AdaptiveBudget;
use crate::breaker::{Admission, CircuitBreaker};
use crate::cloud::{CloudPush, CloudSignal, CloudTier, PendingAppeal};
use crate::error::{is_positive, FleetError, FleetResult};
use crate::gossip::{GossipConfig, GossipPlane};
use crate::health::{FleetHealthView, HealthDigest, NodeHealth};
use crate::metrics::{percentile, FleetMetrics, NodeSummary, PhaseMetrics};
use crate::node::EdgeNode;
use crate::recovery::{CooperativeConfig, RecoveryConfig};
use crate::{adaptive::AdaptiveConfig, cloud::CloudConfig, ms_to_nanos};
use appeal_hw::{DeviceSpec, FaultEvent, FaultPlan, LinkQueue, StochasticLink, SystemModel};
use appeal_models::ClassifierParts;
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::serve::{QScorer, RoutingContext, Scorer, ThresholdPolicy};
use appealnet_core::server::trace::TraceSpec;
use appealnet_core::{ChunkPolicy, TwoHeadNet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bytes of one cloud answer (class id + confidence), matching the constant
/// inside [`SystemModel::offload_cost`].
const RESULT_BYTES: u64 = 16;

/// A mid-trace link degradation: from `after_nanos` on, transfers stretch
/// and loss multiplies by `severity`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// Virtual time the degradation sets in, in nanoseconds.
    pub after_nanos: u64,
    /// Severity multiplier (1.0 = nominal link; larger = worse).
    pub severity: f64,
}

/// Everything a fleet run is parameterized by.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of simulated edge nodes.
    pub nodes: usize,
    /// Routing threshold δ of Eq. 1 (score ≥ δ stays on the edge).
    pub delta: f64,
    /// Device model of every edge node.
    pub edge_device: DeviceSpec,
    /// Cloud-tier parameters (device, batching).
    pub cloud: CloudConfig,
    /// The stochastic uplink every node shares the *model* of (each node
    /// gets its own bounded radio queue of the model's capacity).
    pub link: StochasticLink,
    /// Optional per-node link heterogeneity: one [`StochasticLink`] per node
    /// (length must equal `nodes`), e.g. a mixed wifi/lte fleet. `None`
    /// keeps the homogeneous `link` for everyone — byte-identical to the
    /// pre-heterogeneity simulator. The routing cost model (Eq. 5) still
    /// prices offloads from the shared `link`, so heterogeneity shows up in
    /// *measured* behavior (transfers, loss, health views), not in the
    /// policy's prior.
    pub node_links: Option<Vec<StochasticLink>>,
    /// Optional mid-trace link degradation.
    pub degrade: Option<Degradation>,
    /// Optional per-node adaptive offload budget.
    pub adaptive: Option<AdaptiveConfig>,
    /// Optional appeal recovery policy (per-attempt deadline, bounded
    /// retries, per-node circuit breaker). Required whenever `faults`
    /// scripts cloud-facing events, or those events would strand requests.
    pub recovery: Option<RecoveryConfig>,
    /// Scripted fault plan ([`FaultPlan::none`] for a healthy run).
    pub faults: FaultPlan,
    /// The fleet health gossip plane ([`GossipConfig::disabled()`] replays
    /// the pre-gossip simulator byte-for-byte).
    pub gossip: GossipConfig,
    /// Optional cooperative policy over the gossiped health views. Requires
    /// gossip enabled and a recovery policy with a breaker.
    pub cooperative: Option<CooperativeConfig>,
    /// End-to-end latency SLO to count violations against, in milliseconds.
    pub slo_ms: f64,
    /// Sharding policy for the cloud's big-network forward passes.
    pub chunk: ChunkPolicy,
    /// Seed for request images and link weather.
    pub seed: u64,
}

/// How one request was ultimately answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutcomeRoute {
    /// Score ≥ δ: the little network's answer was trusted.
    Edge,
    /// Wanted the cloud but the adaptive budget denied the offload.
    BudgetDenied,
    /// Wanted the cloud but the uplink queue was full.
    LinkFallback,
    /// Appealed and answered by the big network.
    Cloud,
    /// Wanted the cloud but gracefully degraded to the little net's answer
    /// (breaker open or retry budget exhausted).
    DegradedLocal,
}

#[derive(Debug, Clone, Copy)]
struct Outcome {
    completed_nanos: u64,
    route: OutcomeRoute,
    /// The answering network's label (little for edge routes, big for cloud).
    label: usize,
}

#[derive(Debug, Clone)]
enum EventKind {
    Arrival {
        request: usize,
        node: usize,
    },
    EdgeDone {
        request: usize,
        node: usize,
    },
    CloudArrival {
        request: usize,
        node: usize,
        decided_nanos: u64,
        attempt: u32,
    },
    CloudDeadline,
    CloudCompletion {
        request: usize,
        node: usize,
        decided_nanos: u64,
        attempt: u32,
        label: usize,
        signal: CloudSignal,
    },
    /// A failed attempt's backoff expired: try the appeal again.
    AppealRetry {
        request: usize,
        node: usize,
    },
    /// An in-flight attempt's per-attempt deadline: if the request is still
    /// unresolved on that attempt, the attempt failed.
    AppealDeadline {
        request: usize,
        node: usize,
        attempt: u32,
    },
    /// One fleet-wide gossip round: every node digests its health and pushes
    /// to its round's peer set. Exists only while gossip is enabled.
    GossipRound,
}

/// Per-request retry state while an appeal is unresolved (recovery runs
/// only).
#[derive(Debug, Clone, Copy)]
struct AppealCtx {
    edge_label: usize,
    decided_nanos: u64,
    attempt: u32,
    prev_backoff_ms: f64,
    /// Whether the *current* attempt was admitted as a half-open breaker
    /// probe; echoed back so probe outcomes ledger exactly once.
    is_probe: bool,
}

struct Event {
    at_nanos: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at_nanos == other.at_nanos && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties break by insertion sequence, which pins the event order (and
        // therefore RNG consumption) independent of heap internals.
        (self.at_nanos, self.seq).cmp(&(other.at_nanos, other.seq))
    }
}

/// Min-heap of events with deterministic tie-breaking.
struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
}

impl EventQueue {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, at_nanos: u64, kind: EventKind) {
        self.heap.push(Reverse(Event {
            at_nanos,
            seq: self.seq,
            kind,
        }));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }
}

fn severity_at(degrade: Option<Degradation>, t_nanos: u64) -> f64 {
    match degrade {
        Some(d) if t_nanos >= d.after_nanos => d.severity,
        _ => 1.0,
    }
}

/// Flushes the cloud's batching queue and schedules each answer's downlink
/// completion. The downlink samples transfer weather but does not queue:
/// the cloud's egress is not the modeled bottleneck. Scripted response
/// drops eat the answer here — the edge only learns via its appeal
/// deadline.
#[allow(clippy::too_many_arguments)]
fn flush_cloud(
    cloud: &mut CloudTier,
    nodes: &mut [EdgeNode],
    now_nanos: u64,
    images: &Tensor,
    links: &[StochasticLink],
    degrade: Option<Degradation>,
    faults: &FaultPlan,
    link_rng: &mut SeededRng,
    q: &mut EventQueue,
) {
    if let Some(batch) = cloud.flush(now_nanos, images) {
        for resp in &batch.responses {
            if faults.drops_response(batch.done_nanos, resp.request, resp.attempt) {
                nodes[resp.node].stats.response_drops += 1;
                continue;
            }
            let sev =
                severity_at(degrade, batch.done_nanos) * faults.link_severity(batch.done_nanos);
            let link = &links[resp.node];
            let down = link.sample_transmit_ms(RESULT_BYTES, sev, link_rng);
            let prop = link.sample_propagation_ms(sev, link_rng);
            let at = batch
                .done_nanos
                .saturating_add(ms_to_nanos(down.service_ms + prop));
            q.push(
                at,
                EventKind::CloudCompletion {
                    request: resp.request,
                    node: resp.node,
                    decided_nanos: resp.decided_nanos,
                    attempt: resp.attempt,
                    label: resp.label,
                    signal: resp.signal,
                },
            );
        }
    }
}

/// Schedules one appeal transmission attempt for `request` on node `n`,
/// following the recovery path: a fallible uplink sample
/// ([`StochasticLink::try_transmit_ms`]), the bounded radio queue, and a
/// per-attempt deadline. Failures feed the breaker and fall through to
/// [`retry_or_degrade`].
#[allow(clippy::too_many_arguments)]
fn send_appeal(
    n: &mut EdgeNode,
    request: usize,
    node: usize,
    ctx: &mut AppealCtx,
    now: u64,
    sev: f64,
    input_bytes: u64,
    link: &StochasticLink,
    recovery: &RecoveryConfig,
    link_rng: &mut SeededRng,
    q: &mut EventQueue,
    outcomes: &mut [Option<Outcome>],
) {
    match link.try_transmit_ms(input_bytes, sev, link_rng) {
        Err(_) => {
            n.stats.link_down += 1;
            n.record_appeal_failure(now, ctx.is_probe);
            retry_or_degrade(n, request, node, ctx, now, recovery, link_rng, q, outcomes);
        }
        Ok(up) => {
            let service = ms_to_nanos(up.service_ms).max(1);
            match n.uplink.offer(now, service) {
                None if ctx.attempt == 1 => {
                    // First-attempt sheds keep the legacy link-fallback
                    // route: local congestion, not path failure.
                    n.stats.link_fallbacks += 1;
                    outcomes[request] = Some(Outcome {
                        completed_nanos: now,
                        route: OutcomeRoute::LinkFallback,
                        label: ctx.edge_label,
                    });
                }
                None => {
                    n.stats.appeal_queue_full += 1;
                    n.record_appeal_failure(now, ctx.is_probe);
                    retry_or_degrade(n, request, node, ctx, now, recovery, link_rng, q, outcomes);
                }
                Some(departure) => {
                    let prop = link.sample_propagation_ms(sev, link_rng);
                    q.push(
                        departure.saturating_add(ms_to_nanos(prop)),
                        EventKind::CloudArrival {
                            request,
                            node,
                            decided_nanos: ctx.decided_nanos,
                            attempt: ctx.attempt,
                        },
                    );
                    q.push(
                        now.saturating_add(ms_to_nanos(recovery.appeal_deadline_ms)),
                        EventKind::AppealDeadline {
                            request,
                            node,
                            attempt: ctx.attempt,
                        },
                    );
                }
            }
        }
    }
}

/// The degradation ladder's decision point after a failed attempt: schedule
/// a decorrelated-jitter retry while the budget lasts, else accept the
/// little net's answer as `DegradedLocal`.
#[allow(clippy::too_many_arguments)]
fn retry_or_degrade(
    n: &mut EdgeNode,
    request: usize,
    node: usize,
    ctx: &mut AppealCtx,
    now: u64,
    recovery: &RecoveryConfig,
    link_rng: &mut SeededRng,
    q: &mut EventQueue,
    outcomes: &mut [Option<Outcome>],
) {
    if ctx.attempt < recovery.retry.max_attempts {
        ctx.attempt += 1;
        let backoff = recovery.retry.backoff_ms(ctx.prev_backoff_ms, link_rng);
        ctx.prev_backoff_ms = backoff;
        n.stats.retries += 1;
        q.push(
            now.saturating_add(ms_to_nanos(backoff).max(1)),
            EventKind::AppealRetry { request, node },
        );
    } else {
        n.stats.degraded_local += 1;
        outcomes[request] = Some(Outcome {
            completed_nanos: now,
            route: OutcomeRoute::DegradedLocal,
            label: ctx.edge_label,
        });
    }
}

/// The assembled fleet: run traces through it with [`FleetSim::run`].
pub struct FleetSim {
    config: FleetConfig,
    nodes: Vec<EdgeNode>,
    cloud: CloudTier,
    ctx: RoutingContext,
    input_shape: [usize; 3],
    input_bytes: u64,
}

impl FleetSim {
    /// Splits the system along the appeal boundary: forks the little
    /// two-head network onto `config.nodes` edge nodes and puts the big
    /// network behind the cloud tier's batching queue.
    pub fn new(little: TwoHeadNet, big: ClassifierParts, config: FleetConfig) -> FleetResult<Self> {
        if config.nodes == 0 {
            return Err(FleetError::NoNodes);
        }
        if !is_positive(config.slo_ms) {
            return Err(FleetError::InvalidConfig {
                what: "slo_ms must be positive",
            });
        }
        if let Some(d) = config.degrade {
            if !is_positive(d.severity) {
                return Err(FleetError::InvalidConfig {
                    what: "degradation severity must be positive",
                });
            }
        }
        if let Some(recovery) = &config.recovery {
            recovery.validate()?;
        }
        if config.faults.needs_recovery() && config.recovery.is_none() {
            // Blackouts and response drops/corruption strand appeals; with
            // no retry/degrade ladder those requests would never complete.
            return Err(FleetError::InvalidConfig {
                what: "fault plan scripts cloud-facing faults but no recovery policy is configured",
            });
        }
        if config.cloud.shed_backlog_ms.is_some() && config.recovery.is_none() {
            // A shed appeal vanishes exactly like a blackout drop; only the
            // appeal deadline can rescue the request.
            return Err(FleetError::InvalidConfig {
                what: "cloud shed_backlog_ms requires a recovery policy",
            });
        }
        config.gossip.validate()?;
        if let Some(coop) = &config.cooperative {
            coop.validate()?;
            if !config.gossip.enabled {
                return Err(FleetError::InvalidConfig {
                    what: "cooperative policy requires gossip to be enabled",
                });
            }
            if config.recovery.and_then(|r| r.breaker).is_none() {
                return Err(FleetError::InvalidConfig {
                    what: "cooperative policy requires a recovery policy with a breaker",
                });
            }
        }
        if let Some(node_links) = &config.node_links {
            if node_links.len() != config.nodes {
                return Err(FleetError::InvalidConfig {
                    what: "node_links length must equal the node count",
                });
            }
        }
        for event in config.faults.events() {
            if let FaultEvent::NodeCrash { node, .. } = *event {
                if node >= config.nodes {
                    return Err(FleetError::InvalidConfig {
                        what: "fault plan crashes a node outside the fleet",
                    });
                }
            }
        }
        let input_shape = little.spec().input_shape;
        let input_bytes = (input_shape.iter().product::<usize>() * 4) as u64;
        let little_flops = little.flops();
        let big_flops = big.total_flops();
        let system = SystemModel::new(
            config.edge_device.clone(),
            config.cloud.device.clone(),
            config.link.spec.clone(),
        );
        let ctx = RoutingContext {
            edge_cost: system.edge_only_cost(little_flops),
            offload_cost: system.offload_cost(little_flops, big_flops, input_bytes),
        };
        let policy = ThresholdPolicy::new(config.delta)?;
        let base = QScorer::new(little);
        let mut nodes = Vec::with_capacity(config.nodes);
        for id in 0..config.nodes {
            let adaptive = config.adaptive.map(AdaptiveBudget::new).transpose()?;
            let node_link = config
                .node_links
                .as_ref()
                .map_or(&config.link, |links| &links[id]);
            let uplink = LinkQueue::new(node_link.queue_capacity)?;
            let mut node = EdgeNode::new(
                id,
                base.fork(),
                Box::new(policy),
                adaptive,
                &config.edge_device,
                uplink,
            );
            if let Some(breaker) = config.recovery.and_then(|r| r.breaker) {
                node = node.with_breaker(CircuitBreaker::new(breaker)?);
            }
            if config.gossip.enabled {
                node = node.with_health(
                    NodeHealth::new(config.nodes),
                    config.cooperative,
                    config.gossip.stale_nanos(),
                );
            }
            nodes.push(node);
        }
        let cloud = CloudTier::new(big, config.chunk, config.cloud.clone())?;
        Ok(Self {
            config,
            nodes,
            cloud,
            ctx,
            input_shape,
            input_bytes,
        })
    }

    /// The per-request cost context (Eq. 5 `c1`/`c0`) the nodes route
    /// against.
    pub fn routing_context(&self) -> &RoutingContext {
        &self.ctx
    }

    /// Replays one trace through the fleet in virtual time and returns its
    /// metrics. Running consumes node/cloud state; use a fresh `FleetSim`
    /// per measured run.
    pub fn run(&mut self, trace: &TraceSpec) -> FleetMetrics {
        let arrivals = trace.events();
        let total = arrivals.len();
        let [c, h, w] = self.input_shape;
        let mut image_rng = SeededRng::new(self.config.seed);
        let images = Tensor::randn(&[total.max(1), c, h, w], &mut image_rng);
        let mut link_rng = SeededRng::new(self.config.seed ^ 0x9E37_79B9_7F4A_7C15);
        let links: Vec<StochasticLink> = match &self.config.node_links {
            Some(per_node) => per_node.clone(),
            None => vec![self.config.link.clone(); self.nodes.len()],
        };
        let mut gossip_plane = self
            .config
            .gossip
            .enabled
            .then(|| GossipPlane::new(self.config.gossip, self.config.seed));
        let ctx = self.ctx;
        let degrade = self.config.degrade;
        let recovery = self.config.recovery;
        let faults = self.config.faults.clone();
        let input_bytes = self.input_bytes;

        let mut q = EventQueue::new();
        let mut arrival_nanos = vec![0u64; total];
        let mut outcomes: Vec<Option<Outcome>> = vec![None; total];
        let mut appeal_state: Vec<Option<AppealCtx>> = vec![None; total];
        for (i, ev) in arrivals.iter().enumerate() {
            arrival_nanos[i] = ev.at_nanos;
            let node = ev.client as usize % self.nodes.len();
            q.push(ev.at_nanos, EventKind::Arrival { request: i, node });
        }
        if let Some(plane) = gossip_plane.as_mut() {
            if total > 0 {
                q.push(plane.next_round_nanos(0), EventKind::GossipRound);
            }
        }

        while let Some(event) = q.pop() {
            let now = event.at_nanos;
            match event.kind {
                EventKind::Arrival { request, node } => {
                    let mut effective = now;
                    if let Some(restart) = faults.node_restart_at(node, now) {
                        // The node's compute is down: the request waits out
                        // the crash, then queues behind the restart backlog.
                        self.nodes[node].stats.crash_stalls += 1;
                        effective = restart;
                    }
                    let done = self.nodes[node].schedule(effective);
                    q.push(done, EventKind::EdgeDone { request, node });
                }
                EventKind::EdgeDone { request, node } => {
                    let image = images.select_rows(&[request]);
                    let n = &mut self.nodes[node];
                    let pass = n.scorer.evaluate(&image);
                    let score = pass.scores[0];
                    let edge_label = pass.labels[0];
                    if let Some(a) = n.adaptive.as_mut() {
                        a.on_request();
                    }
                    let route = n.policy.decide(score, &ctx);
                    if !route.is_cloud() {
                        n.stats.edge_answered += 1;
                        outcomes[request] = Some(Outcome {
                            completed_nanos: now,
                            route: OutcomeRoute::Edge,
                            label: edge_label,
                        });
                        continue;
                    }
                    let admitted = n
                        .adaptive
                        .as_ref()
                        .is_none_or(|a| a.admits(&ctx.offload_cost));
                    if !admitted {
                        n.stats.budget_denied += 1;
                        outcomes[request] = Some(Outcome {
                            completed_nanos: now,
                            route: OutcomeRoute::BudgetDenied,
                            label: edge_label,
                        });
                        continue;
                    }
                    let sev = severity_at(degrade, now) * faults.link_severity(now);
                    match recovery {
                        Some(rec) => {
                            // The cooperative stress check runs before the
                            // breaker admission so a shed request can never
                            // leak a half-open probe slot.
                            let n = &mut self.nodes[node];
                            if n.stress_sheds(f64::from(score), self.config.delta) {
                                n.stats.stress_shed += 1;
                                n.stats.degraded_local += 1;
                                outcomes[request] = Some(Outcome {
                                    completed_nanos: now,
                                    route: OutcomeRoute::DegradedLocal,
                                    label: edge_label,
                                });
                                continue;
                            }
                            // Breaker check precedes charging: a refused
                            // appeal never leaves the node, so it must not
                            // spend offload budget.
                            let admission = self.nodes[node]
                                .breaker
                                .as_mut()
                                .map_or(Admission::Allowed, |b| b.admit(now));
                            let n = &mut self.nodes[node];
                            if admission == Admission::Denied {
                                n.stats.breaker_denied += 1;
                                n.stats.degraded_local += 1;
                                outcomes[request] = Some(Outcome {
                                    completed_nanos: now,
                                    route: OutcomeRoute::DegradedLocal,
                                    label: edge_label,
                                });
                                continue;
                            }
                            if let Some(a) = n.adaptive.as_mut() {
                                a.charge(&ctx.offload_cost);
                            }
                            appeal_state[request] = Some(AppealCtx {
                                edge_label,
                                decided_nanos: now,
                                attempt: 1,
                                prev_backoff_ms: 0.0,
                                is_probe: admission == Admission::Probe,
                            });
                            let state = appeal_state[request].as_mut().expect("just set");
                            send_appeal(
                                n,
                                request,
                                node,
                                state,
                                now,
                                sev,
                                input_bytes,
                                &links[node],
                                &rec,
                                &mut link_rng,
                                &mut q,
                                &mut outcomes,
                            );
                        }
                        None => {
                            let n = &mut self.nodes[node];
                            if let Some(a) = n.adaptive.as_mut() {
                                a.charge(&ctx.offload_cost);
                            }
                            let up =
                                links[node].sample_transmit_ms(input_bytes, sev, &mut link_rng);
                            let service = ms_to_nanos(up.service_ms).max(1);
                            match n.uplink.offer(now, service) {
                                None => {
                                    n.stats.link_fallbacks += 1;
                                    outcomes[request] = Some(Outcome {
                                        completed_nanos: now,
                                        route: OutcomeRoute::LinkFallback,
                                        label: edge_label,
                                    });
                                }
                                Some(departure) => {
                                    let prop =
                                        links[node].sample_propagation_ms(sev, &mut link_rng);
                                    q.push(
                                        departure.saturating_add(ms_to_nanos(prop)),
                                        EventKind::CloudArrival {
                                            request,
                                            node,
                                            decided_nanos: now,
                                            attempt: 1,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                EventKind::CloudArrival {
                    request,
                    node,
                    decided_nanos,
                    attempt,
                } => {
                    if faults.cloud_down(now) {
                        // The appeal reached a blacked-out cloud and
                        // vanished; the edge learns via its attempt
                        // deadline.
                        self.nodes[node].stats.blackout_drops += 1;
                        continue;
                    }
                    let appeal = PendingAppeal {
                        request,
                        node,
                        decided_nanos,
                        arrived_nanos: now,
                        attempt,
                    };
                    match self.cloud.push(now, appeal) {
                        CloudPush::FlushNow => flush_cloud(
                            &mut self.cloud,
                            &mut self.nodes,
                            now,
                            &images,
                            &links,
                            degrade,
                            &faults,
                            &mut link_rng,
                            &mut q,
                        ),
                        CloudPush::ScheduleDeadline(at) => q.push(at, EventKind::CloudDeadline),
                        CloudPush::Queued => {}
                        CloudPush::Shed => {
                            // The backlog gate dropped the appeal at ingress;
                            // like a blackout drop, the edge only learns via
                            // its attempt deadline.
                            self.nodes[node].stats.cloud_shed += 1;
                        }
                    }
                }
                EventKind::CloudDeadline => {
                    if self.cloud.deadline_due(now) {
                        flush_cloud(
                            &mut self.cloud,
                            &mut self.nodes,
                            now,
                            &images,
                            &links,
                            degrade,
                            &faults,
                            &mut link_rng,
                            &mut q,
                        );
                    }
                }
                EventKind::CloudCompletion {
                    request,
                    node,
                    decided_nanos,
                    attempt,
                    label,
                    signal,
                } => {
                    let n = &mut self.nodes[node];
                    if outcomes[request].is_some() {
                        // The request already resolved (degraded, or an
                        // earlier attempt's answer landed): the ledger
                        // remembers, the request doesn't.
                        n.stats.late_responses += 1;
                        continue;
                    }
                    // An answer for a superseded attempt is a straggler: it
                    // resolves the request, but must not settle the probe
                    // slot held by the *current* attempt.
                    let is_probe =
                        appeal_state[request].is_some_and(|s| s.attempt == attempt && s.is_probe);
                    if faults.corrupts_response(now, request, attempt) {
                        n.stats.response_corrupt += 1;
                        n.record_appeal_failure(now, is_probe);
                        let rec = recovery.expect("corrupting faults require a recovery policy");
                        let state = appeal_state[request]
                            .as_mut()
                            .expect("corrupt response for a tracked appeal");
                        retry_or_degrade(
                            n,
                            request,
                            node,
                            state,
                            now,
                            &rec,
                            &mut link_rng,
                            &mut q,
                            &mut outcomes,
                        );
                        continue;
                    }
                    n.stats.cloud_answered += 1;
                    let round_trip_ms = (now.saturating_sub(decided_nanos)) as f64 / 1e6;
                    if let Some(a) = n.adaptive.as_mut() {
                        a.observe(round_trip_ms);
                    }
                    n.record_appeal_success(now, round_trip_ms, is_probe);
                    n.observe_cloud_signal(now, &signal);
                    outcomes[request] = Some(Outcome {
                        completed_nanos: now,
                        route: OutcomeRoute::Cloud,
                        label,
                    });
                }
                EventKind::AppealRetry { request, node } => {
                    if outcomes[request].is_some() {
                        // A straggler answer resolved the request during the
                        // backoff; nothing left to retry.
                        continue;
                    }
                    let rec = recovery.expect("retries only exist under a recovery policy");
                    let admission = self.nodes[node]
                        .breaker
                        .as_mut()
                        .map_or(Admission::Allowed, |b| b.admit(now));
                    let n = &mut self.nodes[node];
                    let state = appeal_state[request]
                        .as_mut()
                        .expect("retry for a tracked appeal");
                    if admission == Admission::Denied {
                        n.stats.breaker_denied += 1;
                        n.stats.degraded_local += 1;
                        outcomes[request] = Some(Outcome {
                            completed_nanos: now,
                            route: OutcomeRoute::DegradedLocal,
                            label: state.edge_label,
                        });
                        continue;
                    }
                    // A retry admitted at the open-timer boundary *is* the
                    // half-open probe: tag the attempt so it ledgers once,
                    // as a probe, not twice.
                    state.is_probe = admission == Admission::Probe;
                    let sev = severity_at(degrade, now) * faults.link_severity(now);
                    send_appeal(
                        n,
                        request,
                        node,
                        state,
                        now,
                        sev,
                        input_bytes,
                        &links[node],
                        &rec,
                        &mut link_rng,
                        &mut q,
                        &mut outcomes,
                    );
                }
                EventKind::AppealDeadline {
                    request,
                    node,
                    attempt,
                } => {
                    if outcomes[request].is_some() {
                        continue;
                    }
                    let rec = recovery.expect("deadlines only exist under a recovery policy");
                    let state = appeal_state[request]
                        .as_mut()
                        .expect("deadline for a tracked appeal");
                    if state.attempt != attempt {
                        // Stale deadline of an abandoned attempt; the
                        // current attempt has its own.
                        continue;
                    }
                    let n = &mut self.nodes[node];
                    n.stats.appeal_timeouts += 1;
                    let is_probe = state.is_probe;
                    n.record_appeal_failure(now, is_probe);
                    retry_or_degrade(
                        n,
                        request,
                        node,
                        state,
                        now,
                        &rec,
                        &mut link_rng,
                        &mut q,
                        &mut outcomes,
                    );
                }
                EventKind::GossipRound => {
                    let plane = gossip_plane.as_mut().expect("gossip rounds imply a plane");
                    let stale = plane.config().stale_nanos();
                    let node_count = self.nodes.len();
                    // Phase 1: every node digests its last round (resetting
                    // the per-round counters) before anything is exchanged,
                    // so all messages this round carry same-round snapshots.
                    let digests: Vec<HealthDigest> = (0..node_count)
                        .map(|i| {
                            let open = self.nodes[i].breaker_open_for_digest(now);
                            self.nodes[i]
                                .health
                                .as_mut()
                                .expect("gossip requires health state")
                                .take_digest(i, now, open)
                        })
                        .collect();
                    // Phase 2: push in node order. A message to peer `p`
                    // carries the sender's own digest plus every still-fresh
                    // entry of its view except those about `p` itself — so
                    // no node ever holds hearsay about itself.
                    for (i, &own) in digests.iter().enumerate() {
                        let peers = plane.select_peers(i, node_count);
                        if peers.is_empty() {
                            continue;
                        }
                        let fresh: Vec<HealthDigest> = self.nodes[i]
                            .health
                            .as_ref()
                            .expect("gossip requires health state")
                            .view
                            .entries()
                            .filter(|d| {
                                FleetHealthView::staleness_weight(d.at_nanos, now, stale) > 0.0
                            })
                            .copied()
                            .collect();
                        for &p in &peers {
                            let payload: Vec<HealthDigest> = std::iter::once(own)
                                .chain(fresh.iter().copied().filter(|d| d.origin != p))
                                .collect();
                            self.nodes[i].stats.gossip_sent += 1;
                            self.nodes[i].stats.gossip_entries += payload.len() as u64;
                            let receiver = &mut self.nodes[p];
                            let (mut applied, mut stale_dropped) = (0u64, 0u64);
                            {
                                let view = &mut receiver
                                    .health
                                    .as_mut()
                                    .expect("gossip requires health state")
                                    .view;
                                for digest in payload {
                                    if view.merge(digest) {
                                        applied += 1;
                                    } else {
                                        stale_dropped += 1;
                                    }
                                }
                            }
                            receiver.stats.gossip_received += 1;
                            receiver.stats.gossip_applied += applied;
                            receiver.stats.gossip_stale += stale_dropped;
                        }
                    }
                    // Phase 3: fold the merged views into policy — refresh
                    // each node's stress and run the pre-emptive-open check.
                    for i in 0..node_count {
                        self.nodes[i].update_stress(now);
                        self.nodes[i].preemptive_check(now);
                    }
                    // Rounds stop once the trace is fully resolved, so the
                    // simulation terminates.
                    if outcomes.iter().any(|o| o.is_none()) {
                        q.push(plane.next_round_nanos(now), EventKind::GossipRound);
                    }
                }
            }
        }

        self.collect_metrics(&images, &arrival_nanos, &outcomes)
    }

    fn collect_metrics(
        &mut self,
        images: &Tensor,
        arrival_nanos: &[u64],
        outcomes: &[Option<Outcome>],
    ) -> FleetMetrics {
        let requests = outcomes.len() as u64;
        let mut completed = 0u64;
        let (mut edge, mut cloud, mut fallback, mut denied, mut degraded) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut degraded_rows: Vec<usize> = Vec::new();
        let mut latencies = Vec::with_capacity(outcomes.len());
        let mut slo_violations = 0u64;
        let mut last_completion = 0u64;
        let degrade_at = self.config.degrade.map(|d| d.after_nanos);
        let mut pre = (0u64, 0u64, Vec::new()); // requests, cloud, latencies
        let mut post = (0u64, 0u64, Vec::new());
        let mut labels_digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for (i, slot) in outcomes.iter().enumerate() {
            let Some(o) = slot else { continue };
            completed += 1;
            for byte in (o.label as u64).to_le_bytes() {
                labels_digest ^= u64::from(byte);
                labels_digest = labels_digest.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let lat_ms = o.completed_nanos.saturating_sub(arrival_nanos[i]) as f64 / 1e6;
            latencies.push(lat_ms);
            if lat_ms > self.config.slo_ms {
                slo_violations += 1;
            }
            last_completion = last_completion.max(o.completed_nanos);
            let is_cloud = o.route == OutcomeRoute::Cloud;
            match o.route {
                OutcomeRoute::Edge => edge += 1,
                OutcomeRoute::Cloud => cloud += 1,
                OutcomeRoute::LinkFallback => fallback += 1,
                OutcomeRoute::BudgetDenied => denied += 1,
                OutcomeRoute::DegradedLocal => {
                    degraded += 1;
                    degraded_rows.push(i);
                }
            }
            if let Some(at) = degrade_at {
                let phase = if arrival_nanos[i] < at {
                    &mut pre
                } else {
                    &mut post
                };
                phase.0 += 1;
                phase.1 += u64::from(is_cloud);
                phase.2.push(lat_ms);
            }
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mean_ms = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let span_ms = last_completion as f64 / 1e6;
        let cloud_busy_ms = self.cloud.busy_nanos() as f64 / 1e6;
        // What would the big net have said where we settled for the little
        // net? Pure accounting: no clock or counter moves.
        let degraded_agreement = if degraded_rows.is_empty() {
            None
        } else {
            let big_labels = self.cloud.counterfactual_labels(images, &degraded_rows);
            let agree = degraded_rows
                .iter()
                .zip(&big_labels)
                .filter(|&(&row, big)| outcomes[row].map(|o| o.label) == Some(*big))
                .count();
            Some(agree as f64 / degraded_rows.len() as f64)
        };
        let nodes: Vec<NodeSummary> = self
            .nodes
            .iter()
            .map(|n| NodeSummary {
                id: n.id(),
                requests: n.stats().requests,
                edge_answered: n.stats().edge_answered,
                cloud_answered: n.stats().cloud_answered,
                link_fallbacks: n.stats().link_fallbacks,
                budget_denied: n.stats().budget_denied,
                degraded_local: n.stats().degraded_local,
                breaker_denied: n.stats().breaker_denied,
                retries: n.stats().retries,
                stress_shed: n.stats().stress_shed,
                preemptive_opens: n.stats().preemptive_opens,
                busy_ms: n.stats().busy_nanos as f64 / 1e6,
                final_budget_ms: n.adaptive().map(AdaptiveBudget::current_budget_ms),
                tightenings: n.adaptive().map_or(0, AdaptiveBudget::tightenings),
            })
            .collect();
        let stat_sum = |f: fn(&crate::node::NodeStats) -> u64| -> u64 {
            self.nodes.iter().map(|n| f(n.stats())).sum()
        };
        let breaker_sum = |f: fn(&CircuitBreaker) -> u64| -> u64 {
            self.nodes.iter().filter_map(EdgeNode::breaker).map(f).sum()
        };
        let phase_metrics = |(reqs, cloud_n, mut lats): (u64, u64, Vec<f64>)| {
            lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            PhaseMetrics {
                requests: reqs,
                cloud_answered: cloud_n,
                appeal_rate: cloud_n as f64 / reqs.max(1) as f64,
                p50_ms: percentile(&lats, 0.50),
                p99_ms: percentile(&lats, 0.99),
            }
        };
        FleetMetrics {
            requests,
            completed,
            edge_answered: edge,
            cloud_answered: cloud,
            link_fallbacks: fallback,
            budget_denied: denied,
            degraded_local: degraded,
            breaker_denied: stat_sum(|s| s.breaker_denied),
            retries: stat_sum(|s| s.retries),
            stress_shed: stat_sum(|s| s.stress_shed),
            appeal_timeouts: stat_sum(|s| s.appeal_timeouts),
            link_down: stat_sum(|s| s.link_down),
            appeal_queue_full: stat_sum(|s| s.appeal_queue_full),
            blackout_drops: stat_sum(|s| s.blackout_drops),
            response_drops: stat_sum(|s| s.response_drops),
            response_corrupt: stat_sum(|s| s.response_corrupt),
            late_responses: stat_sum(|s| s.late_responses),
            crash_stalls: stat_sum(|s| s.crash_stalls),
            breaker_opened: breaker_sum(CircuitBreaker::opened),
            breaker_half_opened: breaker_sum(CircuitBreaker::half_opened),
            breaker_closed: breaker_sum(CircuitBreaker::closed),
            preemptive_opens: stat_sum(|s| s.preemptive_opens),
            probe_elections: stat_sum(|s| s.probe_elections),
            probe_attempts: breaker_sum(CircuitBreaker::probe_attempts),
            probe_ok: breaker_sum(CircuitBreaker::probe_ok),
            probe_failed: breaker_sum(CircuitBreaker::probe_failed),
            probe_orphaned: breaker_sum(CircuitBreaker::probe_orphaned),
            probe_unresolved: breaker_sum(CircuitBreaker::probes_in_flight),
            cloud_shed: stat_sum(|s| s.cloud_shed),
            cloud_signals: stat_sum(|s| s.cloud_signals),
            gossip_sent: stat_sum(|s| s.gossip_sent),
            gossip_received: stat_sum(|s| s.gossip_received),
            gossip_entries: stat_sum(|s| s.gossip_entries),
            gossip_applied: stat_sum(|s| s.gossip_applied),
            gossip_stale: stat_sum(|s| s.gossip_stale),
            degraded_agreement,
            recovery_enabled: self.config.recovery.is_some(),
            faults_scripted: !self.config.faults.is_empty(),
            gossip_enabled: self.config.gossip.enabled,
            cooperative_enabled: self.config.cooperative.is_some(),
            cloud_shed_enabled: self.config.cloud.shed_backlog_ms.is_some(),
            uplink_accepted: self.nodes.iter().map(EdgeNode::uplink_accepted).sum(),
            uplink_rejected: self.nodes.iter().map(EdgeNode::uplink_rejected).sum(),
            p50_ms: percentile(&latencies, 0.50),
            p99_ms: percentile(&latencies, 0.99),
            max_ms: percentile(&latencies, 1.0),
            mean_ms,
            slo_ms: self.config.slo_ms,
            slo_violations,
            skipping_rate: (edge + fallback + denied + degraded) as f64 / completed.max(1) as f64,
            appeal_rate: cloud as f64 / completed.max(1) as f64,
            span_ms,
            cloud_busy_ms,
            cloud_load: if span_ms > 0.0 {
                cloud_busy_ms / span_ms
            } else {
                0.0
            },
            cloud_batches: self.cloud.batches(),
            mean_batch: self.cloud.served() as f64 / self.cloud.batches().max(1) as f64,
            labels_digest,
            nodes,
            pre_degrade: degrade_at.map(|_| phase_metrics(pre)),
            post_degrade: degrade_at.map(|_| phase_metrics(post)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_models::{ModelFamily, ModelSpec};
    use appealnet_core::server::trace::TraceShape;

    fn build(config: FleetConfig) -> FleetSim {
        let mut rng = SeededRng::new(2021);
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        FleetSim::new(TwoHeadNet::from_parts(little, &mut rng), big, config).unwrap()
    }

    fn config(nodes: usize, delta: f64) -> FleetConfig {
        FleetConfig {
            nodes,
            delta,
            edge_device: DeviceSpec::mobile_soc(),
            cloud: CloudConfig {
                device: DeviceSpec::cloud_gpu(),
                max_batch: 8,
                deadline_ms: 2.0,
                batch_overhead_ms: 1.0,
                shed_backlog_ms: None,
            },
            link: StochasticLink::wifi(),
            node_links: None,
            degrade: None,
            adaptive: None,
            recovery: None,
            gossip: GossipConfig::disabled(),
            cooperative: None,
            faults: FaultPlan::none(),
            slo_ms: 100.0,
            chunk: ChunkPolicy::sequential(),
            seed: 7,
        }
    }

    fn trace(requests: usize) -> TraceSpec {
        TraceSpec {
            shape: TraceShape::Uniform,
            requests,
            mean_gap_nanos: 2_000_000,
            clients: 16,
            seed: 2021,
        }
    }

    #[test]
    fn every_request_completes_and_ledgers_reconcile() {
        let mut sim = build(config(4, 0.5));
        let metrics = sim.run(&trace(96));
        assert_eq!(metrics.completed, 96);
        let violations = metrics.check();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn delta_extremes_route_everything_one_way() {
        // δ = 0: every score ≥ 0 stays on the edge.
        let mut all_edge = build(config(4, 0.0));
        let m = all_edge.run(&trace(48));
        assert_eq!(m.edge_answered, 48);
        assert_eq!(m.cloud_answered, 0);
        assert!((m.skipping_rate - 1.0).abs() < 1e-12);
        // δ = 1: (untrained q scores sit below 1) everything appeals.
        let mut all_cloud = build(config(4, 1.0));
        let m = all_cloud.run(&trace(48));
        assert_eq!(m.edge_answered, 0);
        assert!(m.cloud_answered + m.link_fallbacks == 48);
        assert!(m.cloud_answered > 0, "some appeals must get through");
        assert!(m.check().is_empty());
    }

    #[test]
    fn cloud_latency_exceeds_edge_latency() {
        let mut sim = build(config(4, 1.0));
        let cloudy = sim.run(&trace(48));
        let mut edge_sim = build(config(4, 0.0));
        let edgy = edge_sim.run(&trace(48));
        assert!(
            cloudy.p50_ms > edgy.p50_ms * 5.0,
            "appeals pay the link: {} vs {}",
            cloudy.p50_ms,
            edgy.p50_ms
        );
    }

    #[test]
    fn rejects_empty_fleet_and_bad_slo() {
        let mut c = config(0, 0.5);
        let mut rng = SeededRng::new(2021);
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        let net = TwoHeadNet::from_parts(little, &mut rng);
        assert!(matches!(
            FleetSim::new(net.clone(), big.clone(), c.clone()),
            Err(FleetError::NoNodes)
        ));
        c.nodes = 2;
        c.slo_ms = 0.0;
        assert!(matches!(
            FleetSim::new(net, big, c),
            Err(FleetError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn cloud_facing_faults_require_a_recovery_policy() {
        let mut c = config(2, 1.0);
        c.faults = FaultPlan::new(
            1,
            vec![FaultEvent::CloudBlackout {
                from_nanos: 0,
                until_nanos: 1_000_000,
            }],
        )
        .unwrap();
        let mut rng = SeededRng::new(2021);
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        let net = TwoHeadNet::from_parts(little, &mut rng);
        assert!(matches!(
            FleetSim::new(net.clone(), big.clone(), c.clone()),
            Err(FleetError::InvalidConfig { .. })
        ));
        // Crashing a node the fleet doesn't have is also rejected.
        c.faults = FaultPlan::new(
            1,
            vec![FaultEvent::NodeCrash {
                node: 2,
                at_nanos: 0,
                down_nanos: 1,
            }],
        )
        .unwrap();
        assert!(matches!(
            FleetSim::new(net, big, c),
            Err(FleetError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn total_blackout_degrades_every_appeal_and_ledgers_reconcile() {
        let mut c = config(2, 1.0); // δ = 1: everything wants the cloud
        c.recovery = Some(crate::RecoveryConfig::default_for_appeals());
        c.faults = FaultPlan::new(
            5,
            vec![FaultEvent::CloudBlackout {
                from_nanos: 0,
                until_nanos: u64::MAX,
            }],
        )
        .unwrap();
        let mut sim = build(c);
        let m = sim.run(&trace(48));
        assert_eq!(m.completed, 48, "no request may strand in an outage");
        assert_eq!(m.cloud_answered, 0);
        assert!(m.degraded_local > 0, "appeals must degrade locally");
        assert!(m.appeal_timeouts > 0, "the edge learns via its deadline");
        assert!(m.breaker_opened > 0, "a dead cloud must trip the breaker");
        assert!(m.degraded_agreement.is_some());
        let violations = m.check();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn degradation_slows_the_post_phase() {
        let mut c = config(4, 1.0);
        c.link = StochasticLink::lte();
        c.degrade = Some(Degradation {
            after_nanos: 48 * 1_000_000, // mid-trace
            severity: 4.0,
        });
        let mut sim = build(c);
        let m = sim.run(&trace(96));
        let pre = m.pre_degrade.as_ref().expect("pre phase");
        let post = m.post_degrade.as_ref().expect("post phase");
        assert!(pre.requests > 0 && post.requests > 0);
        assert!(
            post.p50_ms > pre.p50_ms,
            "degraded link must slow appeals: {} vs {}",
            post.p50_ms,
            pre.p50_ms
        );
        assert!(m.check().is_empty());
    }
}
