//! Fleet-level metrics: latency percentiles, skipping/appeal rates, cloud
//! load in GPU-equivalents, SLO violations, and self-checkable accounting
//! invariants.
//!
//! [`FleetMetrics::render`] produces a stable, fully deterministic text
//! block — the unit of the byte-reproducibility guarantee: two simulations
//! with the same seed must render identical bytes.

use std::fmt::Write as _;

/// Per-node roll-up included in [`FleetMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSummary {
    /// Node index.
    pub id: usize,
    /// Requests routed to the node.
    pub requests: u64,
    /// Requests answered by the little network.
    pub edge_answered: u64,
    /// Requests answered by the cloud.
    pub cloud_answered: u64,
    /// Appeals shed by a full uplink queue.
    pub link_fallbacks: u64,
    /// Appeals denied by the adaptive budget.
    pub budget_denied: u64,
    /// Requests degraded to the little net's answer (breaker open or retry
    /// budget exhausted).
    pub degraded_local: u64,
    /// Appeal sends refused by the node's breaker.
    pub breaker_denied: u64,
    /// Appeal retransmissions scheduled.
    pub retries: u64,
    /// Appeals shed locally because fleet stress raised the effective δ.
    pub stress_shed: u64,
    /// Breaker trips forced pre-emptively by a quorum of unhealthy peers.
    pub preemptive_opens: u64,
    /// Node compute busy time, in milliseconds.
    pub busy_ms: f64,
    /// Final adaptive per-window budget, if the node ran one.
    pub final_budget_ms: Option<f64>,
    /// Times the adaptive controller tightened.
    pub tightenings: u64,
}

/// Metrics over one phase of the trace (pre- or post-degradation), split by
/// request *arrival* time.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMetrics {
    /// Requests arriving in the phase.
    pub requests: u64,
    /// Of those, answered by the cloud.
    pub cloud_answered: u64,
    /// Cloud-answered fraction of the phase's requests.
    pub appeal_rate: f64,
    /// Median end-to-end latency, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, in milliseconds.
    pub p99_ms: f64,
}

/// Everything one simulation run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Requests in the trace.
    pub requests: u64,
    /// Requests that completed (must equal `requests`).
    pub completed: u64,
    /// Answered by the little network (score ≥ δ).
    pub edge_answered: u64,
    /// Answered by the cloud.
    pub cloud_answered: u64,
    /// Appeals shed by full uplink queues; answered on the edge.
    pub link_fallbacks: u64,
    /// Appeals denied by adaptive budgets; answered on the edge.
    pub budget_denied: u64,
    /// Requests that wanted the cloud but accepted the little net's answer
    /// after the recovery ladder ran out (breaker open or retries spent).
    pub degraded_local: u64,
    /// Appeal sends refused by open (or probe-saturated) breakers.
    pub breaker_denied: u64,
    /// Appeal retransmissions scheduled after failed attempts.
    pub retries: u64,
    /// Appeals shed locally because fleet stress raised the effective δ.
    pub stress_shed: u64,
    /// Appeal attempts whose answer missed the per-attempt deadline.
    pub appeal_timeouts: u64,
    /// Appeal attempts refused by the link itself (`HwError::LinkDown`).
    pub link_down: u64,
    /// Retry attempts shed by full uplink queues (first-attempt sheds count
    /// as `link_fallbacks`).
    pub appeal_queue_full: u64,
    /// Appeals that reached a blacked-out cloud and vanished.
    pub blackout_drops: u64,
    /// Cloud answers dropped on the way back by scripted faults.
    pub response_drops: u64,
    /// Cloud answers delivered corrupted by scripted faults.
    pub response_corrupt: u64,
    /// Cloud answers that arrived after their request had already resolved.
    pub late_responses: u64,
    /// Arrivals stalled on a crashed node.
    pub crash_stalls: u64,
    /// Times any node's breaker tripped open.
    pub breaker_opened: u64,
    /// Times any node's breaker entered half-open probing.
    pub breaker_half_opened: u64,
    /// Times any node's breaker closed again after probing.
    pub breaker_closed: u64,
    /// Breaker trips forced pre-emptively by a quorum of unhealthy peers.
    pub preemptive_opens: u64,
    /// Staggered half-open probe elections run after breaker trips.
    pub probe_elections: u64,
    /// Half-open probe attempts admitted across all breakers.
    pub probe_attempts: u64,
    /// Probes that resolved successfully.
    pub probe_ok: u64,
    /// Probes that resolved as failures (re-tripping the breaker).
    pub probe_failed: u64,
    /// Probes orphaned by a state change while still in flight.
    pub probe_orphaned: u64,
    /// Probes still unresolved when the run ended.
    pub probe_unresolved: u64,
    /// Appeals shed at cloud ingress by the backlog gate.
    pub cloud_shed: u64,
    /// Cloud backpressure signals folded into node health views.
    pub cloud_signals: u64,
    /// Gossip messages pushed (each lands on exactly one peer).
    pub gossip_sent: u64,
    /// Gossip messages received.
    pub gossip_received: u64,
    /// Health digests carried inside gossip messages.
    pub gossip_entries: u64,
    /// Digests merged into a receiver's view (strictly fresher).
    pub gossip_applied: u64,
    /// Digests dropped as stale or already known.
    pub gossip_stale: u64,
    /// Of the degraded answers, the fraction where the little net agreed
    /// with what the big net *would* have answered (the counterfactual
    /// accuracy of graceful degradation). `None` when nothing degraded.
    pub degraded_agreement: Option<f64>,
    /// Whether the run had a recovery policy installed (controls the
    /// recovery/fault render lines so legacy runs render byte-identically).
    pub recovery_enabled: bool,
    /// Whether the run scripted any fault plan.
    pub faults_scripted: bool,
    /// Whether the run exchanged gossip (controls the gossip render line so
    /// disabled-gossip runs render byte-identically to their ancestors).
    pub gossip_enabled: bool,
    /// Whether the cooperative degradation policy was installed.
    pub cooperative_enabled: bool,
    /// Whether the cloud ran a backlog shed gate.
    pub cloud_shed_enabled: bool,
    /// Transfers accepted across all uplink queues.
    pub uplink_accepted: u64,
    /// Transfers rejected across all uplink queues.
    pub uplink_rejected: u64,
    /// Median end-to-end latency, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, in milliseconds.
    pub p99_ms: f64,
    /// Maximum end-to-end latency, in milliseconds.
    pub max_ms: f64,
    /// Mean end-to-end latency, in milliseconds.
    pub mean_ms: f64,
    /// The latency SLO the run was checked against, in milliseconds.
    pub slo_ms: f64,
    /// Completions whose latency exceeded the SLO.
    pub slo_violations: u64,
    /// Fraction of requests answered on the edge (the paper's Eq. 11 SR at
    /// fleet level; budget denials and link fallbacks count as edge).
    pub skipping_rate: f64,
    /// Fraction of requests answered by the cloud.
    pub appeal_rate: f64,
    /// Virtual span from first arrival to last completion, in milliseconds.
    pub span_ms: f64,
    /// Cloud GPU busy time, in milliseconds.
    pub cloud_busy_ms: f64,
    /// Cloud busy time over span: how many GPU-equivalents this fleet keeps
    /// busy.
    pub cloud_load: f64,
    /// Batches the cloud flushed.
    pub cloud_batches: u64,
    /// Mean appeals per flushed batch.
    pub mean_batch: f64,
    /// FNV-1a digest of every answered label in request order: ties the
    /// byte-reproducibility guarantee to the models' actual answers, not
    /// just the timing.
    pub labels_digest: u64,
    /// Per-node roll-ups, in node order.
    pub nodes: Vec<NodeSummary>,
    /// Metrics for arrivals before the degradation point, if one was set.
    pub pre_degrade: Option<PhaseMetrics>,
    /// Metrics for arrivals at or after the degradation point.
    pub post_degrade: Option<PhaseMetrics>,
}

/// Percentile over a sorted slice, mirroring the loadgen convention
/// (nearest-rank by rounding).
pub fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

impl FleetMetrics {
    /// Renders the run as a stable text block (the byte-reproducibility
    /// unit).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "requests {} | completed {} | edge {} | cloud {} | fallback {} | denied {}",
            self.requests,
            self.completed,
            self.edge_answered,
            self.cloud_answered,
            self.link_fallbacks,
            self.budget_denied
        );
        if self.recovery_enabled {
            let agreement = match self.degraded_agreement {
                Some(a) => format!("{:.1}%", 100.0 * a),
                None => "n/a".to_string(),
            };
            let _ = writeln!(
                s,
                "recovery: degraded {} (breaker denied {}, retries {}) | degraded agreement {}",
                self.degraded_local, self.breaker_denied, self.retries, agreement
            );
            let _ = writeln!(
                s,
                "breaker: opened {} | half-open {} | closed {}",
                self.breaker_opened, self.breaker_half_opened, self.breaker_closed
            );
        }
        if self.gossip_enabled {
            let _ = writeln!(
                s,
                "gossip: sent {} | received {} | entries {} (applied {}, stale {}) | cloud signals {}",
                self.gossip_sent,
                self.gossip_received,
                self.gossip_entries,
                self.gossip_applied,
                self.gossip_stale,
                self.cloud_signals
            );
        }
        if self.cooperative_enabled {
            let _ = writeln!(
                s,
                "cooperative: stress shed {} | preemptive opens {} | probe elections {} | probes {} (ok {}, failed {}, orphaned {})",
                self.stress_shed,
                self.preemptive_opens,
                self.probe_elections,
                self.probe_attempts,
                self.probe_ok,
                self.probe_failed,
                self.probe_orphaned
            );
        }
        if self.cloud_shed_enabled {
            let _ = writeln!(s, "backpressure: cloud shed {}", self.cloud_shed);
        }
        if self.faults_scripted {
            let _ = writeln!(
                s,
                "faults: timeouts {} | link down {} | queue full {} | blackout drops {} | response drops {} | corrupt {} | late {} | crash stalls {}",
                self.appeal_timeouts,
                self.link_down,
                self.appeal_queue_full,
                self.blackout_drops,
                self.response_drops,
                self.response_corrupt,
                self.late_responses,
                self.crash_stalls
            );
        }
        let _ = writeln!(
            s,
            "latency p50 {:.3} ms | p99 {:.3} ms | max {:.3} ms | mean {:.3} ms",
            self.p50_ms, self.p99_ms, self.max_ms, self.mean_ms
        );
        let _ = writeln!(
            s,
            "skipping rate {:.1}% | appeal rate {:.1}% | slo {:.1} ms | violations {} ({:.1}%)",
            100.0 * self.skipping_rate,
            100.0 * self.appeal_rate,
            self.slo_ms,
            self.slo_violations,
            100.0 * self.slo_violations as f64 / self.completed.max(1) as f64
        );
        let _ = writeln!(
            s,
            "cloud busy {:.3} ms over {:.3} ms span | load {:.4} GPU-equiv | {} batches | mean batch {:.2}",
            self.cloud_busy_ms, self.span_ms, self.cloud_load, self.cloud_batches, self.mean_batch
        );
        let _ = writeln!(
            s,
            "uplink accepted {} | rejected {} | labels digest {:016x}",
            self.uplink_accepted, self.uplink_rejected, self.labels_digest
        );
        if self.nodes.iter().any(|n| n.final_budget_ms.is_some()) {
            let tightenings: u64 = self.nodes.iter().map(|n| n.tightenings).sum();
            let budgets: Vec<String> = self
                .nodes
                .iter()
                .filter_map(|n| n.final_budget_ms.map(|b| format!("{b:.1}")))
                .collect();
            let _ = writeln!(
                s,
                "adaptive: {} tightenings | final window budgets [{}] ms",
                tightenings,
                budgets.join(", ")
            );
        }
        for (name, phase) in [
            ("pre-degrade", &self.pre_degrade),
            ("post-degrade", &self.post_degrade),
        ] {
            if let Some(p) = phase {
                let _ = writeln!(
                    s,
                    "{name}: {} requests | cloud {} | appeal rate {:.1}% | p50 {:.3} ms | p99 {:.3} ms",
                    p.requests,
                    p.cloud_answered,
                    100.0 * p.appeal_rate,
                    p.p50_ms,
                    p.p99_ms
                );
            }
        }
        s
    }

    /// Accounting invariants that must hold after any run; violations are
    /// simulator bugs, not workload properties. Returns human-readable
    /// descriptions of every violated invariant (empty = all good).
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let mut check = |ok: bool, what: String| {
            if !ok {
                violations.push(what);
            }
        };
        check(
            self.completed == self.requests,
            format!("{} of {} requests completed", self.completed, self.requests),
        );
        let routed = self.edge_answered
            + self.cloud_answered
            + self.link_fallbacks
            + self.budget_denied
            + self.degraded_local;
        check(
            routed == self.completed,
            format!("route counts sum to {routed}, not {}", self.completed),
        );
        let node_stress: u64 = self.nodes.iter().map(|n| n.stress_shed).sum();
        check(
            node_stress == self.stress_shed,
            format!(
                "per-node stress sheds sum to {node_stress}, not {}",
                self.stress_shed
            ),
        );
        let node_preemptive: u64 = self.nodes.iter().map(|n| n.preemptive_opens).sum();
        check(
            node_preemptive == self.preemptive_opens,
            format!(
                "per-node preemptive opens sum to {node_preemptive}, not {}",
                self.preemptive_opens
            ),
        );
        let node_requests: u64 = self.nodes.iter().map(|n| n.requests).sum();
        check(
            node_requests == self.requests,
            format!(
                "per-node requests sum to {node_requests}, not {}",
                self.requests
            ),
        );
        for n in &self.nodes {
            let node_routed = n.edge_answered
                + n.cloud_answered
                + n.link_fallbacks
                + n.budget_denied
                + n.degraded_local;
            check(
                node_routed == n.requests,
                format!(
                    "node {} route counts sum to {node_routed}, not {}",
                    n.id, n.requests
                ),
            );
        }
        // Every accepted uplink transfer ends exactly one way: answered,
        // eaten by a scripted cloud-side fault, shed at cloud ingress, or
        // delivered too late.
        let accepted_accounted = self.cloud_answered
            + self.blackout_drops
            + self.cloud_shed
            + self.response_drops
            + self.response_corrupt
            + self.late_responses;
        check(
            self.uplink_accepted == accepted_accounted,
            format!(
                "uplink accepted {} transfers but {accepted_accounted} accounted for",
                self.uplink_accepted
            ),
        );
        check(
            self.uplink_rejected == self.link_fallbacks + self.appeal_queue_full,
            format!(
                "uplink rejected {} transfers but {} fallbacks + {} retry sheds recorded",
                self.uplink_rejected, self.link_fallbacks, self.appeal_queue_full
            ),
        );
        // Degradation ladder: every edge-observed attempt failure either
        // bought a retry or degraded the request, and every breaker denial
        // degraded it outright.
        let attempt_failures =
            self.appeal_timeouts + self.link_down + self.appeal_queue_full + self.response_corrupt;
        check(
            self.degraded_local
                == self.breaker_denied + self.stress_shed + attempt_failures
                    - self.retries.min(attempt_failures)
                && self.retries <= attempt_failures,
            format!(
                "degraded {} != breaker denied {} + stress shed {} + failures {attempt_failures} - retries {}",
                self.degraded_local, self.breaker_denied, self.stress_shed, self.retries
            ),
        );
        check(
            self.breaker_closed <= self.breaker_half_opened
                && self.breaker_half_opened <= self.breaker_opened,
            format!(
                "breaker transitions out of order: opened {} half-open {} closed {}",
                self.breaker_opened, self.breaker_half_opened, self.breaker_closed
            ),
        );
        check(
            self.degraded_agreement.is_some() == (self.degraded_local > 0),
            "degraded agreement must be present iff something degraded".to_string(),
        );
        // Half-open probe ledger: every admitted probe resolves exactly one
        // way — success, failure, orphaned by a state change, or still in
        // flight when the run ended.
        let probes_accounted =
            self.probe_ok + self.probe_failed + self.probe_orphaned + self.probe_unresolved;
        check(
            self.probe_attempts == probes_accounted,
            format!(
                "{} probes admitted but {probes_accounted} accounted for (ok {} failed {} orphaned {} unresolved {})",
                self.probe_attempts,
                self.probe_ok,
                self.probe_failed,
                self.probe_orphaned,
                self.probe_unresolved
            ),
        );
        // Gossip ledger: every pushed message lands on exactly one peer, and
        // every carried digest is either applied or dropped as stale.
        check(
            self.gossip_sent == self.gossip_received,
            format!(
                "gossip sent {} != received {}",
                self.gossip_sent, self.gossip_received
            ),
        );
        check(
            self.gossip_entries == self.gossip_applied + self.gossip_stale,
            format!(
                "gossip entries {} != applied {} + stale {}",
                self.gossip_entries, self.gossip_applied, self.gossip_stale
            ),
        );
        check(
            self.preemptive_opens <= self.breaker_opened,
            format!(
                "{} preemptive opens exceed {} breaker trips",
                self.preemptive_opens, self.breaker_opened
            ),
        );
        if !self.gossip_enabled {
            check(
                self.gossip_sent == 0
                    && self.gossip_received == 0
                    && self.gossip_entries == 0
                    && self.gossip_applied == 0
                    && self.gossip_stale == 0
                    && self.cloud_signals == 0,
                "gossip counters must be zero when gossip is disabled".to_string(),
            );
        }
        if !self.cooperative_enabled {
            check(
                self.stress_shed == 0 && self.preemptive_opens == 0 && self.probe_elections == 0,
                "cooperative counters must be zero without the policy".to_string(),
            );
        }
        if !self.cloud_shed_enabled {
            check(
                self.cloud_shed == 0,
                "cloud shed must be zero without a backlog gate".to_string(),
            );
        }
        check(
            (self.skipping_rate + self.appeal_rate - 1.0).abs() < 1e-9 || self.completed == 0,
            format!(
                "skipping rate {} + appeal rate {} != 1",
                self.skipping_rate, self.appeal_rate
            ),
        );
        check(
            self.requests == 0 || self.span_ms > 0.0,
            "span must be positive".to_string(),
        );
        check(
            self.p99_ms >= self.p50_ms && self.max_ms >= self.p99_ms,
            format!(
                "latency percentiles out of order: p50 {} p99 {} max {}",
                self.p50_ms, self.p99_ms, self.max_ms
            ),
        );
        check(
            self.slo_violations <= self.completed,
            format!(
                "{} SLO violations exceed {} completions",
                self.slo_violations, self.completed
            ),
        );
        check(
            self.cloud_load >= 0.0 && self.cloud_busy_ms >= 0.0,
            "cloud load must be non-negative".to_string(),
        );
        if let (Some(pre), Some(post)) = (&self.pre_degrade, &self.post_degrade) {
            check(
                pre.requests + post.requests == self.requests,
                format!(
                    "phase requests {} + {} != {}",
                    pre.requests, post.requests, self.requests
                ),
            );
            check(
                pre.cloud_answered + post.cloud_answered == self.cloud_answered,
                format!(
                    "phase cloud counts {} + {} != {}",
                    pre.cloud_answered, post.cloud_answered, self.cloud_answered
                ),
            );
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_matches_loadgen_convention() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    fn consistent() -> FleetMetrics {
        FleetMetrics {
            requests: 10,
            completed: 10,
            edge_answered: 6,
            cloud_answered: 2,
            link_fallbacks: 1,
            budget_denied: 1,
            degraded_local: 0,
            breaker_denied: 0,
            retries: 0,
            stress_shed: 0,
            appeal_timeouts: 0,
            link_down: 0,
            appeal_queue_full: 0,
            blackout_drops: 0,
            response_drops: 0,
            response_corrupt: 0,
            late_responses: 0,
            crash_stalls: 0,
            breaker_opened: 0,
            breaker_half_opened: 0,
            breaker_closed: 0,
            preemptive_opens: 0,
            probe_elections: 0,
            probe_attempts: 0,
            probe_ok: 0,
            probe_failed: 0,
            probe_orphaned: 0,
            probe_unresolved: 0,
            cloud_shed: 0,
            cloud_signals: 0,
            gossip_sent: 0,
            gossip_received: 0,
            gossip_entries: 0,
            gossip_applied: 0,
            gossip_stale: 0,
            degraded_agreement: None,
            recovery_enabled: false,
            faults_scripted: false,
            gossip_enabled: false,
            cooperative_enabled: false,
            cloud_shed_enabled: false,
            uplink_accepted: 2,
            uplink_rejected: 1,
            p50_ms: 1.0,
            p99_ms: 5.0,
            max_ms: 6.0,
            mean_ms: 2.0,
            slo_ms: 10.0,
            slo_violations: 0,
            skipping_rate: 0.8,
            appeal_rate: 0.2,
            span_ms: 100.0,
            cloud_busy_ms: 4.0,
            cloud_load: 0.04,
            cloud_batches: 1,
            mean_batch: 2.0,
            labels_digest: 0xdead_beef,
            nodes: vec![NodeSummary {
                id: 0,
                requests: 10,
                edge_answered: 6,
                cloud_answered: 2,
                link_fallbacks: 1,
                budget_denied: 1,
                degraded_local: 0,
                breaker_denied: 0,
                retries: 0,
                stress_shed: 0,
                preemptive_opens: 0,
                busy_ms: 1.0,
                final_budget_ms: None,
                tightenings: 0,
            }],
            pre_degrade: None,
            post_degrade: None,
        }
    }

    #[test]
    fn consistent_metrics_pass_all_checks() {
        assert!(consistent().check().is_empty());
    }

    #[test]
    fn broken_ledgers_are_reported() {
        let mut m = consistent();
        m.cloud_answered = 3; // breaks route sum, node ledger and uplink match
        let violations = m.check();
        assert!(violations.len() >= 2, "{violations:?}");

        let mut m = consistent();
        m.completed = 9;
        assert!(!m.check().is_empty());

        let mut m = consistent();
        m.uplink_rejected = 5;
        assert!(m.check().iter().any(|v| v.contains("rejected")));
    }

    #[test]
    fn probe_ledger_must_reconcile() {
        let mut m = consistent();
        m.probe_attempts = 3;
        m.probe_ok = 1;
        m.probe_failed = 1;
        assert!(m.check().iter().any(|v| v.contains("probes admitted")));
        m.probe_orphaned = 1;
        assert!(m.check().is_empty(), "{:?}", m.check());
    }

    #[test]
    fn gossip_and_cooperative_counters_need_their_flags() {
        let mut m = consistent();
        m.gossip_sent = 2;
        m.gossip_received = 2;
        m.gossip_entries = 4;
        m.gossip_applied = 3;
        m.gossip_stale = 1;
        assert!(m.check().iter().any(|v| v.contains("gossip counters")));
        m.gossip_enabled = true;
        assert!(m.check().is_empty(), "{:?}", m.check());

        m.gossip_received = 1;
        assert!(m.check().iter().any(|v| v.contains("gossip sent")));
        m.gossip_received = 2;
        m.gossip_stale = 0;
        assert!(m.check().iter().any(|v| v.contains("gossip entries")));

        let mut m = consistent();
        m.stress_shed = 1;
        assert!(m.check().iter().any(|v| v.contains("cooperative counters")));
        let mut m = consistent();
        m.cloud_shed = 1;
        assert!(m.check().iter().any(|v| v.contains("cloud shed")));
        let mut m = consistent();
        m.preemptive_opens = 1;
        m.cooperative_enabled = true;
        assert!(m.check().iter().any(|v| v.contains("preemptive opens")));
    }

    #[test]
    fn new_render_lines_are_gated_on_their_flags() {
        let m = consistent();
        let plain = m.render();
        assert!(!plain.contains("gossip:"));
        assert!(!plain.contains("cooperative:"));
        assert!(!plain.contains("backpressure:"));

        let mut on = consistent();
        on.gossip_enabled = true;
        on.cooperative_enabled = true;
        on.cloud_shed_enabled = true;
        let rendered = on.render();
        assert!(rendered.contains("gossip: sent 0"));
        assert!(rendered.contains("cooperative: stress shed 0"));
        assert!(rendered.contains("backpressure: cloud shed 0"));
    }

    #[test]
    fn render_is_deterministic_and_mentions_key_metrics() {
        let m = consistent();
        let a = m.render();
        assert_eq!(a, m.render());
        assert!(a.contains("skipping rate 80.0%"));
        assert!(a.contains("GPU-equiv"));
        assert!(a.contains("labels digest 00000000deadbeef"));
        assert!(!a.contains("adaptive:"), "no adaptive line without budgets");
        let mut with_budget = m;
        with_budget.nodes[0].final_budget_ms = Some(42.0);
        assert!(with_budget.render().contains("adaptive:"));
    }
}
