//! One simulated edge device: little net + scorer + routing policy, a
//! single-server FIFO compute queue on its own [`DeviceSpec`] clock, an
//! optional [`AdaptiveBudget`], and a bounded uplink queue.

use crate::adaptive::AdaptiveBudget;
use crate::breaker::{BreakerState, CircuitBreaker};
use crate::health::NodeHealth;
use crate::ms_to_nanos;
use crate::recovery::CooperativeConfig;
use appeal_hw::{DeviceSpec, LinkQueue};
use appealnet_core::serve::{RoutingPolicy, Scorer};

/// Per-node accounting, reconciled against the fleet totals by
/// [`crate::FleetMetrics::check`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Requests routed to this node.
    pub requests: u64,
    /// Requests the little network answered (score ≥ δ).
    pub edge_answered: u64,
    /// Requests appealed to and answered by the cloud.
    pub cloud_answered: u64,
    /// Appeals shed because the uplink queue was full; answered on the edge.
    pub link_fallbacks: u64,
    /// Appeals denied by the adaptive budget; answered on the edge.
    pub budget_denied: u64,
    /// Requests that wanted the cloud but degraded to the little net's
    /// answer (breaker open or retry budget exhausted).
    pub degraded_local: u64,
    /// Appeal sends refused by an open (or probe-saturated) breaker.
    pub breaker_denied: u64,
    /// Appeal retransmissions scheduled after a failed attempt.
    pub retries: u64,
    /// Appeal attempts whose answer missed the per-attempt deadline.
    pub appeal_timeouts: u64,
    /// Appeal attempts refused by the link itself (loss 1.0 or retransmit
    /// budget exhausted → `HwError::LinkDown`).
    pub link_down: u64,
    /// *Retry* attempts shed by a full uplink queue (first-attempt sheds
    /// stay `link_fallbacks`).
    pub appeal_queue_full: u64,
    /// Appeals that reached a blacked-out cloud and vanished.
    pub blackout_drops: u64,
    /// Cloud answers dropped on the way back by a scripted fault.
    pub response_drops: u64,
    /// Cloud answers delivered corrupted by a scripted fault.
    pub response_corrupt: u64,
    /// Cloud answers that arrived after their request had already resolved
    /// (timed out and degraded, or answered by another attempt).
    pub late_responses: u64,
    /// Arrivals stalled because the node was crashed at the time.
    pub crash_stalls: u64,
    /// Virtual nanoseconds this node's compute was busy.
    pub busy_nanos: u64,
    /// Cloud-bound requests degraded locally by the cooperative stress
    /// policy before any send was attempted.
    pub stress_shed: u64,
    /// Breaker trips forced by fleet evidence (quorum of unhealthy
    /// neighbours) rather than local outcomes.
    pub preemptive_opens: u64,
    /// Staggered-probe elections held when this node's breaker tripped
    /// under the cooperative policy.
    pub probe_elections: u64,
    /// Appeals shed at the cloud's ingress backlog gate.
    pub cloud_shed: u64,
    /// Gossip messages this node pushed to peers.
    pub gossip_sent: u64,
    /// Gossip messages this node received.
    pub gossip_received: u64,
    /// Health-digest entries this node sent inside its gossip messages.
    pub gossip_entries: u64,
    /// Received digest entries that were fresher than known and applied.
    pub gossip_applied: u64,
    /// Received digest entries dropped as stale (no fresher than known).
    pub gossip_stale: u64,
    /// Cloud backpressure signals folded into this node's health view.
    pub cloud_signals: u64,
}

/// One edge node of the simulated fleet.
///
/// The node's little-net forward pass is modeled as a single-server FIFO:
/// a request arriving while the device is busy waits for every earlier
/// request to finish (`start = max(arrival, busy_until)`), which is what
/// gives each node its own `DeviceSpec` clock.
pub struct EdgeNode {
    id: usize,
    pub(crate) scorer: Box<dyn Scorer>,
    pub(crate) policy: Box<dyn RoutingPolicy>,
    pub(crate) adaptive: Option<AdaptiveBudget>,
    pub(crate) breaker: Option<CircuitBreaker>,
    pub(crate) uplink: LinkQueue,
    pub(crate) stats: NodeStats,
    pub(crate) health: Option<NodeHealth>,
    pub(crate) cooperative: Option<CooperativeConfig>,
    /// Gossip staleness horizon in nanoseconds; 0 while gossip is disabled.
    pub(crate) stale_nanos: u64,
    service_nanos: u64,
    busy_until_nanos: u64,
}

impl EdgeNode {
    /// Assembles a node. The per-request service time is the device-model
    /// latency of one little-net forward pass (floored at 1 ns so queueing
    /// stays well-ordered even for absurdly fast devices).
    pub fn new(
        id: usize,
        scorer: Box<dyn Scorer>,
        policy: Box<dyn RoutingPolicy>,
        adaptive: Option<AdaptiveBudget>,
        device: &DeviceSpec,
        uplink: LinkQueue,
    ) -> Self {
        let service_nanos = ms_to_nanos(device.latency_ms(scorer.flops())).max(1);
        Self {
            id,
            scorer,
            policy,
            adaptive,
            breaker: None,
            uplink,
            stats: NodeStats::default(),
            health: None,
            cooperative: None,
            stale_nanos: 0,
            service_nanos,
            busy_until_nanos: 0,
        }
    }

    /// Installs a circuit breaker on this node's appeal path.
    pub fn with_breaker(mut self, breaker: CircuitBreaker) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Installs the gossip health plane (and optionally the cooperative
    /// policy driving on it) on this node.
    pub fn with_health(
        mut self,
        health: NodeHealth,
        cooperative: Option<CooperativeConfig>,
        stale_nanos: u64,
    ) -> Self {
        self.health = Some(health);
        self.cooperative = cooperative;
        self.stale_nanos = stale_nanos;
        self
    }

    /// The appeal circuit breaker, if one is installed.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// This node's index in the fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// This node's accounting so far.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The adaptive budget controller, if one is configured.
    pub fn adaptive(&self) -> Option<&AdaptiveBudget> {
        self.adaptive.as_ref()
    }

    /// Transfers accepted by this node's uplink queue.
    pub fn uplink_accepted(&self) -> u64 {
        self.uplink.accepted()
    }

    /// Transfers rejected (queue full) by this node's uplink queue.
    pub fn uplink_rejected(&self) -> u64 {
        self.uplink.rejected()
    }

    /// The health plane state, if gossip is enabled.
    pub fn health(&self) -> Option<&NodeHealth> {
        self.health.as_ref()
    }

    /// Enqueues one request's edge pass at `arrival_nanos`; returns when the
    /// pass completes on this node's clock.
    pub(crate) fn schedule(&mut self, arrival_nanos: u64) -> u64 {
        let start = arrival_nanos.max(self.busy_until_nanos);
        let done = start.saturating_add(self.service_nanos);
        self.busy_until_nanos = done;
        self.stats.requests += 1;
        self.stats.busy_nanos += self.service_nanos;
        done
    }

    /// Records one failed appeal attempt into both controllers — the breaker
    /// (probe-tagged) and the health plane. A trip triggered here runs the
    /// staggered-probe election.
    pub(crate) fn record_appeal_failure(&mut self, now_nanos: u64, probe: bool) {
        if let Some(h) = self.health.as_mut() {
            h.record_failure();
        }
        let tripped = if let Some(b) = self.breaker.as_mut() {
            let before = b.opened();
            if probe {
                b.on_probe_failure(now_nanos);
            } else {
                b.on_failure(now_nanos);
            }
            b.opened() > before
        } else {
            false
        };
        if tripped {
            self.stagger_probe(now_nanos);
        }
    }

    /// Records one successful appeal round-trip into both controllers. A
    /// slow success can still trip the breaker, which also runs the
    /// election.
    pub(crate) fn record_appeal_success(
        &mut self,
        now_nanos: u64,
        round_trip_ms: f64,
        probe: bool,
    ) {
        let mut slow = false;
        let mut tripped = false;
        if let Some(b) = self.breaker.as_mut() {
            slow = b.is_slow(round_trip_ms);
            let before = b.opened();
            if probe {
                b.on_probe_success(now_nanos, round_trip_ms);
            } else {
                b.on_success(now_nanos, round_trip_ms);
            }
            tripped = b.opened() > before;
        }
        if let Some(h) = self.health.as_mut() {
            h.record_success(round_trip_ms, slow);
        }
        if tripped {
            self.stagger_probe(now_nanos);
        }
    }

    /// The staggered-probe election, run whenever this node's breaker trips
    /// under the cooperative policy: defer the half-open probe by one
    /// stagger per lower-indexed neighbour whose breaker is freshly known
    /// open, so a recovering cloud meets a trickle of probes, not a herd.
    fn stagger_probe(&mut self, now_nanos: u64) {
        let Some(coop) = self.cooperative else { return };
        let Some(h) = self.health.as_ref() else {
            return;
        };
        let rank = h
            .view
            .open_neighbours_below(self.id, now_nanos, self.stale_nanos);
        self.stats.probe_elections += 1;
        if rank > 0 && coop.probe_stagger_ms > 0.0 {
            if let Some(b) = self.breaker.as_mut() {
                b.defer_probe(ms_to_nanos(coop.probe_stagger_ms).saturating_mul(rank as u64));
            }
        }
    }

    /// Pre-emptive open check, run each gossip round: trips this node's
    /// breaker on fleet evidence when the staleness-weighted
    /// unhealthy-neighbour mass reaches quorum — unless the node's own
    /// recent appeals succeeded (fresh local evidence beats fleet hearsay).
    pub(crate) fn preemptive_check(&mut self, now_nanos: u64) {
        let Some(coop) = self.cooperative else { return };
        let Some(h) = self.health.as_ref() else {
            return;
        };
        if h.recent_successes() > 0 {
            return;
        }
        let mass = h
            .view
            .unhealthy_mass(now_nanos, self.stale_nanos, coop.unhealthy_failure_rate);
        if mass < coop.quorum {
            return;
        }
        let Some(b) = self.breaker.as_mut() else {
            return;
        };
        if b.preemptive_open(now_nanos) {
            self.stats.preemptive_opens += 1;
            self.stagger_probe(now_nanos);
        }
    }

    /// Recomputes the cached fleet-stress scalar from the current view.
    pub(crate) fn update_stress(&mut self, now_nanos: u64) {
        let Some(coop) = self.cooperative else { return };
        if let Some(h) = self.health.as_mut() {
            h.update_stress(
                now_nanos,
                self.stale_nanos,
                coop.unhealthy_failure_rate,
                coop.quorum,
                coop.cloud_backlog_target_ms,
            );
        }
    }

    /// Whether the cooperative stress policy degrades this cloud-bound
    /// request locally: under fleet stress the local-answer band widens by
    /// `delta_relief · stress`, catching borderline scores before they join
    /// a queue the fleet already knows is drowning.
    pub(crate) fn stress_sheds(&self, score: f64, delta: f64) -> bool {
        let Some(coop) = self.cooperative else {
            return false;
        };
        let Some(h) = self.health.as_ref() else {
            return false;
        };
        let relief = coop.delta_relief * h.stress();
        relief > 0.0 && score >= delta - relief
    }

    /// Folds a piggybacked cloud backpressure signal into the health view
    /// and refreshes the cached stress.
    pub(crate) fn observe_cloud_signal(
        &mut self,
        now_nanos: u64,
        signal: &crate::cloud::CloudSignal,
    ) {
        if let Some(h) = self.health.as_mut() {
            h.view.observe_cloud(signal);
            self.stats.cloud_signals += 1;
        }
        self.update_stress(now_nanos);
    }

    /// The current breaker state as a health-digest bit (non-mutating), plus
    /// whether any breaker exists at all.
    pub(crate) fn breaker_open_for_digest(&self, now_nanos: u64) -> bool {
        self.breaker
            .as_ref()
            .is_some_and(|b| b.peek_state(now_nanos) != BreakerState::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_hw::LinkQueue;
    use appeal_models::{ModelFamily, ModelSpec};
    use appeal_tensor::SeededRng;
    use appealnet_core::serve::{QScorer, ThresholdPolicy};
    use appealnet_core::TwoHeadNet;

    fn node() -> EdgeNode {
        let mut rng = SeededRng::new(5);
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let scorer = QScorer::new(TwoHeadNet::from_parts(little, &mut rng));
        EdgeNode::new(
            0,
            Box::new(scorer),
            Box::new(ThresholdPolicy::new(0.5).unwrap()),
            None,
            &DeviceSpec::mobile_soc(),
            LinkQueue::new(8).unwrap(),
        )
    }

    #[test]
    fn back_to_back_arrivals_queue_fifo() {
        let mut n = node();
        let first = n.schedule(1_000);
        assert!(first > 1_000);
        let service = first - 1_000;
        // Arrives while busy: waits for the first pass.
        let second = n.schedule(1_000);
        assert_eq!(second, first + service);
        // Arrives long after the queue drained: starts at its arrival.
        let third = n.schedule(second + 1_000_000);
        assert_eq!(third, second + 1_000_000 + service);
        assert_eq!(n.stats().requests, 3);
        assert_eq!(n.stats().busy_nanos, 3 * service);
    }
}
