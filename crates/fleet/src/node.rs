//! One simulated edge device: little net + scorer + routing policy, a
//! single-server FIFO compute queue on its own [`DeviceSpec`] clock, an
//! optional [`AdaptiveBudget`], and a bounded uplink queue.

use crate::adaptive::AdaptiveBudget;
use crate::breaker::CircuitBreaker;
use crate::ms_to_nanos;
use appeal_hw::{DeviceSpec, LinkQueue};
use appealnet_core::serve::{RoutingPolicy, Scorer};

/// Per-node accounting, reconciled against the fleet totals by
/// [`crate::FleetMetrics::check`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Requests routed to this node.
    pub requests: u64,
    /// Requests the little network answered (score ≥ δ).
    pub edge_answered: u64,
    /// Requests appealed to and answered by the cloud.
    pub cloud_answered: u64,
    /// Appeals shed because the uplink queue was full; answered on the edge.
    pub link_fallbacks: u64,
    /// Appeals denied by the adaptive budget; answered on the edge.
    pub budget_denied: u64,
    /// Requests that wanted the cloud but degraded to the little net's
    /// answer (breaker open or retry budget exhausted).
    pub degraded_local: u64,
    /// Appeal sends refused by an open (or probe-saturated) breaker.
    pub breaker_denied: u64,
    /// Appeal retransmissions scheduled after a failed attempt.
    pub retries: u64,
    /// Appeal attempts whose answer missed the per-attempt deadline.
    pub appeal_timeouts: u64,
    /// Appeal attempts refused by the link itself (loss 1.0 or retransmit
    /// budget exhausted → `HwError::LinkDown`).
    pub link_down: u64,
    /// *Retry* attempts shed by a full uplink queue (first-attempt sheds
    /// stay `link_fallbacks`).
    pub appeal_queue_full: u64,
    /// Appeals that reached a blacked-out cloud and vanished.
    pub blackout_drops: u64,
    /// Cloud answers dropped on the way back by a scripted fault.
    pub response_drops: u64,
    /// Cloud answers delivered corrupted by a scripted fault.
    pub response_corrupt: u64,
    /// Cloud answers that arrived after their request had already resolved
    /// (timed out and degraded, or answered by another attempt).
    pub late_responses: u64,
    /// Arrivals stalled because the node was crashed at the time.
    pub crash_stalls: u64,
    /// Virtual nanoseconds this node's compute was busy.
    pub busy_nanos: u64,
}

/// One edge node of the simulated fleet.
///
/// The node's little-net forward pass is modeled as a single-server FIFO:
/// a request arriving while the device is busy waits for every earlier
/// request to finish (`start = max(arrival, busy_until)`), which is what
/// gives each node its own `DeviceSpec` clock.
pub struct EdgeNode {
    id: usize,
    pub(crate) scorer: Box<dyn Scorer>,
    pub(crate) policy: Box<dyn RoutingPolicy>,
    pub(crate) adaptive: Option<AdaptiveBudget>,
    pub(crate) breaker: Option<CircuitBreaker>,
    pub(crate) uplink: LinkQueue,
    pub(crate) stats: NodeStats,
    service_nanos: u64,
    busy_until_nanos: u64,
}

impl EdgeNode {
    /// Assembles a node. The per-request service time is the device-model
    /// latency of one little-net forward pass (floored at 1 ns so queueing
    /// stays well-ordered even for absurdly fast devices).
    pub fn new(
        id: usize,
        scorer: Box<dyn Scorer>,
        policy: Box<dyn RoutingPolicy>,
        adaptive: Option<AdaptiveBudget>,
        device: &DeviceSpec,
        uplink: LinkQueue,
    ) -> Self {
        let service_nanos = ms_to_nanos(device.latency_ms(scorer.flops())).max(1);
        Self {
            id,
            scorer,
            policy,
            adaptive,
            breaker: None,
            uplink,
            stats: NodeStats::default(),
            service_nanos,
            busy_until_nanos: 0,
        }
    }

    /// Installs a circuit breaker on this node's appeal path.
    pub fn with_breaker(mut self, breaker: CircuitBreaker) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// The appeal circuit breaker, if one is installed.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// This node's index in the fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// This node's accounting so far.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The adaptive budget controller, if one is configured.
    pub fn adaptive(&self) -> Option<&AdaptiveBudget> {
        self.adaptive.as_ref()
    }

    /// Transfers accepted by this node's uplink queue.
    pub fn uplink_accepted(&self) -> u64 {
        self.uplink.accepted()
    }

    /// Transfers rejected (queue full) by this node's uplink queue.
    pub fn uplink_rejected(&self) -> u64 {
        self.uplink.rejected()
    }

    /// Enqueues one request's edge pass at `arrival_nanos`; returns when the
    /// pass completes on this node's clock.
    pub(crate) fn schedule(&mut self, arrival_nanos: u64) -> u64 {
        let start = arrival_nanos.max(self.busy_until_nanos);
        let done = start.saturating_add(self.service_nanos);
        self.busy_until_nanos = done;
        self.stats.requests += 1;
        self.stats.busy_nanos += self.service_nanos;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_hw::LinkQueue;
    use appeal_models::{ModelFamily, ModelSpec};
    use appeal_tensor::SeededRng;
    use appealnet_core::serve::{QScorer, ThresholdPolicy};
    use appealnet_core::TwoHeadNet;

    fn node() -> EdgeNode {
        let mut rng = SeededRng::new(5);
        let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 4).build(&mut rng);
        let scorer = QScorer::new(TwoHeadNet::from_parts(little, &mut rng));
        EdgeNode::new(
            0,
            Box::new(scorer),
            Box::new(ThresholdPolicy::new(0.5).unwrap()),
            None,
            &DeviceSpec::mobile_soc(),
            LinkQueue::new(8).unwrap(),
        )
    }

    #[test]
    fn back_to_back_arrivals_queue_fifo() {
        let mut n = node();
        let first = n.schedule(1_000);
        assert!(first > 1_000);
        let service = first - 1_000;
        // Arrives while busy: waits for the first pass.
        let second = n.schedule(1_000);
        assert_eq!(second, first + service);
        // Arrives long after the queue drained: starts at its arrival.
        let third = n.schedule(second + 1_000_000);
        assert_eq!(third, second + 1_000_000 + service);
        assert_eq!(n.stats().requests, 3);
        assert_eq!(n.stats().busy_nanos, 3 * service);
    }
}
