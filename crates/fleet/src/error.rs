//! Typed errors of the fleet-simulator constructors.

use appeal_hw::HwError;
use appealnet_core::CoreError;
use std::fmt;

/// Errors returned when assembling a fleet simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The fleet must contain at least one edge node.
    NoNodes,
    /// A simulation parameter is out of range.
    InvalidConfig {
        /// What was wrong, e.g. `"adaptive window must be positive"`.
        what: &'static str,
    },
    /// An error from the serving core (e.g. an invalid routing threshold).
    Core(CoreError),
    /// An error from the hardware model (e.g. an invalid link spec).
    Hw(HwError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoNodes => write!(f, "fleet must contain at least one edge node"),
            FleetError::InvalidConfig { what } => write!(f, "invalid fleet config: {what}"),
            FleetError::Core(err) => write!(f, "core error: {err}"),
            FleetError::Hw(err) => write!(f, "hardware model error: {err}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Core(err) => Some(err),
            FleetError::Hw(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoreError> for FleetError {
    fn from(err: CoreError) -> Self {
        FleetError::Core(err)
    }
}

impl From<HwError> for FleetError {
    fn from(err: HwError) -> Self {
        FleetError::Hw(err)
    }
}

/// Convenience alias for fleet-simulator results.
pub type FleetResult<T> = Result<T, FleetError>;

/// True iff `value` is a positive number (rejecting NaN).
pub(crate) fn is_positive(value: f64) -> bool {
    value > 0.0
}

/// True iff `value` is a non-negative number (rejecting NaN).
pub(crate) fn is_non_negative(value: f64) -> bool {
    value >= 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_wraps_sources() {
        let core: FleetError = CoreError::InvalidThreshold(2.0).into();
        assert!(core.to_string().contains("core error"));
        let hw: FleetError = HwError::ZeroCapacity { field: "capacity" }.into();
        assert!(hw.to_string().contains("hardware model"));
        use std::error::Error;
        assert!(core.source().is_some());
        assert!(FleetError::NoNodes.source().is_none());
        assert!(FleetError::InvalidConfig { what: "x" }
            .to_string()
            .contains('x'));
    }
}
