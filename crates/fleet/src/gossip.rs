//! Deterministic gossip of per-node health digests.
//!
//! Every gossip round each node packages its own appeal-path health into a
//! [`HealthDigest`](crate::health::HealthDigest) and pushes it — together
//! with everything it has heard about other nodes — to a small random peer
//! set. Receivers merge entries newest-first into their
//! [`FleetHealthView`](crate::health::FleetHealthView); older-than-known
//! entries are dropped as stale and ledgered. Delivery is modeled as
//! instantaneous and reliable (digests are a handful of bytes next to the
//! kilobyte-scale appeal tensors, and gossip redundancy masks loss), so the
//! interesting dynamics — propagation rounds, staleness decay, quorum
//! crossings — come from the *round structure*, not a second link model.
//!
//! Determinism contract: round timing and peer selection draw from two
//! dedicated [`SeededRng`] streams salted off the fleet seed. The simulator's
//! image and link streams are never touched, so
//! [`GossipConfig::disabled()`] replays the exact PR 8 event sequence
//! byte-for-byte, and an enabled plane is itself a pure function of
//! `(fleet seed, gossip config)`.

use crate::error::{is_positive, FleetError, FleetResult};
use crate::ms_to_nanos;
use appeal_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Stream salts for the gossip plane's two dedicated RNG streams. Arbitrary
/// odd constants; they only need to differ from each other and from the
/// simulator's image/link salts.
const TIMING_SALT: u64 = 0xA076_1D64_78BD_642F;
const PEER_SALT: u64 = 0xE703_7ED1_A0B4_28DB;

/// Parameters of the fleet health gossip plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Master switch. Disabled means *no gossip events exist at all*: the
    /// simulator schedules nothing and replays the pre-gossip event
    /// sequence byte-for-byte.
    pub enabled: bool,
    /// Nominal gap between gossip rounds, in virtual milliseconds.
    pub interval_ms: f64,
    /// Relative round-timing jitter in `[0, 1)`: each gap is drawn uniformly
    /// from `interval · [1 − jitter, 1 + jitter]`, desynchronising rounds
    /// from the request arrival process.
    pub jitter: f64,
    /// How many distinct peers each node pushes to per round.
    pub fanout: usize,
    /// Staleness horizon, in milliseconds: a digest's weight decays linearly
    /// from 1 to 0 over this age, and fully decayed entries stop counting
    /// toward quorum or elections.
    pub stale_ms: f64,
}

impl GossipConfig {
    /// Gossip off — the byte-identical pre-gossip baseline.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            interval_ms: 0.0,
            jitter: 0.0,
            fanout: 0,
            stale_ms: 0.0,
        }
    }

    /// A plane tuned for the simulator's millisecond-scale fleets: rounds
    /// every 10 ms (±20 %), push to 2 peers, 80 ms staleness horizon — a
    /// breaker trip reaches the whole fleet within a few rounds and fades
    /// out well before the default 200 ms open timer expires.
    pub fn default_for_fleet() -> Self {
        Self {
            enabled: true,
            interval_ms: 10.0,
            jitter: 0.2,
            fanout: 2,
            stale_ms: 80.0,
        }
    }

    /// Validates the config. A disabled plane is always valid; an enabled
    /// one needs a positive interval and horizon, jitter in `[0, 1)`, and at
    /// least one peer of fanout.
    pub fn validate(&self) -> FleetResult<()> {
        if !self.enabled {
            return Ok(());
        }
        if !is_positive(self.interval_ms) {
            return Err(FleetError::InvalidConfig {
                what: "gossip interval_ms must be positive",
            });
        }
        if !(self.jitter >= 0.0 && self.jitter < 1.0) {
            return Err(FleetError::InvalidConfig {
                what: "gossip jitter must be in [0, 1)",
            });
        }
        if self.fanout == 0 {
            return Err(FleetError::InvalidConfig {
                what: "gossip fanout must be positive",
            });
        }
        if !is_positive(self.stale_ms) {
            return Err(FleetError::InvalidConfig {
                what: "gossip stale_ms must be positive",
            });
        }
        Ok(())
    }

    /// The staleness horizon in virtual nanoseconds.
    pub fn stale_nanos(&self) -> u64 {
        ms_to_nanos(self.stale_ms)
    }
}

/// The gossip plane's deterministic scheduling state: round timing and peer
/// selection, each on its own seeded stream.
pub struct GossipPlane {
    config: GossipConfig,
    timing_rng: SeededRng,
    peer_rng: SeededRng,
}

impl GossipPlane {
    /// Builds the plane for a validated, enabled config, salting both
    /// streams off the fleet seed so they are independent of the simulator's
    /// image and link streams.
    pub fn new(config: GossipConfig, fleet_seed: u64) -> Self {
        Self {
            config,
            timing_rng: SeededRng::new(fleet_seed ^ TIMING_SALT),
            peer_rng: SeededRng::new(fleet_seed ^ PEER_SALT),
        }
    }

    /// The configuration the plane runs under.
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Virtual time of the next round after `now_nanos`: one jittered
    /// interval ahead, and always at least 1 ns so rounds make progress.
    pub fn next_round_nanos(&mut self, now_nanos: u64) -> u64 {
        let factor = if self.config.jitter > 0.0 {
            let j = self.config.jitter;
            f64::from(self.timing_rng.uniform((1.0 - j) as f32, (1.0 + j) as f32))
        } else {
            1.0
        };
        now_nanos.saturating_add(ms_to_nanos(self.config.interval_ms * factor).max(1))
    }

    /// Draws `node`'s push targets for one round: `min(fanout, nodes − 1)`
    /// distinct peers, never the node itself, via a partial Fisher–Yates
    /// shuffle on the peer stream. Deterministic in draw order: the
    /// simulator calls this for node 0, 1, … each round.
    pub fn select_peers(&mut self, node: usize, nodes: usize) -> Vec<usize> {
        let mut candidates: Vec<usize> = (0..nodes).filter(|&p| p != node).collect();
        let picks = self.config.fanout.min(candidates.len());
        let mut peers = Vec::with_capacity(picks);
        for i in 0..picks {
            let j = i + self.peer_rng.below(candidates.len() - i);
            candidates.swap(i, j);
            peers.push(candidates[i]);
        }
        peers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_valid_and_enabled_is_checked() {
        assert!(GossipConfig::disabled().validate().is_ok());
        assert!(GossipConfig::default_for_fleet().validate().is_ok());
        for bad in [
            GossipConfig {
                interval_ms: 0.0,
                ..GossipConfig::default_for_fleet()
            },
            GossipConfig {
                jitter: 1.0,
                ..GossipConfig::default_for_fleet()
            },
            GossipConfig {
                jitter: -0.1,
                ..GossipConfig::default_for_fleet()
            },
            GossipConfig {
                fanout: 0,
                ..GossipConfig::default_for_fleet()
            },
            GossipConfig {
                stale_ms: f64::NAN,
                ..GossipConfig::default_for_fleet()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn peer_selection_is_distinct_and_excludes_self() {
        let mut plane = GossipPlane::new(GossipConfig::default_for_fleet(), 2021);
        for node in 0..4 {
            for _ in 0..64 {
                let peers = plane.select_peers(node, 4);
                assert_eq!(peers.len(), 2);
                assert!(!peers.contains(&node));
                assert_ne!(peers[0], peers[1]);
            }
        }
    }

    #[test]
    fn fanout_clamps_to_fleet_size() {
        let mut plane = GossipPlane::new(
            GossipConfig {
                fanout: 8,
                ..GossipConfig::default_for_fleet()
            },
            7,
        );
        let peers = plane.select_peers(0, 3);
        assert_eq!(peers.len(), 2, "only 2 other nodes exist");
        let mut sorted = peers.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
        assert!(plane.select_peers(0, 1).is_empty(), "singleton fleet");
    }

    #[test]
    fn round_timing_is_jittered_within_bounds_and_deterministic() {
        let gaps = |seed| {
            let mut plane = GossipPlane::new(GossipConfig::default_for_fleet(), seed);
            let mut now = 0;
            (0..32)
                .map(|_| {
                    let next = plane.next_round_nanos(now);
                    let gap = next - now;
                    now = next;
                    gap
                })
                .collect::<Vec<_>>()
        };
        let a = gaps(2021);
        assert_eq!(a, gaps(2021), "same seed, same schedule");
        assert_ne!(a, gaps(2022));
        let interval = ms_to_nanos(10.0);
        for gap in &a {
            assert!(
                *gap >= (interval as f64 * 0.8 - 2.0) as u64
                    && *gap <= (interval as f64 * 1.2 + 2.0) as u64,
                "gap {gap} outside ±20% of {interval}"
            );
        }
    }

    #[test]
    fn zero_jitter_ticks_at_the_exact_interval() {
        let mut plane = GossipPlane::new(
            GossipConfig {
                jitter: 0.0,
                ..GossipConfig::default_for_fleet()
            },
            1,
        );
        assert_eq!(plane.next_round_nanos(0), ms_to_nanos(10.0));
    }
}
