//! The cloud tier: the big network behind a size-or-deadline batching queue
//! on a shared GPU clock.
//!
//! This mirrors `appealnet_core::server::MicroBatcher`'s flush discipline —
//! flush when `max_batch` appeals are pending or when the *oldest* pending
//! appeal reaches its coalescing deadline — recast for virtual time: the
//! simulator drives it from discrete events instead of a polling thread.
//! Labels come from a real forward pass of the big network (via
//! `parallel::classifier_logits`, whose argmax rows are bit-identical across
//! [`ChunkPolicy`] shardings), so the simulated cloud answers with the same
//! model the serving engine would use.

use crate::error::{is_non_negative, is_positive, FleetError, FleetResult};
use crate::ms_to_nanos;
use appeal_hw::DeviceSpec;
use appeal_models::ClassifierParts;
use appeal_tensor::Tensor;
use appealnet_core::{parallel, ChunkPolicy};

/// Cloud-tier parameters.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// The GPU-class device the big network runs on.
    pub device: DeviceSpec,
    /// Flush as soon as this many appeals are pending.
    pub max_batch: usize,
    /// Flush when the oldest pending appeal has waited this long, in
    /// milliseconds.
    pub deadline_ms: f64,
    /// Fixed per-batch overhead (kernel launch, scheduling), in milliseconds.
    pub batch_overhead_ms: f64,
    /// Ingress backpressure: shed an arriving appeal outright when the GPU
    /// backlog already exceeds this, in milliseconds. `None` (the default
    /// baseline) never sheds. A shed appeal vanishes like a blackout drop —
    /// the edge learns via its appeal deadline — so configuring this
    /// requires a recovery policy.
    pub shed_backlog_ms: Option<f64>,
}

/// One appeal waiting in the cloud's batching queue.
#[derive(Debug, Clone, Copy)]
pub struct PendingAppeal {
    /// Fleet-wide request index (addresses the pregenerated image tensor).
    pub request: usize,
    /// Edge node that appealed.
    pub node: usize,
    /// Virtual time the node committed to offloading (for round-trip
    /// feedback to the node's adaptive budget).
    pub decided_nanos: u64,
    /// Virtual time the appeal reached the cloud.
    pub arrived_nanos: u64,
    /// Transmission attempt this appeal rode in on (1 = first send); echoed
    /// back so the edge can match answers against its retry state.
    pub attempt: u32,
}

/// What the simulator should do after offering an appeal to the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudPush {
    /// The queue reached `max_batch`: flush immediately.
    FlushNow,
    /// First pending appeal: schedule a deadline check at this virtual time.
    ScheduleDeadline(u64),
    /// Queued behind earlier appeals; a deadline check is already scheduled.
    Queued,
    /// Shed at ingress: the GPU backlog exceeded `shed_backlog_ms`. The
    /// appeal was *not* queued and will never be answered; the edge's appeal
    /// deadline discovers the loss.
    Shed,
}

/// The backpressure signal the cloud piggybacks on every appeal response,
/// folded into each node's [`FleetHealthView`](crate::health::FleetHealthView)
/// at zero message cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudSignal {
    /// Appeals in the flushed batch (the batching-queue depth at flush).
    pub queue_depth: u32,
    /// How far the GPU clock was behind the flush instant, in milliseconds —
    /// the same backlog the shed gate reads.
    pub backlog_ms: f64,
    /// Cumulative fraction of offered appeals shed at ingress so far.
    pub shed_rate: f64,
}

/// One cloud answer on its way back down.
#[derive(Debug, Clone, Copy)]
pub struct CloudResponse {
    /// Fleet-wide request index.
    pub request: usize,
    /// Edge node awaiting the answer.
    pub node: usize,
    /// When the node committed to offloading.
    pub decided_nanos: u64,
    /// Transmission attempt the appeal rode in on.
    pub attempt: u32,
    /// The big network's label.
    pub label: usize,
    /// The cloud's backpressure signal at the answering flush.
    pub signal: CloudSignal,
}

/// A flushed batch: its answers and when the GPU finished computing them.
#[derive(Debug, Clone)]
pub struct CloudBatch {
    /// Virtual time the batch's forward pass completes.
    pub done_nanos: u64,
    /// Per-appeal answers, in queue order.
    pub responses: Vec<CloudResponse>,
}

/// The cloud tier itself.
pub struct CloudTier {
    big: ClassifierParts,
    chunk: ChunkPolicy,
    config: CloudConfig,
    deadline_nanos: u64,
    flops_per_sample: u64,
    pending: Vec<PendingAppeal>,
    gpu_free_nanos: u64,
    busy_nanos: u64,
    batches: u64,
    served: u64,
    offered: u64,
    shed: u64,
}

impl CloudTier {
    /// Creates the cloud tier.
    ///
    /// Returns [`FleetError::InvalidConfig`] if `max_batch` is zero or a
    /// latency parameter is negative/NaN.
    pub fn new(big: ClassifierParts, chunk: ChunkPolicy, config: CloudConfig) -> FleetResult<Self> {
        if config.max_batch == 0 {
            return Err(FleetError::InvalidConfig {
                what: "cloud max_batch must be positive",
            });
        }
        if !is_non_negative(config.deadline_ms) {
            return Err(FleetError::InvalidConfig {
                what: "cloud deadline_ms must be non-negative",
            });
        }
        if !is_non_negative(config.batch_overhead_ms) {
            return Err(FleetError::InvalidConfig {
                what: "cloud batch_overhead_ms must be non-negative",
            });
        }
        if let Some(limit) = config.shed_backlog_ms {
            if !is_positive(limit) {
                return Err(FleetError::InvalidConfig {
                    what: "cloud shed_backlog_ms must be positive",
                });
            }
        }
        let deadline_nanos = ms_to_nanos(config.deadline_ms);
        let flops_per_sample = big.total_flops();
        Ok(Self {
            big,
            chunk,
            config,
            deadline_nanos,
            flops_per_sample,
            pending: Vec::new(),
            gpu_free_nanos: 0,
            busy_nanos: 0,
            batches: 0,
            served: 0,
            offered: 0,
            shed: 0,
        })
    }

    /// Offers one appeal to the batching queue at virtual time `now_nanos`.
    /// With `shed_backlog_ms` configured, an appeal arriving while the GPU
    /// backlog exceeds the limit is shed at ingress instead of queued.
    pub fn push(&mut self, now_nanos: u64, appeal: PendingAppeal) -> CloudPush {
        self.offered += 1;
        if let Some(limit) = self.config.shed_backlog_ms {
            if self.backlog_nanos(now_nanos) > ms_to_nanos(limit) {
                self.shed += 1;
                return CloudPush::Shed;
            }
        }
        let was_empty = self.pending.is_empty();
        self.pending.push(appeal);
        if self.pending.len() >= self.config.max_batch {
            CloudPush::FlushNow
        } else if was_empty {
            CloudPush::ScheduleDeadline(now_nanos.saturating_add(self.deadline_nanos))
        } else {
            CloudPush::Queued
        }
    }

    /// How far the GPU clock is behind `now_nanos` — the backlog both the
    /// shed gate and the piggybacked signal report.
    fn backlog_nanos(&self, now_nanos: u64) -> u64 {
        self.gpu_free_nanos.saturating_sub(now_nanos)
    }

    /// The cumulative fraction of offered appeals shed at ingress.
    fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// Whether a deadline check firing at `now_nanos` should flush: true iff
    /// the oldest pending appeal has exhausted its coalescing deadline.
    /// Stale checks (their batch already flushed by size) report false.
    pub fn deadline_due(&self, now_nanos: u64) -> bool {
        self.pending.first().is_some_and(|oldest| {
            oldest.arrived_nanos.saturating_add(self.deadline_nanos) <= now_nanos
        })
    }

    /// Flushes every pending appeal as one batch: runs the big network over
    /// the selected rows of `images` and schedules the batch on the GPU
    /// clock (`start = max(now, gpu_free)`). Returns `None` if nothing is
    /// pending.
    pub fn flush(&mut self, now_nanos: u64, images: &Tensor) -> Option<CloudBatch> {
        if self.pending.is_empty() {
            return None;
        }
        let appeals = std::mem::take(&mut self.pending);
        let rows: Vec<usize> = appeals.iter().map(|a| a.request).collect();
        let batch = images.select_rows(&rows);
        let labels = parallel::classifier_logits(&mut self.big, &batch, rows.len(), &self.chunk)
            .argmax_rows();
        let n = appeals.len() as u64;
        // The backpressure signal reads the GPU clock *before* this batch is
        // scheduled onto it: the backlog an appeal arriving right now would
        // queue behind.
        let signal = CloudSignal {
            queue_depth: appeals.len() as u32,
            backlog_ms: self.backlog_nanos(now_nanos) as f64 / 1e6,
            shed_rate: self.shed_rate(),
        };
        let service_ms = self.config.batch_overhead_ms
            + self
                .config
                .device
                .latency_ms(self.flops_per_sample.saturating_mul(n));
        let start = now_nanos.max(self.gpu_free_nanos);
        let done = start.saturating_add(ms_to_nanos(service_ms));
        self.gpu_free_nanos = done;
        self.busy_nanos += done - start;
        self.batches += 1;
        self.served += n;
        let responses = appeals
            .iter()
            .zip(labels)
            .map(|(a, label)| CloudResponse {
                request: a.request,
                node: a.node,
                decided_nanos: a.decided_nanos,
                attempt: a.attempt,
                label,
                signal,
            })
            .collect();
        Some(CloudBatch {
            done_nanos: done,
            responses,
        })
    }

    /// Virtual nanoseconds the GPU spent computing.
    pub fn busy_nanos(&self) -> u64 {
        self.busy_nanos
    }

    /// Batches flushed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Appeals answered so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Appeals currently waiting for a flush.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Appeals shed at ingress by the backlog gate.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// What the big network *would* have answered for the given request
    /// rows — the counterfactual behind the degraded-answer accuracy ledger.
    /// Pure accounting: touches no clock, queue, or counter, so calling it
    /// cannot perturb a run's timing or its byte-reproducibility.
    pub fn counterfactual_labels(&mut self, images: &Tensor, rows: &[usize]) -> Vec<usize> {
        if rows.is_empty() {
            return Vec::new();
        }
        let batch = images.select_rows(rows);
        parallel::classifier_logits(&mut self.big, &batch, rows.len(), &self.chunk).argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_models::ModelSpec;
    use appeal_tensor::SeededRng;

    fn tier(max_batch: usize, deadline_ms: f64) -> CloudTier {
        let mut rng = SeededRng::new(9);
        let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        CloudTier::new(
            big,
            ChunkPolicy::sequential(),
            CloudConfig {
                device: DeviceSpec::cloud_gpu(),
                max_batch,
                deadline_ms,
                batch_overhead_ms: 1.0,
                shed_backlog_ms: None,
            },
        )
        .unwrap()
    }

    fn appeal(request: usize, arrived: u64) -> PendingAppeal {
        PendingAppeal {
            request,
            node: 0,
            decided_nanos: arrived,
            arrived_nanos: arrived,
            attempt: 1,
        }
    }

    #[test]
    fn size_trigger_fires_at_max_batch() {
        let mut t = tier(3, 5.0);
        assert_eq!(
            t.push(0, appeal(0, 0)),
            CloudPush::ScheduleDeadline(5_000_000)
        );
        assert_eq!(t.push(10, appeal(1, 10)), CloudPush::Queued);
        assert_eq!(t.push(20, appeal(2, 20)), CloudPush::FlushNow);
    }

    #[test]
    fn stale_deadline_checks_are_ignored() {
        let mut t = tier(2, 5.0);
        t.push(0, appeal(0, 0));
        t.push(1, appeal(1, 1)); // size flush will consume both
        let mut rng = SeededRng::new(3);
        let images = Tensor::randn(&[4, 3, 12, 12], &mut rng);
        let batch = t.flush(2, &images).unwrap();
        assert_eq!(batch.responses.len(), 2);
        // The deadline scheduled for request 0 fires into an empty queue.
        assert!(!t.deadline_due(5_000_000));
        // A fresh appeal's deadline is due only once it has waited out.
        t.push(6_000_000, appeal(2, 6_000_000));
        assert!(!t.deadline_due(6_000_001));
        assert!(t.deadline_due(11_000_000));
    }

    #[test]
    fn gpu_clock_serializes_batches() {
        let mut t = tier(1, 5.0);
        let mut rng = SeededRng::new(3);
        let images = Tensor::randn(&[4, 3, 12, 12], &mut rng);
        t.push(0, appeal(0, 0));
        let first = t.flush(0, &images).unwrap();
        let service = first.done_nanos;
        assert!(service >= ms_to_nanos(1.0), "at least the batch overhead");
        // A second batch arriving while the GPU is busy starts after it.
        t.push(1, appeal(1, 1));
        let second = t.flush(1, &images).unwrap();
        assert_eq!(second.done_nanos, service + service);
        assert_eq!(t.busy_nanos(), 2 * service);
        assert_eq!(t.batches(), 2);
        assert_eq!(t.served(), 2);
    }

    #[test]
    fn labels_match_a_direct_big_pass() {
        let mut rng = SeededRng::new(9);
        let mut big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        let mut t = tier(4, 5.0);
        let mut img_rng = SeededRng::new(3);
        let images = Tensor::randn(&[4, 3, 12, 12], &mut img_rng);
        for i in 0..4 {
            t.push(i as u64, appeal(i, i as u64));
        }
        let batch = t.flush(4, &images).unwrap();
        let direct = big.forward(&images, false).argmax_rows();
        let got: Vec<usize> = batch.responses.iter().map(|r| r.label).collect();
        assert_eq!(got, direct);
    }

    #[test]
    fn rejects_invalid_config() {
        let mut rng = SeededRng::new(9);
        let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        let bad = CloudTier::new(
            big,
            ChunkPolicy::sequential(),
            CloudConfig {
                device: DeviceSpec::cloud_gpu(),
                max_batch: 0,
                deadline_ms: 5.0,
                batch_overhead_ms: 1.0,
                shed_backlog_ms: None,
            },
        );
        assert!(matches!(bad, Err(FleetError::InvalidConfig { .. })));
        let mut rng = SeededRng::new(9);
        let big = ModelSpec::big([3, 12, 12], 4).build(&mut rng);
        let bad_shed = CloudTier::new(
            big,
            ChunkPolicy::sequential(),
            CloudConfig {
                device: DeviceSpec::cloud_gpu(),
                max_batch: 8,
                deadline_ms: 5.0,
                batch_overhead_ms: 1.0,
                shed_backlog_ms: Some(0.0),
            },
        );
        assert!(matches!(bad_shed, Err(FleetError::InvalidConfig { .. })));
    }

    #[test]
    fn responses_carry_the_backpressure_signal() {
        let mut t = tier(2, 5.0);
        let mut rng = SeededRng::new(3);
        let images = Tensor::randn(&[4, 3, 12, 12], &mut rng);
        t.push(0, appeal(0, 0));
        t.push(0, appeal(1, 0));
        let first = t.flush(0, &images).unwrap();
        for r in &first.responses {
            assert_eq!(r.signal.queue_depth, 2);
            assert_eq!(r.signal.backlog_ms, 0.0, "idle GPU, no backlog");
            assert_eq!(r.signal.shed_rate, 0.0);
        }
        // A batch flushed while the GPU is still busy reports the backlog an
        // arriving appeal would queue behind.
        t.push(1, appeal(2, 1));
        let second = t.flush(1, &images).unwrap();
        let expected_ms = (first.done_nanos - 1) as f64 / 1e6;
        let got = second.responses[0].signal.backlog_ms;
        assert!((got - expected_ms).abs() < 1e-9, "{got} vs {expected_ms}");
    }

    #[test]
    fn backlog_gate_sheds_at_ingress_and_reports_the_rate() {
        let mut t = tier(1, 5.0);
        // The gate must sit under the 1 ms batch overhead so one in-flight
        // batch is enough backlog to trip it.
        t.config.shed_backlog_ms = Some(0.5);
        let mut rng = SeededRng::new(3);
        let images = Tensor::randn(&[4, 3, 12, 12], &mut rng);
        assert_eq!(t.push(0, appeal(0, 0)), CloudPush::FlushNow);
        let batch = t.flush(0, &images).unwrap();
        assert!(batch.done_nanos > ms_to_nanos(0.5), "backlog now over gate");
        // While the GPU backlog exceeds the gate, pushes shed...
        assert_eq!(t.push(1, appeal(1, 1)), CloudPush::Shed);
        assert_eq!(t.shed(), 1);
        assert_eq!(t.pending_len(), 0, "shed appeals are never queued");
        // ...and once it drains, pushes queue again.
        assert_eq!(
            t.push(batch.done_nanos, appeal(2, batch.done_nanos)),
            CloudPush::FlushNow
        );
        let second = t.flush(batch.done_nanos, &images).unwrap();
        let rate = second.responses[0].signal.shed_rate;
        assert!(
            (rate - 1.0 / 3.0).abs() < 1e-12,
            "1 of 3 offers shed: {rate}"
        );
    }
}
