//! Per-node circuit breaker for the appeal path.
//!
//! The [`AdaptiveBudget`](crate::AdaptiveBudget) answers "how much offload
//! can I afford this window?" — a *cost* question. The breaker answers a
//! different one: "is the appeal path *working at all*?". Each edge node
//! feeds both controllers from the same measured appeal stream: round-trips
//! go to `AdaptiveBudget::observe` and to [`CircuitBreaker::on_success`];
//! typed failures (link down, appeal deadline, corrupted response) go to
//! [`CircuitBreaker::on_failure`]. When the rolling failure fraction —
//! counting over-RTT successes as failures — crosses the threshold, the
//! breaker trips and the node stops appealing entirely, degrading to
//! edge-only answers until a timed half-open probe shows the path healthy
//! again.
//!
//! State machine (virtual time, no wall clock):
//!
//! ```text
//!            failure fraction ≥ threshold over a full window
//!   Closed ────────────────────────────────────────────────▶ Open
//!     ▲                                                       │
//!     │ `probes` consecutive probe successes                  │ `open_ms`
//!     │                                                       ▼
//!   HalfOpen ◀────────────────────────────────────────────────┘
//!     │
//!     └── any probe failure ▶ Open (timer restarts)
//! ```

use crate::error::{is_positive, FleetError, FleetResult};
use crate::ms_to_nanos;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters of the per-node appeal circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Rolling outcome-window size; the breaker only trips once it has seen
    /// this many appeal outcomes.
    pub window: usize,
    /// Failure fraction over the window at which the breaker opens, in
    /// `(0, 1]`.
    pub failure_threshold: f64,
    /// Successful appeals slower than this round-trip count as failures, in
    /// milliseconds.
    pub slow_ms: f64,
    /// How long the breaker stays open before probing, in virtual
    /// milliseconds.
    pub open_ms: f64,
    /// Consecutive half-open probe successes required to close.
    pub probes: u32,
}

impl BreakerConfig {
    /// A breaker tuned for the simulator's LTE-class appeal path: trips when
    /// half of the last 16 appeals fail or crawl, backs off 200 ms, and
    /// needs 3 clean probes to close.
    pub fn default_for_appeals() -> Self {
        Self {
            window: 16,
            failure_threshold: 0.5,
            slow_ms: 250.0,
            open_ms: 200.0,
            probes: 3,
        }
    }

    fn validate(&self) -> FleetResult<()> {
        if self.window == 0 {
            return Err(FleetError::InvalidConfig {
                what: "breaker window must be positive",
            });
        }
        if !(self.failure_threshold > 0.0 && self.failure_threshold <= 1.0) {
            return Err(FleetError::InvalidConfig {
                what: "breaker failure_threshold must be in (0, 1]",
            });
        }
        if !is_positive(self.slow_ms) {
            return Err(FleetError::InvalidConfig {
                what: "breaker slow_ms must be positive",
            });
        }
        if !is_positive(self.open_ms) {
            return Err(FleetError::InvalidConfig {
                what: "breaker open_ms must be positive",
            });
        }
        if self.probes == 0 {
            return Err(FleetError::InvalidConfig {
                what: "breaker probes must be positive",
            });
        }
        Ok(())
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Appeals flow normally; outcomes fill the rolling window.
    Closed,
    /// Appeals are refused until the open timer expires.
    Open,
    /// A limited number of probe appeals test whether the path recovered.
    HalfOpen,
}

/// Per-node circuit breaker over appeal outcomes, driven entirely by the
/// simulator's virtual clock.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Rolling window of outcomes in `Closed`; `true` records a failure.
    window: VecDeque<bool>,
    /// Virtual time at which an `Open` breaker starts probing.
    probe_at_nanos: u64,
    /// Probes admitted but not yet resolved while `HalfOpen`.
    probes_in_flight: u32,
    /// Consecutive probe successes while `HalfOpen`.
    probe_successes: u32,
    opened: u64,
    half_opened: u64,
    closed: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker, validating the configuration.
    pub fn new(config: BreakerConfig) -> FleetResult<Self> {
        config.validate()?;
        Ok(Self {
            config,
            state: BreakerState::Closed,
            window: VecDeque::with_capacity(config.window),
            probe_at_nanos: 0,
            probes_in_flight: 0,
            probe_successes: 0,
            opened: 0,
            half_opened: 0,
            closed: 0,
        })
    }

    /// The current state, advancing `Open → HalfOpen` if the open timer has
    /// expired by `now_nanos`.
    pub fn state(&mut self, now_nanos: u64) -> BreakerState {
        if self.state == BreakerState::Open && now_nanos >= self.probe_at_nanos {
            self.state = BreakerState::HalfOpen;
            self.probes_in_flight = 0;
            self.probe_successes = 0;
            self.half_opened += 1;
        }
        self.state
    }

    /// Whether one more appeal may be sent at `now_nanos`. Closed: always.
    /// Open: never (until the timer flips the state half-open). Half-open:
    /// only while fewer than `probes` probes are unresolved.
    pub fn allows(&mut self, now_nanos: u64) -> bool {
        match self.state(now_nanos) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probes_in_flight < self.config.probes {
                    self.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a completed appeal round-trip. A success slower than
    /// `slow_ms` counts as a failure — a path that technically delivers but
    /// blows the latency target is still a path to stop trusting.
    pub fn on_success(&mut self, now_nanos: u64, round_trip_ms: f64) {
        self.resolve(now_nanos, round_trip_ms > self.config.slow_ms);
    }

    /// Records a failed appeal (link down, deadline expired, response
    /// corrupted).
    pub fn on_failure(&mut self, now_nanos: u64) {
        self.resolve(now_nanos, true);
    }

    fn resolve(&mut self, now_nanos: u64, failed: bool) {
        match self.state(now_nanos) {
            BreakerState::Closed => {
                if self.window.len() == self.config.window {
                    self.window.pop_front();
                }
                self.window.push_back(failed);
                if self.window.len() == self.config.window {
                    let failures = self.window.iter().filter(|&&f| f).count();
                    if failures as f64 / self.config.window as f64 >= self.config.failure_threshold
                    {
                        self.trip(now_nanos);
                    }
                }
            }
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                if failed {
                    self.trip(now_nanos);
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.probes {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                        self.closed += 1;
                    }
                }
            }
            // A straggler response from before the trip; the open timer is
            // already running and the outcome carries no new signal.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_nanos: u64) {
        self.state = BreakerState::Open;
        self.probe_at_nanos = now_nanos.saturating_add(ms_to_nanos(self.config.open_ms));
        self.window.clear();
        self.probes_in_flight = 0;
        self.probe_successes = 0;
        self.opened += 1;
    }

    /// How many times the breaker has tripped open.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// How many times the breaker has entered half-open probing.
    pub fn half_opened(&self) -> u64 {
        self.half_opened
    }

    /// How many times the breaker has closed again after probing.
    pub fn closed(&self) -> u64 {
        self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            slow_ms: 100.0,
            open_ms: 10.0,
            probes: 2,
        }
    }

    #[test]
    fn trips_on_failure_fraction_and_recovers_via_probes() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        assert_eq!(b.state(0), BreakerState::Closed);
        b.on_success(0, 5.0);
        b.on_success(0, 5.0);
        b.on_failure(0);
        assert_eq!(b.state(0), BreakerState::Closed, "window not yet decisive");
        b.on_failure(0);
        assert_eq!(b.state(0), BreakerState::Open, "2/4 failures trips at 0.5");
        assert_eq!(b.opened(), 1);
        assert!(!b.allows(1_000));

        // 10 ms later the timer admits probes, capped at `probes` in flight.
        let probe_time = crate::ms_to_nanos(10.0);
        assert!(b.allows(probe_time));
        assert_eq!(b.state(probe_time), BreakerState::HalfOpen);
        assert!(b.allows(probe_time));
        assert!(!b.allows(probe_time), "third concurrent probe refused");

        b.on_success(probe_time, 5.0);
        assert_eq!(b.state(probe_time), BreakerState::HalfOpen);
        b.on_success(probe_time, 5.0);
        assert_eq!(b.state(probe_time), BreakerState::Closed);
        assert_eq!((b.half_opened(), b.closed()), (1, 1));
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_failure(0);
        }
        let t = crate::ms_to_nanos(10.0);
        assert!(b.allows(t));
        b.on_failure(t);
        assert_eq!(b.state(t), BreakerState::Open);
        assert_eq!(b.opened(), 2);
        // The timer restarted from the probe failure, not the first trip.
        assert!(!b.allows(t + 1));
        assert!(b.allows(t + crate::ms_to_nanos(10.0)));
    }

    #[test]
    fn slow_successes_count_as_failures() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_success(0, 500.0); // delivered, but 5x over slow_ms
        }
        assert_eq!(b.state(0), BreakerState::Open);
    }

    #[test]
    fn healthy_stream_never_trips() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for i in 0..100 {
            assert!(b.allows(i));
            b.on_success(i, 5.0);
        }
        assert_eq!(b.opened(), 0);
        assert_eq!(b.state(100), BreakerState::Closed);
    }

    #[test]
    fn straggler_outcomes_while_open_are_ignored() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_failure(0);
        }
        assert_eq!(b.state(0), BreakerState::Open);
        b.on_success(1, 5.0); // in-flight appeal from before the trip
        assert_eq!(b.state(1), BreakerState::Open);
        assert_eq!(b.opened(), 1);
    }

    #[test]
    fn rejects_invalid_configs() {
        for (bad, what) in [
            (
                BreakerConfig {
                    window: 0,
                    ..config()
                },
                "window",
            ),
            (
                BreakerConfig {
                    failure_threshold: 0.0,
                    ..config()
                },
                "failure_threshold",
            ),
            (
                BreakerConfig {
                    failure_threshold: 1.5,
                    ..config()
                },
                "failure_threshold",
            ),
            (
                BreakerConfig {
                    slow_ms: 0.0,
                    ..config()
                },
                "slow_ms",
            ),
            (
                BreakerConfig {
                    open_ms: f64::NAN,
                    ..config()
                },
                "open_ms",
            ),
            (
                BreakerConfig {
                    probes: 0,
                    ..config()
                },
                "probes",
            ),
        ] {
            match CircuitBreaker::new(bad) {
                Err(FleetError::InvalidConfig { what: msg }) => {
                    assert!(msg.contains(what), "{msg} should mention {what}")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn default_config_is_valid() {
        assert!(CircuitBreaker::new(BreakerConfig::default_for_appeals()).is_ok());
    }
}
