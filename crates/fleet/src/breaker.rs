//! Per-node circuit breaker for the appeal path.
//!
//! The [`AdaptiveBudget`](crate::AdaptiveBudget) answers "how much offload
//! can I afford this window?" — a *cost* question. The breaker answers a
//! different one: "is the appeal path *working at all*?". Each edge node
//! feeds both controllers from the same measured appeal stream: round-trips
//! go to `AdaptiveBudget::observe` and to [`CircuitBreaker::on_success`];
//! typed failures (link down, appeal deadline, corrupted response) go to
//! [`CircuitBreaker::on_failure`]. When the rolling failure fraction —
//! counting over-RTT successes as failures — crosses the threshold, the
//! breaker trips and the node stops appealing entirely, degrading to
//! edge-only answers until a timed half-open probe shows the path healthy
//! again.
//!
//! State machine (virtual time, no wall clock):
//!
//! ```text
//!            failure fraction ≥ threshold over a full window
//!   Closed ────────────────────────────────────────────────▶ Open
//!     ▲                                                       │
//!     │ `probes` consecutive probe successes                  │ `open_ms`
//!     │                                                       ▼
//!   HalfOpen ◀────────────────────────────────────────────────┘
//!     │
//!     └── any probe failure ▶ Open (timer restarts)
//! ```
//!
//! **Probe identity.** Admission is typed: [`CircuitBreaker::admit`] tells
//! the caller whether the attempt it just admitted is a half-open *probe* or
//! a regular closed-state send, and the caller echoes that tag back when the
//! attempt resolves. Only probe outcomes drive half-open transitions; a
//! straggler regular attempt (sent before the trip, resolving mid-probe) is
//! ignored instead of consuming a probe slot or closing the breaker on stale
//! evidence. Probe accounting reconciles exactly:
//! `attempts == ok + failed + orphaned + in flight`, where orphaned probes
//! are those whose window closed under them (the breaker re-tripped or
//! closed before they resolved).

use crate::error::{is_positive, FleetError, FleetResult};
use crate::ms_to_nanos;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters of the per-node appeal circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Rolling outcome-window size; the breaker only trips once it has seen
    /// this many appeal outcomes.
    pub window: usize,
    /// Failure fraction over the window at which the breaker opens, in
    /// `(0, 1]`.
    pub failure_threshold: f64,
    /// Successful appeals slower than this round-trip count as failures, in
    /// milliseconds.
    pub slow_ms: f64,
    /// How long the breaker stays open before probing, in virtual
    /// milliseconds.
    pub open_ms: f64,
    /// Consecutive half-open probe successes required to close; also the cap
    /// on concurrently in-flight probes.
    pub probes: u32,
}

impl BreakerConfig {
    /// A breaker tuned for the simulator's LTE-class appeal path: trips when
    /// half of the last 16 appeals fail or crawl, backs off 200 ms, and
    /// needs 3 clean probes to close.
    pub fn default_for_appeals() -> Self {
        Self {
            window: 16,
            failure_threshold: 0.5,
            slow_ms: 250.0,
            open_ms: 200.0,
            probes: 3,
        }
    }

    fn validate(&self) -> FleetResult<()> {
        if self.window == 0 {
            return Err(FleetError::InvalidConfig {
                what: "breaker window must be positive",
            });
        }
        if !(self.failure_threshold > 0.0 && self.failure_threshold <= 1.0) {
            return Err(FleetError::InvalidConfig {
                what: "breaker failure_threshold must be in (0, 1]",
            });
        }
        if !is_positive(self.slow_ms) {
            return Err(FleetError::InvalidConfig {
                what: "breaker slow_ms must be positive",
            });
        }
        if !is_positive(self.open_ms) {
            return Err(FleetError::InvalidConfig {
                what: "breaker open_ms must be positive",
            });
        }
        if self.probes == 0 {
            return Err(FleetError::InvalidConfig {
                what: "breaker probes must be positive",
            });
        }
        Ok(())
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Appeals flow normally; outcomes fill the rolling window.
    Closed,
    /// Appeals are refused until the open timer expires.
    Open,
    /// A limited number of probe appeals test whether the path recovered.
    HalfOpen,
}

/// The typed outcome of asking the breaker to admit one appeal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Refused: the breaker is open, or every probe slot is in flight.
    Denied,
    /// Admitted as a regular closed-state attempt.
    Allowed,
    /// Admitted as a half-open probe; the caller must resolve it with the
    /// probe-tagged outcome calls so probe accounting reconciles.
    Probe,
}

/// Per-node circuit breaker over appeal outcomes, driven entirely by the
/// simulator's virtual clock.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Rolling window of outcomes in `Closed`; `true` records a failure.
    window: VecDeque<bool>,
    /// Virtual time at which an `Open` breaker starts probing.
    probe_at_nanos: u64,
    /// Probes admitted but not yet resolved while `HalfOpen`.
    probes_in_flight: u32,
    /// Consecutive probe successes while `HalfOpen`.
    probe_successes: u32,
    opened: u64,
    half_opened: u64,
    closed: u64,
    probe_attempts: u64,
    probe_ok: u64,
    probe_failed: u64,
    probe_orphaned: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker, validating the configuration.
    pub fn new(config: BreakerConfig) -> FleetResult<Self> {
        config.validate()?;
        Ok(Self {
            config,
            state: BreakerState::Closed,
            window: VecDeque::with_capacity(config.window),
            probe_at_nanos: 0,
            probes_in_flight: 0,
            probe_successes: 0,
            opened: 0,
            half_opened: 0,
            closed: 0,
            probe_attempts: 0,
            probe_ok: 0,
            probe_failed: 0,
            probe_orphaned: 0,
        })
    }

    /// The current state, advancing `Open → HalfOpen` if the open timer has
    /// expired by `now_nanos`.
    pub fn state(&mut self, now_nanos: u64) -> BreakerState {
        if self.state == BreakerState::Open && now_nanos >= self.probe_at_nanos {
            self.state = BreakerState::HalfOpen;
            self.probes_in_flight = 0;
            self.probe_successes = 0;
            self.half_opened += 1;
        }
        self.state
    }

    /// The state as it *would* read at `now_nanos`, without advancing the
    /// timer — for health digests and policy peeks that must not perturb the
    /// half-open ledger.
    pub fn peek_state(&self, now_nanos: u64) -> BreakerState {
        if self.state == BreakerState::Open && now_nanos >= self.probe_at_nanos {
            BreakerState::HalfOpen
        } else {
            self.state
        }
    }

    /// Asks the breaker to admit one appeal attempt at `now_nanos`. Closed:
    /// always [`Admission::Allowed`]. Open: [`Admission::Denied`] until the
    /// timer flips the state half-open. Half-open: [`Admission::Probe`]
    /// while fewer than `probes` probes are unresolved, `Denied` after.
    pub fn admit(&mut self, now_nanos: u64) -> Admission {
        match self.state(now_nanos) {
            BreakerState::Closed => Admission::Allowed,
            BreakerState::Open => Admission::Denied,
            BreakerState::HalfOpen => {
                if self.probes_in_flight < self.config.probes {
                    self.probes_in_flight += 1;
                    self.probe_attempts += 1;
                    Admission::Probe
                } else {
                    Admission::Denied
                }
            }
        }
    }

    /// Whether one more appeal may be sent at `now_nanos` — [`Self::admit`]
    /// without the probe tag, for callers that track it separately.
    pub fn allows(&mut self, now_nanos: u64) -> bool {
        self.admit(now_nanos) != Admission::Denied
    }

    /// Whether a round-trip counts as a slow call under this breaker's
    /// threshold (strict: exactly `slow_ms` is still healthy).
    pub fn is_slow(&self, round_trip_ms: f64) -> bool {
        round_trip_ms > self.config.slow_ms
    }

    /// Records a completed *regular* appeal round-trip. A success slower
    /// than `slow_ms` counts as a failure — a path that technically delivers
    /// but blows the latency target is still a path to stop trusting.
    pub fn on_success(&mut self, now_nanos: u64, round_trip_ms: f64) {
        self.resolve(now_nanos, round_trip_ms > self.config.slow_ms, false);
    }

    /// Records a failed *regular* appeal (link down, deadline expired,
    /// response corrupted).
    pub fn on_failure(&mut self, now_nanos: u64) {
        self.resolve(now_nanos, true, false);
    }

    /// Records a completed attempt that was admitted as a half-open probe.
    pub fn on_probe_success(&mut self, now_nanos: u64, round_trip_ms: f64) {
        self.resolve(now_nanos, round_trip_ms > self.config.slow_ms, true);
    }

    /// Records a failed attempt that was admitted as a half-open probe.
    pub fn on_probe_failure(&mut self, now_nanos: u64) {
        self.resolve(now_nanos, true, true);
    }

    fn resolve(&mut self, now_nanos: u64, failed: bool, probe: bool) {
        match self.state(now_nanos) {
            BreakerState::Closed => {
                // Probe tags carry no meaning here: a probe whose half-open
                // window already closed under it (orphan-ledgered at the
                // transition) lands as ordinary closed-state evidence.
                if self.window.len() == self.config.window {
                    self.window.pop_front();
                }
                self.window.push_back(failed);
                if self.window.len() == self.config.window {
                    let failures = self.window.iter().filter(|&&f| f).count();
                    if failures as f64 / self.config.window as f64 >= self.config.failure_threshold
                    {
                        self.trip(now_nanos);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if !probe {
                    // A straggler regular attempt from before the trip. It
                    // holds no probe slot and its evidence predates the open
                    // window — ignoring it keeps the probe ledger exact and
                    // stops stale outcomes from closing (or re-tripping) the
                    // breaker.
                    return;
                }
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                if failed {
                    self.probe_failed += 1;
                    self.trip(now_nanos);
                } else {
                    self.probe_ok += 1;
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.probes {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                        self.closed += 1;
                        // Probes still in flight outlive their window; any
                        // later outcome lands as closed-state evidence.
                        self.probe_orphaned += u64::from(self.probes_in_flight);
                        self.probes_in_flight = 0;
                    }
                }
            }
            // A straggler response from before the trip; the open timer is
            // already running and the outcome carries no new signal. Probes
            // orphaned by a re-trip were ledgered at the trip itself.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_nanos: u64) {
        self.state = BreakerState::Open;
        self.probe_at_nanos = now_nanos.saturating_add(ms_to_nanos(self.config.open_ms));
        self.window.clear();
        self.probe_orphaned += u64::from(self.probes_in_flight);
        self.probes_in_flight = 0;
        self.probe_successes = 0;
        self.opened += 1;
    }

    /// Trips the breaker open *pre-emptively* on fleet evidence rather than
    /// local outcomes. Only meaningful from `Closed` (an open breaker is
    /// already protecting the path); returns whether a trip happened.
    pub fn preemptive_open(&mut self, now_nanos: u64) -> bool {
        if self.state(now_nanos) != BreakerState::Closed {
            return false;
        }
        self.trip(now_nanos);
        true
    }

    /// Pushes the pending half-open probe time back by `extra_nanos` — the
    /// staggered-probe election's lever. Only meaningful while `Open`.
    pub fn defer_probe(&mut self, extra_nanos: u64) {
        if self.state == BreakerState::Open {
            self.probe_at_nanos = self.probe_at_nanos.saturating_add(extra_nanos);
        }
    }

    /// How many times the breaker has tripped open.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// How many times the breaker has entered half-open probing.
    pub fn half_opened(&self) -> u64 {
        self.half_opened
    }

    /// How many times the breaker has closed again after probing.
    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// Probe attempts admitted while half-open.
    pub fn probe_attempts(&self) -> u64 {
        self.probe_attempts
    }

    /// Probes that resolved successfully while their half-open window was
    /// still live.
    pub fn probe_ok(&self) -> u64 {
        self.probe_ok
    }

    /// Probes that resolved as failures and re-tripped the breaker.
    pub fn probe_failed(&self) -> u64 {
        self.probe_failed
    }

    /// Probes whose half-open window ended (re-trip or close) before they
    /// resolved.
    pub fn probe_orphaned(&self) -> u64 {
        self.probe_orphaned
    }

    /// Probes still unresolved in a live half-open window.
    pub fn probes_in_flight(&self) -> u64 {
        u64::from(self.probes_in_flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            slow_ms: 100.0,
            open_ms: 10.0,
            probes: 2,
        }
    }

    fn probe_ledger_reconciles(b: &CircuitBreaker) {
        assert_eq!(
            b.probe_attempts(),
            b.probe_ok() + b.probe_failed() + b.probe_orphaned() + b.probes_in_flight(),
            "probe ledger must reconcile exactly"
        );
    }

    #[test]
    fn trips_on_failure_fraction_and_recovers_via_probes() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        assert_eq!(b.state(0), BreakerState::Closed);
        b.on_success(0, 5.0);
        b.on_success(0, 5.0);
        b.on_failure(0);
        assert_eq!(b.state(0), BreakerState::Closed, "window not yet decisive");
        b.on_failure(0);
        assert_eq!(b.state(0), BreakerState::Open, "2/4 failures trips at 0.5");
        assert_eq!(b.opened(), 1);
        assert_eq!(b.admit(1_000), Admission::Denied);

        // 10 ms later the timer admits probes, capped at `probes` in flight.
        let probe_time = crate::ms_to_nanos(10.0);
        assert_eq!(b.admit(probe_time), Admission::Probe);
        assert_eq!(b.state(probe_time), BreakerState::HalfOpen);
        assert_eq!(b.admit(probe_time), Admission::Probe);
        assert_eq!(
            b.admit(probe_time),
            Admission::Denied,
            "third concurrent probe refused"
        );

        b.on_probe_success(probe_time, 5.0);
        assert_eq!(b.state(probe_time), BreakerState::HalfOpen);
        b.on_probe_success(probe_time, 5.0);
        assert_eq!(b.state(probe_time), BreakerState::Closed);
        assert_eq!((b.half_opened(), b.closed()), (1, 1));
        assert_eq!((b.probe_attempts(), b.probe_ok()), (2, 2));
        probe_ledger_reconciles(&b);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_failure(0);
        }
        let t = crate::ms_to_nanos(10.0);
        assert_eq!(b.admit(t), Admission::Probe);
        b.on_probe_failure(t);
        assert_eq!(b.state(t), BreakerState::Open);
        assert_eq!(b.opened(), 2);
        assert_eq!(b.probe_failed(), 1);
        probe_ledger_reconciles(&b);
        // The timer restarted from the probe failure, not the first trip.
        assert_eq!(b.admit(t + 1), Admission::Denied);
        assert_eq!(b.admit(t + crate::ms_to_nanos(10.0)), Admission::Probe);
    }

    #[test]
    fn slow_successes_count_as_failures() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_success(0, 500.0); // delivered, but 5x over slow_ms
        }
        assert_eq!(b.state(0), BreakerState::Open);
    }

    #[test]
    fn round_trip_exactly_at_slow_threshold_is_a_success() {
        // The slow-call comparison is strict: `rtt > slow_ms` fails, so a
        // round-trip landing exactly on the threshold is still healthy.
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..16 {
            b.on_success(0, 100.0);
        }
        assert_eq!(b.state(0), BreakerState::Closed);
        assert_eq!(b.opened(), 0);
        // One ulp over the threshold is a failure.
        for _ in 0..4 {
            b.on_success(0, 100.0 + f64::EPSILON * 200.0);
        }
        assert_eq!(b.state(0), BreakerState::Open);
    }

    #[test]
    fn exhausted_probe_budget_denies_until_a_slot_frees() {
        // `probes` caps concurrency: with every slot in flight the budget is
        // zero-length and admission must deny; resolving one probe frees
        // exactly one slot.
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_failure(0);
        }
        let t = crate::ms_to_nanos(10.0);
        assert_eq!(b.admit(t), Admission::Probe);
        assert_eq!(b.admit(t), Admission::Probe);
        assert_eq!(b.admit(t), Admission::Denied, "budget exhausted");
        assert_eq!(
            b.admit(t + 1),
            Admission::Denied,
            "time alone frees nothing"
        );
        b.on_probe_success(t + 2, 5.0);
        assert_eq!(b.admit(t + 2), Admission::Probe, "resolution frees a slot");
        probe_ledger_reconciles(&b);
    }

    #[test]
    fn healthy_stream_never_trips() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for i in 0..100 {
            assert_eq!(b.admit(i), Admission::Allowed);
            b.on_success(i, 5.0);
        }
        assert_eq!(b.opened(), 0);
        assert_eq!(b.state(100), BreakerState::Closed);
    }

    #[test]
    fn straggler_outcomes_while_open_are_ignored() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_failure(0);
        }
        assert_eq!(b.state(0), BreakerState::Open);
        b.on_success(1, 5.0); // in-flight appeal from before the trip
        assert_eq!(b.state(1), BreakerState::Open);
        assert_eq!(b.opened(), 1);
    }

    #[test]
    fn straggler_regular_outcomes_in_half_open_hold_no_probe_slot() {
        // A regular attempt sent before the trip resolves mid-probe: it must
        // neither close the breaker on stale evidence nor free or consume a
        // probe slot.
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_failure(0);
        }
        let t = crate::ms_to_nanos(10.0);
        assert_eq!(b.admit(t), Admission::Probe);
        assert_eq!(b.admit(t), Admission::Probe);
        // Stragglers from before the trip resolve now — both flavors.
        b.on_success(t, 5.0);
        b.on_failure(t);
        assert_eq!(b.state(t), BreakerState::HalfOpen, "stragglers are inert");
        assert_eq!(b.opened(), 1, "a straggler failure must not re-trip");
        assert_eq!(b.probes_in_flight(), 2, "slots untouched");
        // The real probes still decide the outcome.
        b.on_probe_success(t, 5.0);
        b.on_probe_success(t, 5.0);
        assert_eq!(b.state(t), BreakerState::Closed);
        probe_ledger_reconciles(&b);
    }

    #[test]
    fn re_trip_orphans_probes_still_in_flight() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_failure(0);
        }
        let t = crate::ms_to_nanos(10.0);
        assert_eq!(b.admit(t), Admission::Probe);
        assert_eq!(b.admit(t), Admission::Probe);
        b.on_probe_failure(t); // re-trips with one probe still out
        assert_eq!(b.state(t), BreakerState::Open);
        assert_eq!(b.probe_orphaned(), 1);
        // The orphan resolving later (while open) changes nothing.
        b.on_probe_success(t + 1, 5.0);
        assert_eq!(b.state(t + 1), BreakerState::Open);
        assert_eq!(b.probe_ok(), 0);
        probe_ledger_reconciles(&b);
    }

    #[test]
    fn back_to_back_open_timers_admit_exactly_at_the_boundary() {
        // Virtual-time ties: the open timer admits probes at *exactly*
        // `probe_at`, and a re-trip at that instant restarts a full open
        // window from the same timestamp.
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_failure(0);
        }
        let open = crate::ms_to_nanos(10.0);
        assert_eq!(b.peek_state(open - 1), BreakerState::Open);
        assert_eq!(b.peek_state(open), BreakerState::HalfOpen);
        assert_eq!(b.admit(open), Admission::Probe);
        b.on_probe_failure(open); // second trip at the same boundary instant
        assert_eq!(b.opened(), 2);
        assert_eq!(b.admit(2 * open - 1), Admission::Denied);
        assert_eq!(b.admit(2 * open), Admission::Probe);
        assert_eq!(b.half_opened(), 2);
        probe_ledger_reconciles(&b);
    }

    #[test]
    fn preemptive_open_trips_only_from_closed() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        assert!(b.preemptive_open(5));
        assert_eq!(b.state(5), BreakerState::Open);
        assert_eq!(b.opened(), 1);
        assert!(!b.preemptive_open(6), "already open");
        let t = 5 + crate::ms_to_nanos(10.0);
        assert_eq!(b.admit(t), Admission::Probe);
        assert!(!b.preemptive_open(t), "half-open is already protecting");
        assert_eq!(b.opened(), 1);
    }

    #[test]
    fn defer_probe_staggers_the_half_open_transition() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        assert!(b.preemptive_open(0));
        let open = crate::ms_to_nanos(10.0);
        b.defer_probe(crate::ms_to_nanos(5.0));
        assert_eq!(b.peek_state(open), BreakerState::Open, "probe deferred");
        let staggered = open + crate::ms_to_nanos(5.0);
        assert_eq!(b.peek_state(staggered - 1), BreakerState::Open);
        assert_eq!(b.admit(staggered), Admission::Probe);
        // Deferring while not open is a no-op.
        b.defer_probe(crate::ms_to_nanos(100.0));
        assert_eq!(b.state(staggered), BreakerState::HalfOpen);
    }

    #[test]
    fn peek_state_never_mutates() {
        let mut b = CircuitBreaker::new(config()).unwrap();
        for _ in 0..4 {
            b.on_failure(0);
        }
        let t = crate::ms_to_nanos(10.0);
        assert_eq!(b.peek_state(t), BreakerState::HalfOpen);
        assert_eq!(b.half_opened(), 0, "peek must not advance the timer");
        assert_eq!(b.state(t), BreakerState::HalfOpen);
        assert_eq!(b.half_opened(), 1, "state() does");
    }

    #[test]
    fn rejects_invalid_configs() {
        for (bad, what) in [
            (
                BreakerConfig {
                    window: 0,
                    ..config()
                },
                "window",
            ),
            (
                BreakerConfig {
                    failure_threshold: 0.0,
                    ..config()
                },
                "failure_threshold",
            ),
            (
                BreakerConfig {
                    failure_threshold: 1.5,
                    ..config()
                },
                "failure_threshold",
            ),
            (
                BreakerConfig {
                    slow_ms: 0.0,
                    ..config()
                },
                "slow_ms",
            ),
            (
                BreakerConfig {
                    open_ms: f64::NAN,
                    ..config()
                },
                "open_ms",
            ),
            (
                BreakerConfig {
                    probes: 0,
                    ..config()
                },
                "probes",
            ),
        ] {
            match CircuitBreaker::new(bad) {
                Err(FleetError::InvalidConfig { what: msg }) => {
                    assert!(msg.contains(what), "{msg} should mention {what}")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn default_config_is_valid() {
        assert!(CircuitBreaker::new(BreakerConfig::default_for_appeals()).is_ok());
    }
}
