//! The adaptive offload budget: a per-node feedback controller that tightens
//! a windowed [`CostBudget`] as the observed appeal latency degrades.
//!
//! The paper's routing rule (Eq. 1) is oblivious to *link health*: if the
//! uplink degrades, every appeal still goes out and simply takes longer. The
//! [`AdaptiveBudget`] closes that loop — an experiment the paper never runs.
//! Each node meters the offload cost it charges per fixed-size request
//! window (reusing [`appeal_hw::CostBudget`]/[`CostMeter`], the same
//! machinery behind `appealnet_core`'s `BudgetPolicy`) and, at every window
//! boundary, compares the *measured* mean appeal round-trip against a target:
//! if appeals are running slow the per-window latency budget halves (AIMD
//! style, floored), forcing difficult inputs back onto the edge; if they run
//! healthy the budget doubles back up toward its configured maximum.

use crate::error::{is_positive, FleetError, FleetResult};
use appeal_hw::{CostBudget, CostMeter, InferenceCost};
use serde::{Deserialize, Serialize};

/// Parameters of the per-node adaptive offload budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Requests per control window; the budget is re-evaluated and the spend
    /// meter reset at every window boundary.
    pub window: u64,
    /// Initial (and maximum) per-window offload latency budget, in
    /// milliseconds of accumulated estimated appeal latency.
    pub budget_ms: f64,
    /// Observed mean appeal round-trip above which the budget tightens, in
    /// milliseconds.
    pub target_ms: f64,
    /// Lowest the per-window budget may fall, in milliseconds.
    pub floor_ms: f64,
}

/// The feedback controller itself: one per edge node.
#[derive(Debug, Clone)]
pub struct AdaptiveBudget {
    config: AdaptiveConfig,
    current_ms: f64,
    meter: CostMeter,
    in_window: u64,
    observed_sum_ms: f64,
    observed_count: u64,
    tightenings: u64,
}

impl AdaptiveBudget {
    /// Creates a controller starting at the full budget.
    ///
    /// Returns [`FleetError::InvalidConfig`] if the window is zero, any
    /// latency parameter is not positive, or the floor exceeds the budget.
    pub fn new(config: AdaptiveConfig) -> FleetResult<Self> {
        if config.window == 0 {
            return Err(FleetError::InvalidConfig {
                what: "adaptive window must be positive",
            });
        }
        if !is_positive(config.budget_ms) {
            return Err(FleetError::InvalidConfig {
                what: "adaptive budget_ms must be positive",
            });
        }
        if !is_positive(config.target_ms) {
            return Err(FleetError::InvalidConfig {
                what: "adaptive target_ms must be positive",
            });
        }
        if !is_positive(config.floor_ms) || config.floor_ms > config.budget_ms {
            return Err(FleetError::InvalidConfig {
                what: "adaptive floor_ms must be positive and at most budget_ms",
            });
        }
        Ok(Self {
            config,
            current_ms: config.budget_ms,
            meter: CostMeter::new(),
            in_window: 0,
            observed_sum_ms: 0.0,
            observed_count: 0,
            tightenings: 0,
        })
    }

    /// Registers one request seen by the node, rolling the control window
    /// when it fills.
    pub fn on_request(&mut self) {
        self.in_window += 1;
        if self.in_window >= self.config.window {
            self.roll_window();
        }
    }

    /// Whether one more appeal at the estimated `offload` cost fits the
    /// current window's budget.
    pub fn admits(&self, offload: &InferenceCost) -> bool {
        CostBudget::latency_ms(self.current_ms).admits(&self.meter.spent(), offload)
    }

    /// Charges an admitted appeal against the window's budget.
    pub fn charge(&mut self, offload: &InferenceCost) {
        self.meter.charge(offload);
    }

    /// Feeds back one measured appeal round-trip, in milliseconds.
    pub fn observe(&mut self, round_trip_ms: f64) {
        self.observed_sum_ms += round_trip_ms;
        self.observed_count += 1;
    }

    /// The current per-window latency budget, in milliseconds.
    pub fn current_budget_ms(&self) -> f64 {
        self.current_ms
    }

    /// How many times the controller has tightened the budget.
    pub fn tightenings(&self) -> u64 {
        self.tightenings
    }

    fn roll_window(&mut self) {
        let degraded = self.observed_count > 0
            && self.observed_sum_ms / self.observed_count as f64 > self.config.target_ms;
        if degraded {
            self.current_ms = (self.current_ms / 2.0).max(self.config.floor_ms);
            self.tightenings += 1;
        } else {
            self.current_ms = (self.current_ms * 2.0).min(self.config.budget_ms);
        }
        self.meter.reset();
        self.in_window = 0;
        self.observed_sum_ms = 0.0;
        self.observed_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AdaptiveConfig {
        AdaptiveConfig {
            window: 4,
            budget_ms: 100.0,
            target_ms: 50.0,
            floor_ms: 10.0,
        }
    }

    fn offload(ms: f64) -> InferenceCost {
        InferenceCost {
            flops: 1000,
            energy_mj: 1.0,
            latency_ms: ms,
        }
    }

    #[test]
    fn admits_until_window_budget_is_spent() {
        let mut a = AdaptiveBudget::new(config()).unwrap();
        let c = offload(40.0);
        assert!(a.admits(&c));
        a.charge(&c);
        assert!(a.admits(&c));
        a.charge(&c);
        // 80 ms spent; a third 40 ms appeal exceeds the 100 ms window.
        assert!(!a.admits(&c));
    }

    #[test]
    fn slow_appeals_tighten_toward_the_floor() {
        let mut a = AdaptiveBudget::new(config()).unwrap();
        for round in 0..8 {
            a.observe(120.0); // far above the 50 ms target
            for _ in 0..4 {
                a.on_request();
            }
            assert!(
                a.current_budget_ms() < 100.0,
                "round {round} must have tightened"
            );
        }
        assert!(
            (a.current_budget_ms() - 10.0).abs() < 1e-9,
            "pinned at floor"
        );
        assert!(a.tightenings() >= 4);
    }

    #[test]
    fn healthy_appeals_recover_the_budget() {
        let mut a = AdaptiveBudget::new(config()).unwrap();
        a.observe(120.0);
        for _ in 0..4 {
            a.on_request();
        }
        assert!((a.current_budget_ms() - 50.0).abs() < 1e-9);
        // A healthy window doubles back up (capped at the configured max).
        a.observe(5.0);
        for _ in 0..4 {
            a.on_request();
        }
        assert!((a.current_budget_ms() - 100.0).abs() < 1e-9);
        // Windows with no observations also recover.
        for _ in 0..4 {
            a.on_request();
        }
        assert!((a.current_budget_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn window_boundary_resets_the_meter() {
        let mut a = AdaptiveBudget::new(config()).unwrap();
        let c = offload(90.0);
        a.charge(&c);
        assert!(!a.admits(&c));
        for _ in 0..4 {
            a.on_request();
        }
        assert!(a.admits(&c), "fresh window admits again");
    }

    #[test]
    fn rejects_invalid_configs() {
        for (bad, what) in [
            (
                AdaptiveConfig {
                    window: 0,
                    ..config()
                },
                "window",
            ),
            (
                AdaptiveConfig {
                    budget_ms: 0.0,
                    ..config()
                },
                "budget_ms",
            ),
            (
                AdaptiveConfig {
                    target_ms: -1.0,
                    ..config()
                },
                "target_ms",
            ),
            (
                AdaptiveConfig {
                    floor_ms: 200.0,
                    ..config()
                },
                "floor_ms",
            ),
        ] {
            match AdaptiveBudget::new(bad) {
                Err(FleetError::InvalidConfig { what: msg }) => {
                    assert!(msg.contains(what), "{msg} should mention {what}")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }
}
