//! `appealnet_fleet` — a deterministic two-tier fleet simulator for
//! AppealNet-style edge/cloud serving.
//!
//! The serving crates model one edge device talking to one cloud. This crate
//! splits the system along the *appeal boundary* and scales it out: `N`
//! simulated edge nodes (each a little two-head network + [`Scorer`] +
//! [`RoutingPolicy`] on its own [`DeviceSpec`] clock, with an optional
//! adaptive offload budget) talk to one cloud tier (the big network behind a
//! size-or-deadline batching queue on a shared GPU clock) over a stochastic
//! link model ([`StochasticLink`] + bounded [`LinkQueue`] per node).
//!
//! Everything runs in virtual time on seeded randomness — no wall clock, no
//! threads — so a simulation is a pure function of `(models, config, trace)`
//! and its rendered metrics are byte-reproducible. That is what makes the
//! fleet-level questions answerable in CI: end-to-end p50/p99 versus the
//! skipping rate (Eq. 11), cloud GPU load versus fleet size, SLO violation
//! rates under bursty traffic, and whether an adaptive per-node offload
//! budget keeps latency bounded when the link degrades.
//!
//! Entry points: [`FleetSim::new`] assembles a fleet from a
//! [`TwoHeadNet`](appealnet_core::TwoHeadNet) little model, a
//! [`ClassifierParts`](appeal_models::ClassifierParts) big model, and a
//! [`FleetConfig`]; [`FleetSim::run`] replays a [`trace::TraceSpec`] and
//! returns [`FleetMetrics`] (render with [`FleetMetrics::render`], validate
//! with [`FleetMetrics::check`]).
//!
//! [`Scorer`]: appealnet_core::serve::Scorer
//! [`RoutingPolicy`]: appealnet_core::serve::RoutingPolicy
//! [`DeviceSpec`]: appeal_hw::DeviceSpec
//! [`StochasticLink`]: appeal_hw::StochasticLink
//! [`LinkQueue`]: appeal_hw::LinkQueue

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod breaker;
pub mod cloud;
pub mod error;
pub mod gossip;
pub mod health;
pub mod metrics;
pub mod node;
pub mod recovery;
pub mod sim;

/// Request-trace generators, re-exported from `appealnet_core::server` so
/// the load generator and the fleet simulator replay the *same* arrival
/// processes from one source of truth.
pub use appealnet_core::server::trace;

pub use adaptive::{AdaptiveBudget, AdaptiveConfig};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use cloud::{
    CloudBatch, CloudConfig, CloudPush, CloudResponse, CloudSignal, CloudTier, PendingAppeal,
};
pub use error::{FleetError, FleetResult};
pub use gossip::{GossipConfig, GossipPlane};
pub use health::{FleetHealthView, HealthDigest, NodeHealth};
pub use metrics::{percentile, FleetMetrics, NodeSummary, PhaseMetrics};
pub use node::{EdgeNode, NodeStats};
pub use recovery::{CooperativeConfig, RecoveryConfig, RetryConfig};
pub use sim::{Degradation, FleetConfig, FleetSim};

/// Converts milliseconds to whole virtual nanoseconds (rounded, floored at
/// zero). The shared currency between the hardware model's `f64`
/// milliseconds and the simulator's `u64` clock.
pub fn ms_to_nanos(ms: f64) -> u64 {
    (ms * 1e6).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_to_nanos_rounds_and_floors() {
        assert_eq!(ms_to_nanos(1.0), 1_000_000);
        assert_eq!(ms_to_nanos(0.0000004), 0);
        assert_eq!(ms_to_nanos(0.0000006), 1);
        assert_eq!(ms_to_nanos(-5.0), 0);
        assert_eq!(ms_to_nanos(f64::NAN), 0);
    }
}
