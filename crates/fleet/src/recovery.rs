//! Appeal recovery policy: bounded retries with decorrelated-jitter backoff,
//! a per-appeal deadline, and the degradation ladder's last rung.
//!
//! The ladder, from cheapest to most drastic (see `docs/ROBUSTNESS.md`):
//!
//! 1. **Retry** — an appeal that times out, loses its link, or comes back
//!    corrupted is retried after a decorrelated-jitter backoff, at most
//!    [`RetryConfig::max_attempts`] times in total.
//! 2. **Degrade** — once the retry budget is exhausted, or while the node's
//!    [`CircuitBreaker`](crate::CircuitBreaker) is open, the node accepts
//!    the little net's answer and ledgers it as `DegradedLocal`. The appeal
//!    mechanism *is* the fallback: the edge already computed a full answer
//!    to score, so degradation costs no extra compute — only the accuracy
//!    delta the fault experiment measures.
//!
//! Nothing here errors a request: with a [`RecoveryConfig`] installed, every
//! request resolves to a label, faulted cloud or not.

use crate::breaker::BreakerConfig;
use crate::error::{is_non_negative, is_positive, FleetError, FleetResult};
use appeal_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Bounded-retry parameters for a single appeal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Total transmission attempts per appeal (first send included), so
    /// `max_attempts = 1` means "never retry". Must be positive.
    pub max_attempts: u32,
    /// First backoff and the lower bound of every jittered draw, in
    /// milliseconds.
    pub base_backoff_ms: f64,
    /// Backoff cap, in milliseconds; must be at least the base.
    pub max_backoff_ms: f64,
}

impl RetryConfig {
    fn validate(&self) -> FleetResult<()> {
        if self.max_attempts == 0 {
            return Err(FleetError::InvalidConfig {
                what: "retry max_attempts must be positive",
            });
        }
        if !is_positive(self.base_backoff_ms) {
            return Err(FleetError::InvalidConfig {
                what: "retry base_backoff_ms must be positive",
            });
        }
        // NaN-safe: base is already known positive, so rejecting non-positive
        // (or NaN) caps plus anything below the base matches `!(max >= base)`.
        if !is_positive(self.max_backoff_ms) || self.max_backoff_ms < self.base_backoff_ms {
            return Err(FleetError::InvalidConfig {
                what: "retry max_backoff_ms must be at least base_backoff_ms",
            });
        }
        Ok(())
    }

    /// Draws the next backoff with decorrelated jitter:
    /// `min(cap, uniform(base, 3 * prev))`, seeded from `prev_ms = 0` for
    /// the first retry (which then waits exactly the base). Decorrelated
    /// jitter spreads concurrent retriers apart instead of letting plain
    /// exponential backoff re-synchronise their retry storms.
    pub fn backoff_ms(&self, prev_ms: f64, rng: &mut SeededRng) -> f64 {
        if prev_ms <= 0.0 {
            return self.base_backoff_ms;
        }
        let high = 3.0 * prev_ms;
        let drawn =
            f64::from(rng.uniform(0.0, 1.0)) * (high - self.base_backoff_ms) + self.base_backoff_ms;
        drawn.min(self.max_backoff_ms)
    }
}

/// The full recovery policy installed per fleet (one breaker instance per
/// node). `breaker: None` gives the *naive-retry* baseline the fault
/// experiment compares against: retries and deadlines still apply, but
/// nothing ever stops the node from appealing into a dead cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// How long a node waits for an appeal's answer before treating the
    /// attempt as failed, in milliseconds. Must be positive.
    pub appeal_deadline_ms: f64,
    /// The bounded-retry schedule.
    pub retry: RetryConfig,
    /// Per-node circuit breaker; `None` disables breaking entirely.
    pub breaker: Option<BreakerConfig>,
}

impl RecoveryConfig {
    /// A policy matched to [`BreakerConfig::default_for_appeals`]: 250 ms
    /// appeal deadline, up to 3 attempts backing off 10–160 ms.
    pub fn default_for_appeals() -> Self {
        Self {
            appeal_deadline_ms: 250.0,
            retry: RetryConfig {
                max_attempts: 3,
                base_backoff_ms: 10.0,
                max_backoff_ms: 160.0,
            },
            breaker: Some(BreakerConfig::default_for_appeals()),
        }
    }

    /// Validates the policy (and the embedded breaker config, if any).
    pub fn validate(&self) -> FleetResult<()> {
        if !is_positive(self.appeal_deadline_ms) {
            return Err(FleetError::InvalidConfig {
                what: "recovery appeal_deadline_ms must be positive",
            });
        }
        self.retry.validate()?;
        if let Some(breaker) = self.breaker {
            // Breaker validation lives with CircuitBreaker::new; build one
            // to reuse it.
            crate::CircuitBreaker::new(breaker)?;
        }
        Ok(())
    }
}

/// The cooperative policy layered on top of per-node breakers when the
/// gossip plane is enabled: act on *fleet* evidence before local evidence
/// accumulates.
///
/// Three levers, all driven by the node's [`FleetHealthView`]
/// (see `crate::health`):
///
/// 1. **Pre-emptive open** — when the staleness-weighted mass of unhealthy
///    neighbours reaches `quorum` and the node has seen no successful appeal
///    of its own since the last gossip round, its breaker trips without
///    burning a local outcome window.
/// 2. **Stress relief on δ** — the local-answer band widens by
///    `delta_relief · stress`: borderline appeals degrade to the little
///    net's answer instead of joining a queue the fleet already knows is
///    drowning.
/// 3. **Staggered probes** — when a breaker trips, its half-open probe is
///    deferred by `probe_stagger_ms` per lower-indexed neighbour whose
///    breaker is also open, so a recovering cloud meets a trickle of probes
///    instead of a thundering herd.
///
/// [`FleetHealthView`]: crate::health::FleetHealthView
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CooperativeConfig {
    /// Staleness-weighted unhealthy-neighbour mass at which a node
    /// pre-emptively opens its own breaker. Must be positive; fractional
    /// values let a single fresh neighbour carry the quorum.
    pub quorum: f64,
    /// Per-round appeal failure fraction at or above which a gossiped
    /// digest marks its origin unhealthy, in `(0, 1]`.
    pub unhealthy_failure_rate: f64,
    /// How far the routing threshold's local-answer band widens at stress 1,
    /// in score units. Zero disables stress shedding.
    pub delta_relief: f64,
    /// Cloud GPU backlog (EWMA of the piggybacked signal) at which cloud
    /// backpressure saturates to stress 1, in milliseconds.
    pub cloud_backlog_target_ms: f64,
    /// Half-open probe deferral per lower-indexed open neighbour, in
    /// milliseconds. Zero disables staggering (every trip still ledgers an
    /// election).
    pub probe_stagger_ms: f64,
}

impl CooperativeConfig {
    /// A policy matched to [`GossipConfig::default_for_fleet`] and
    /// [`BreakerConfig::default_for_appeals`]: one-and-a-half fresh
    /// neighbours carry the quorum, stress widens the local band by up to
    /// 0.1, and probes fan out 40 ms apart.
    ///
    /// [`GossipConfig::default_for_fleet`]: crate::gossip::GossipConfig::default_for_fleet
    pub fn default_for_fleet() -> Self {
        Self {
            quorum: 1.5,
            unhealthy_failure_rate: 0.5,
            delta_relief: 0.1,
            cloud_backlog_target_ms: 50.0,
            probe_stagger_ms: 40.0,
        }
    }

    /// Validates the policy parameters.
    pub fn validate(&self) -> FleetResult<()> {
        if !is_positive(self.quorum) {
            return Err(FleetError::InvalidConfig {
                what: "cooperative quorum must be positive",
            });
        }
        if !is_positive(self.unhealthy_failure_rate) || self.unhealthy_failure_rate > 1.0 {
            return Err(FleetError::InvalidConfig {
                what: "cooperative unhealthy_failure_rate must be in (0, 1]",
            });
        }
        if !is_non_negative(self.delta_relief) {
            return Err(FleetError::InvalidConfig {
                what: "cooperative delta_relief must be non-negative",
            });
        }
        if !is_positive(self.cloud_backlog_target_ms) {
            return Err(FleetError::InvalidConfig {
                what: "cooperative cloud_backlog_target_ms must be positive",
            });
        }
        if !is_non_negative(self.probe_stagger_ms) {
            return Err(FleetError::InvalidConfig {
                what: "cooperative probe_stagger_ms must be non-negative",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retry() -> RetryConfig {
        RetryConfig {
            max_attempts: 3,
            base_backoff_ms: 10.0,
            max_backoff_ms: 80.0,
        }
    }

    #[test]
    fn first_backoff_is_the_base_then_jittered_and_capped() {
        let cfg = retry();
        let mut rng = SeededRng::new(7);
        let first = cfg.backoff_ms(0.0, &mut rng);
        assert_eq!(first, 10.0);
        let mut prev = first;
        for _ in 0..64 {
            let next = cfg.backoff_ms(prev, &mut rng);
            assert!(
                (cfg.base_backoff_ms..=cfg.max_backoff_ms).contains(&next),
                "backoff {next} out of [base, cap]"
            );
            prev = next;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let cfg = retry();
        let draw = |seed| {
            let mut rng = SeededRng::new(seed);
            let mut prev = 0.0;
            (0..8)
                .map(|_| {
                    prev = cfg.backoff_ms(prev, &mut rng);
                    prev
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn validation_rejects_bad_policies() {
        assert!(RecoveryConfig {
            appeal_deadline_ms: 0.0,
            ..RecoveryConfig::default_for_appeals()
        }
        .validate()
        .is_err());
        assert!(RecoveryConfig {
            retry: RetryConfig {
                max_attempts: 0,
                ..retry()
            },
            ..RecoveryConfig::default_for_appeals()
        }
        .validate()
        .is_err());
        assert!(RecoveryConfig {
            retry: RetryConfig {
                max_backoff_ms: 1.0,
                ..retry()
            },
            ..RecoveryConfig::default_for_appeals()
        }
        .validate()
        .is_err());
        assert!(RecoveryConfig {
            retry: RetryConfig {
                base_backoff_ms: f64::NAN,
                ..retry()
            },
            ..RecoveryConfig::default_for_appeals()
        }
        .validate()
        .is_err());
        let mut with_bad_breaker = RecoveryConfig::default_for_appeals();
        with_bad_breaker.breaker = Some(BreakerConfig {
            window: 0,
            ..BreakerConfig::default_for_appeals()
        });
        assert!(with_bad_breaker.validate().is_err());
        assert!(RecoveryConfig::default_for_appeals().validate().is_ok());
    }

    #[test]
    fn cooperative_validation_rejects_bad_policies() {
        assert!(CooperativeConfig::default_for_fleet().validate().is_ok());
        for bad in [
            CooperativeConfig {
                quorum: 0.0,
                ..CooperativeConfig::default_for_fleet()
            },
            CooperativeConfig {
                unhealthy_failure_rate: 0.0,
                ..CooperativeConfig::default_for_fleet()
            },
            CooperativeConfig {
                unhealthy_failure_rate: 1.5,
                ..CooperativeConfig::default_for_fleet()
            },
            CooperativeConfig {
                delta_relief: -0.1,
                ..CooperativeConfig::default_for_fleet()
            },
            CooperativeConfig {
                cloud_backlog_target_ms: 0.0,
                ..CooperativeConfig::default_for_fleet()
            },
            CooperativeConfig {
                probe_stagger_ms: f64::NAN,
                ..CooperativeConfig::default_for_fleet()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }
}
