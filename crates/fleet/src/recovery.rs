//! Appeal recovery policy: bounded retries with decorrelated-jitter backoff,
//! a per-appeal deadline, and the degradation ladder's last rung.
//!
//! The ladder, from cheapest to most drastic (see `docs/ROBUSTNESS.md`):
//!
//! 1. **Retry** — an appeal that times out, loses its link, or comes back
//!    corrupted is retried after a decorrelated-jitter backoff, at most
//!    [`RetryConfig::max_attempts`] times in total.
//! 2. **Degrade** — once the retry budget is exhausted, or while the node's
//!    [`CircuitBreaker`](crate::CircuitBreaker) is open, the node accepts
//!    the little net's answer and ledgers it as `DegradedLocal`. The appeal
//!    mechanism *is* the fallback: the edge already computed a full answer
//!    to score, so degradation costs no extra compute — only the accuracy
//!    delta the fault experiment measures.
//!
//! Nothing here errors a request: with a [`RecoveryConfig`] installed, every
//! request resolves to a label, faulted cloud or not.

use crate::breaker::BreakerConfig;
use crate::error::{is_positive, FleetError, FleetResult};
use appeal_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Bounded-retry parameters for a single appeal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Total transmission attempts per appeal (first send included), so
    /// `max_attempts = 1` means "never retry". Must be positive.
    pub max_attempts: u32,
    /// First backoff and the lower bound of every jittered draw, in
    /// milliseconds.
    pub base_backoff_ms: f64,
    /// Backoff cap, in milliseconds; must be at least the base.
    pub max_backoff_ms: f64,
}

impl RetryConfig {
    fn validate(&self) -> FleetResult<()> {
        if self.max_attempts == 0 {
            return Err(FleetError::InvalidConfig {
                what: "retry max_attempts must be positive",
            });
        }
        if !is_positive(self.base_backoff_ms) {
            return Err(FleetError::InvalidConfig {
                what: "retry base_backoff_ms must be positive",
            });
        }
        if !(self.max_backoff_ms >= self.base_backoff_ms) {
            return Err(FleetError::InvalidConfig {
                what: "retry max_backoff_ms must be at least base_backoff_ms",
            });
        }
        Ok(())
    }

    /// Draws the next backoff with decorrelated jitter:
    /// `min(cap, uniform(base, 3 * prev))`, seeded from `prev_ms = 0` for
    /// the first retry (which then waits exactly the base). Decorrelated
    /// jitter spreads concurrent retriers apart instead of letting plain
    /// exponential backoff re-synchronise their retry storms.
    pub fn backoff_ms(&self, prev_ms: f64, rng: &mut SeededRng) -> f64 {
        if prev_ms <= 0.0 {
            return self.base_backoff_ms;
        }
        let high = 3.0 * prev_ms;
        let drawn =
            f64::from(rng.uniform(0.0, 1.0)) * (high - self.base_backoff_ms) + self.base_backoff_ms;
        drawn.min(self.max_backoff_ms)
    }
}

/// The full recovery policy installed per fleet (one breaker instance per
/// node). `breaker: None` gives the *naive-retry* baseline the fault
/// experiment compares against: retries and deadlines still apply, but
/// nothing ever stops the node from appealing into a dead cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// How long a node waits for an appeal's answer before treating the
    /// attempt as failed, in milliseconds. Must be positive.
    pub appeal_deadline_ms: f64,
    /// The bounded-retry schedule.
    pub retry: RetryConfig,
    /// Per-node circuit breaker; `None` disables breaking entirely.
    pub breaker: Option<BreakerConfig>,
}

impl RecoveryConfig {
    /// A policy matched to [`BreakerConfig::default_for_appeals`]: 250 ms
    /// appeal deadline, up to 3 attempts backing off 10–160 ms.
    pub fn default_for_appeals() -> Self {
        Self {
            appeal_deadline_ms: 250.0,
            retry: RetryConfig {
                max_attempts: 3,
                base_backoff_ms: 10.0,
                max_backoff_ms: 160.0,
            },
            breaker: Some(BreakerConfig::default_for_appeals()),
        }
    }

    /// Validates the policy (and the embedded breaker config, if any).
    pub fn validate(&self) -> FleetResult<()> {
        if !is_positive(self.appeal_deadline_ms) {
            return Err(FleetError::InvalidConfig {
                what: "recovery appeal_deadline_ms must be positive",
            });
        }
        self.retry.validate()?;
        if let Some(breaker) = self.breaker {
            // Breaker validation lives with CircuitBreaker::new; build one
            // to reuse it.
            crate::CircuitBreaker::new(breaker)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retry() -> RetryConfig {
        RetryConfig {
            max_attempts: 3,
            base_backoff_ms: 10.0,
            max_backoff_ms: 80.0,
        }
    }

    #[test]
    fn first_backoff_is_the_base_then_jittered_and_capped() {
        let cfg = retry();
        let mut rng = SeededRng::new(7);
        let first = cfg.backoff_ms(0.0, &mut rng);
        assert_eq!(first, 10.0);
        let mut prev = first;
        for _ in 0..64 {
            let next = cfg.backoff_ms(prev, &mut rng);
            assert!(
                (cfg.base_backoff_ms..=cfg.max_backoff_ms).contains(&next),
                "backoff {next} out of [base, cap]"
            );
            prev = next;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let cfg = retry();
        let draw = |seed| {
            let mut rng = SeededRng::new(seed);
            let mut prev = 0.0;
            (0..8)
                .map(|_| {
                    prev = cfg.backoff_ms(prev, &mut rng);
                    prev
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn validation_rejects_bad_policies() {
        assert!(RecoveryConfig {
            appeal_deadline_ms: 0.0,
            ..RecoveryConfig::default_for_appeals()
        }
        .validate()
        .is_err());
        assert!(RecoveryConfig {
            retry: RetryConfig {
                max_attempts: 0,
                ..retry()
            },
            ..RecoveryConfig::default_for_appeals()
        }
        .validate()
        .is_err());
        assert!(RecoveryConfig {
            retry: RetryConfig {
                max_backoff_ms: 1.0,
                ..retry()
            },
            ..RecoveryConfig::default_for_appeals()
        }
        .validate()
        .is_err());
        assert!(RecoveryConfig {
            retry: RetryConfig {
                base_backoff_ms: f64::NAN,
                ..retry()
            },
            ..RecoveryConfig::default_for_appeals()
        }
        .validate()
        .is_err());
        let mut with_bad_breaker = RecoveryConfig::default_for_appeals();
        with_bad_breaker.breaker = Some(BreakerConfig {
            window: 0,
            ..BreakerConfig::default_for_appeals()
        });
        assert!(with_bad_breaker.validate().is_err());
        assert!(RecoveryConfig::default_for_appeals().validate().is_ok());
    }
}
