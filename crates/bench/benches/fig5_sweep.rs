//! Criterion bench: skipping-rate sweeps over the four routing methods (the
//! computation behind each Fig. 5 panel once the models are trained).

use appealnet_core::scores::ScoreKind;
use appealnet_core::sweep::{paper_sr_grid, sweep_methods};
use appealnet_core::system::EvaluationArtifacts;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn artifacts(n: usize, kind: ScoreKind, phase: f32) -> EvaluationArtifacts {
    EvaluationArtifacts {
        scores: (0..n)
            .map(|i| ((i as f32 * 0.13 + phase).sin() + 1.0) / 2.0)
            .collect(),
        little_correct: (0..n).map(|i| i % 5 != 0).collect(),
        big_correct: (0..n).map(|i| i % 23 != 0).collect(),
        hard_flags: vec![false; n],
        little_flops: 130_000,
        big_flops: 3_000_000,
        score_kind: kind,
    }
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_sweep");
    group.sample_size(20);
    let n = 1500;
    let a = artifacts(n, ScoreKind::AppealNetQ, 0.0);
    let b = artifacts(n, ScoreKind::Msp, 0.3);
    let d = artifacts(n, ScoreKind::ScoreMargin, 0.7);
    let e = artifacts(n, ScoreKind::Entropy, 1.1);
    let methods = vec![
        (ScoreKind::AppealNetQ, &a),
        (ScoreKind::Msp, &b),
        (ScoreKind::ScoreMargin, &d),
        (ScoreKind::Entropy, &e),
    ];
    let grid = paper_sr_grid();
    group.bench_function("four_methods_seven_rates_1500_samples", |bench| {
        bench.iter(|| sweep_methods(black_box(&methods), black_box(&grid)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
