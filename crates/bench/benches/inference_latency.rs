//! Criterion bench: single-image inference latency of the little networks vs
//! the big network, and of the full collaborative routing step — the runtime
//! costs the paper's cost model (Eq. 5 / Eq. 15) abstracts into c1 and c0.

use appeal_hw::SystemModel;
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::parallel::ChunkPolicy;
use appealnet_core::system::CollaborativeSystem;
use appealnet_core::two_head::TwoHeadNet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_latency");
    group.sample_size(20);
    let mut rng = SeededRng::new(0);
    let image = Tensor::randn(&[1, 3, 12, 12], &mut rng);

    for family in ModelFamily::little_families() {
        let mut model = ModelSpec::little(family, [3, 12, 12], 10).build(&mut rng);
        group.bench_function(format!("little_{}_single_image", family.name()), |b| {
            b.iter(|| model.forward(black_box(&image), false))
        });
    }
    let mut big = ModelSpec::big([3, 12, 12], 10).build(&mut rng);
    group.bench_function("big_resnet_like_single_image", |b| {
        b.iter(|| big.forward(black_box(&image), false))
    });

    // Full collaborative routing of a small batch.
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
    let net = TwoHeadNet::from_parts(little, &mut rng);
    let big = ModelSpec::big([3, 12, 12], 10).build(&mut rng);
    let mut system = CollaborativeSystem::new(net, big, 0.5, SystemModel::typical())
        .expect("0.5 is a valid threshold");
    let batch = Tensor::randn(&[16, 3, 12, 12], &mut rng);
    group.bench_function("collaborative_routing_16_images", |b| {
        b.iter(|| system.classify(black_box(&batch)))
    });

    // Sequential vs rayon-sharded routing of larger batches: both systems
    // share one set of trained weights (cloned), so they route identically
    // and differ only in the batch execution strategy. The parallel path
    // wins once the batch is big enough to amortize the fan-out (it degrades
    // to the sequential path on a single-core machine).
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
    let shared_net = TwoHeadNet::from_parts(little, &mut rng);
    let shared_big = ModelSpec::big([3, 12, 12], 10).build(&mut rng);
    for batch_size in [32usize, 64, 128] {
        let batch = Tensor::randn(&[batch_size, 3, 12, 12], &mut rng);
        let mut sequential = CollaborativeSystem::with_policy(
            shared_net.clone(),
            shared_big.clone(),
            0.5,
            SystemModel::typical(),
            ChunkPolicy::sequential(),
        )
        .expect("0.5 is a valid threshold");
        group.bench_function(format!("routing_{batch_size}_images_sequential"), |b| {
            b.iter(|| sequential.classify(black_box(&batch)))
        });
        let mut parallel = CollaborativeSystem::with_policy(
            shared_net.clone(),
            shared_big.clone(),
            0.5,
            SystemModel::typical(),
            ChunkPolicy {
                min_shard: 8,
                max_shards: rayon::current_num_threads(),
            },
        )
        .expect("0.5 is a valid threshold");
        group.bench_function(format!("routing_{batch_size}_images_rayon"), |b| {
            b.iter(|| parallel.classify(black_box(&batch)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
