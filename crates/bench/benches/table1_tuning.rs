//! Criterion bench: minimum-cost threshold search under an AccI constraint
//! (the per-cell computation of Table I).

use appealnet_core::scores::ScoreKind;
use appealnet_core::system::EvaluationArtifacts;
use appealnet_core::tuning::{max_accuracy_for_skipping_rate, min_cost_for_acci};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn artifacts(n: usize) -> EvaluationArtifacts {
    EvaluationArtifacts {
        scores: (0..n).map(|i| ((i * 7919) % n) as f32 / n as f32).collect(),
        little_correct: (0..n).map(|i| i % 4 != 0).collect(),
        big_correct: (0..n).map(|i| i % 31 != 0).collect(),
        hard_flags: vec![false; n],
        little_flops: 130_000,
        big_flops: 3_000_000,
        score_kind: ScoreKind::AppealNetQ,
    }
}

fn bench_tuning(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_tuning");
    group.sample_size(15);
    let art = artifacts(1500);
    group.bench_function("min_cost_for_acci_90", |b| {
        b.iter(|| min_cost_for_acci(black_box(&art), black_box(0.90)).unwrap())
    });
    group.bench_function("max_accuracy_for_sr_80", |b| {
        b.iter(|| max_accuracy_for_skipping_rate(black_box(&art), black_box(0.80)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tuning);
criterion_main!(benches);
