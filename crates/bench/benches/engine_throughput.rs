//! Criterion bench: requests/sec through the serving engine's micro-batching
//! path — single-request submission with automatic flushes vs. whole-batch
//! classification, sequential vs. rayon-sharded execution.

use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::parallel::ChunkPolicy;
use appealnet_core::serve::{Engine, InferenceRequest, ThresholdPolicy};
use appealnet_core::two_head::TwoHeadNet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn build_engine(chunk: ChunkPolicy, max_batch: usize) -> Engine {
    let mut rng = SeededRng::new(7);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut rng);
    let net = TwoHeadNet::from_parts(little, &mut rng);
    let big = ModelSpec::big([3, 12, 12], 10).build(&mut rng);
    Engine::builder()
        .appealnet(net)
        .big(big)
        .policy(ThresholdPolicy::new(0.5).expect("valid threshold"))
        .chunk_policy(chunk)
        .max_batch(max_batch)
        .build()
        .expect("complete engine configuration")
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(15);
    let mut rng = SeededRng::new(8);
    let frames: Vec<Tensor> = (0..64)
        .map(|_| Tensor::randn(&[3, 12, 12], &mut rng))
        .collect();
    let batch = Tensor::randn(&[64, 3, 12, 12], &mut rng);

    // 64 single requests through the micro-batch queue (capacity 16).
    let mut micro = build_engine(ChunkPolicy::runtime(), 16);
    group.bench_function("64_requests_micro_batched_16", |b| {
        b.iter(|| {
            for (i, frame) in frames.iter().enumerate() {
                let _ = micro
                    .submit(InferenceRequest::new(i as u64, black_box(frame).clone()))
                    .expect("request matches the input shape");
            }
            micro.flush().expect("flush succeeds")
        })
    });

    // The same 64 samples as one pre-assembled batch.
    let mut whole = build_engine(ChunkPolicy::runtime(), 64);
    group.bench_function("64_requests_whole_batch", |b| {
        b.iter(|| {
            whole
                .classify_batch(black_box(&batch))
                .expect("valid batch")
        })
    });

    // Sequential vs. rayon-sharded execution of the same batch (parity on a
    // single-core machine; the sharded path wins with more cores).
    let mut sequential = build_engine(ChunkPolicy::sequential(), 64);
    group.bench_function("64_requests_sequential_chunks", |b| {
        b.iter(|| {
            sequential
                .classify_batch(black_box(&batch))
                .expect("valid batch")
        })
    });
    let mut sharded = build_engine(
        ChunkPolicy {
            min_shard: 8,
            max_shards: rayon::current_num_threads(),
        },
        64,
    );
    group.bench_function("64_requests_rayon_chunks", |b| {
        b.iter(|| {
            sharded
                .classify_batch(black_box(&batch))
                .expect("valid batch")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
