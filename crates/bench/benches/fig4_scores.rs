//! Criterion bench: score histogram and AUROC computation (the analysis
//! behind Fig. 4), measured on synthetic artifacts of realistic size.

use appealnet_core::experiments::fig4::{auroc, score_histogram};
use appealnet_core::scores::ScoreKind;
use appealnet_core::system::EvaluationArtifacts;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn artifacts(n: usize) -> EvaluationArtifacts {
    EvaluationArtifacts {
        scores: (0..n).map(|i| (i as f32 * 0.37).sin().abs()).collect(),
        little_correct: (0..n).map(|i| i % 7 != 0).collect(),
        big_correct: vec![true; n],
        hard_flags: (0..n).map(|i| i % 9 == 0).collect(),
        little_flops: 130_000,
        big_flops: 3_000_000,
        score_kind: ScoreKind::AppealNetQ,
    }
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_scores");
    group.sample_size(20);
    let art = artifacts(1500);
    group.bench_function("auroc_1500", |b| {
        b.iter(|| auroc(black_box(&art.scores), black_box(&art.little_correct)))
    });
    group.bench_function("histogram_1500_x10bins", |b| {
        b.iter_batched(
            || art.clone(),
            |a| score_histogram(black_box(&a), 10),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
