//! Criterion bench: evaluation of the AppealNet joint objective (Eq. 9 /
//! Eq. 10) and one joint-training step, the inner loop of Algorithm 1.

use appeal_dataset::{DatasetPreset, Fidelity};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::SeededRng;
use appeal_tensor::Tensor;
use appealnet_core::loss::{AppealLoss, CloudMode};
use appealnet_core::two_head::TwoHeadNet;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint_loss");
    group.sample_size(20);

    // Pure loss evaluation on a realistic batch.
    let mut rng = SeededRng::new(0);
    let batch = 48;
    let classes = 10;
    let logits = Tensor::randn(&[batch, classes], &mut rng);
    let q: Vec<f32> = (0..batch).map(|_| rng.uniform(0.05, 0.95)).collect();
    let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
    let big: Vec<f32> = (0..batch).map(|_| rng.uniform(0.0, 0.5)).collect();
    for (name, loss) in [
        ("whitebox", AppealLoss::new(0.15, CloudMode::WhiteBox)),
        ("blackbox", AppealLoss::new(0.15, CloudMode::BlackBox)),
    ] {
        group.bench_function(format!("loss_compute_{name}_48x10"), |b| {
            b.iter(|| {
                loss.compute(
                    black_box(&logits),
                    black_box(&q),
                    black_box(&labels),
                    black_box(&big),
                )
            })
        });
    }

    // One full joint-training step (forward + loss + backward) on a smoke batch.
    let pair = DatasetPreset::Cifar10Like.spec(Fidelity::Smoke).generate();
    let mut net_rng = SeededRng::new(1);
    let parts = ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).build(&mut net_rng);
    let mut net = TwoHeadNet::from_parts(parts, &mut net_rng);
    let loss = AppealLoss::new(0.15, CloudMode::BlackBox);
    let batch = pair.train.gather(&(0..32).collect::<Vec<_>>());
    group.bench_function("joint_training_step_32_images", |b| {
        b.iter(|| {
            net.zero_grad();
            let out = net.forward(black_box(&batch.images), true);
            let loss_out = loss.compute(&out.logits, &out.q, &batch.labels, &[]);
            net.backward(&loss_out.grad_logits, &loss_out.grad_q);
            loss_out.loss
        })
    });
    group.finish();
}

criterion_group!(benches, bench_loss);
criterion_main!(benches);
