//! Criterion bench: the black-box (oracle cloud) appealing-rate search of
//! Table II, where the big network is always correct.

use appealnet_core::scores::ScoreKind;
use appealnet_core::system::EvaluationArtifacts;
use appealnet_core::tuning::min_cost_for_acci;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn blackbox_artifacts(n: usize) -> EvaluationArtifacts {
    EvaluationArtifacts {
        scores: (0..n)
            .map(|i| ((i * 104_729) % n) as f32 / n as f32)
            .collect(),
        little_correct: (0..n).map(|i| i % 6 != 0).collect(),
        // Oracle cloud: always correct.
        big_correct: vec![true; n],
        hard_flags: vec![false; n],
        little_flops: 130_000,
        big_flops: 3_000_000,
        score_kind: ScoreKind::AppealNetQ,
    }
}

fn bench_blackbox_tuning(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_tuning");
    group.sample_size(15);
    let art = blackbox_artifacts(1500);
    for target in [0.5f64, 0.75, 0.95] {
        group.bench_function(format!("min_ar_for_acci_{:.0}", target * 100.0), |b| {
            b.iter(|| min_cost_for_acci(black_box(&art), black_box(target)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blackbox_tuning);
criterion_main!(benches);
