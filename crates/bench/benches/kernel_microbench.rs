//! Criterion microbenches for the compute-kernel layer: the blocked GEMM and
//! the GEMM-lowered convolutions against the retained naive reference
//! kernels from `appeal_tensor::kernels::naive`.
//!
//! Groups:
//!
//! * `matmul_shapes` — naive vs. dispatched-SIMD blocked matmuls, plus a
//!   forced-scalar entry per shape so the explicit-SIMD speedup (and the
//!   scalar fallback's parity with the PR 3 autovectorized kernel) is
//!   directly visible. On `fast-kernels` builds running on FMA hardware a
//!   `forced_muladd` entry per shape additionally pins the unfused kernel,
//!   so the FMA-vs-mul-then-add microkernel speedup is measured
//!   like-for-like in one process (the `simd_` entry is the fused tier
//!   there — fused dispatch is the default). The active ISA and the build's
//!   numeric contract are printed once at startup.
//! * `elementwise` — ReLU forward / bias broadcast / axpy on the dispatched
//!   SIMD backend vs. forced scalar vs. the seed closure idioms; under
//!   `fast-kernels` + FMA an `axpy_forced_muladd` entry pins the unfused
//!   axpy the same way.
//! * `conv_forward` — the seed 7-deep loop vs. the im2col + GEMM `Conv2d`
//!   forward (bar: >= 5x on a 3x3 convolution), plus the depthwise pair.
//! * `conv_backward` — seed loop vs. GEMM-lowered backward.
//!
//! Set `APPEALNET_BENCH_QUICK=1` (as CI does) for a seconds-scale smoke run
//! on reduced shapes and sample counts. Thread count follows the vendored
//! rayon shim's `RAYON_NUM_THREADS`; run once with `RAYON_NUM_THREADS=1` and
//! once without to compare serial vs. row-parallel GEMM on multicore hosts
//! (on a single-core container both paths are the serial kernel).

use appeal_tensor::kernels::{self, elementwise, naive, Isa};
use appeal_tensor::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("APPEALNET_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn randn_vec(rng: &mut SeededRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.normal(0.0, 1.0)).collect()
}

fn bench_matmul_shapes(c: &mut Criterion) {
    // Perf numbers are only meaningful relative to a dispatch path and a
    // numeric tier; print both once so recorded runs
    // (reports/kernel_speedup.txt) are attributable.
    eprintln!(
        "kernel_microbench: active ISA = {}, contract = {}{}",
        kernels::active_isa(),
        kernels::numeric_contract(),
        if kernels::fused_active() {
            " (+fma)"
        } else {
            ""
        }
    );
    let mut group = c.benchmark_group("matmul_shapes");
    group.sample_size(if quick() { 5 } else { 20 });
    let sizes: &[usize] = if quick() {
        &[32, 64]
    } else {
        &[32, 64, 128, 256]
    };
    let mut rng = SeededRng::new(0xBE_7C);
    for &s in sizes {
        let a = Tensor::randn(&[s, s], &mut rng);
        let b = Tensor::randn(&[s, s], &mut rng);
        group.bench_function(format!("naive_{s}x{s}x{s}"), |bch| {
            bch.iter(|| naive::matmul_naive(s, s, s, black_box(a.data()), black_box(b.data())))
        });
        // The dispatched explicit-SIMD kernel (whatever active_isa() picked).
        group.bench_function(format!("simd_{s}x{s}x{s}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
        // The scalar (autovectorized) microkernel — i.e. the PR 3 kernel —
        // for a like-for-like scalar-vs-SIMD comparison in one run.
        let prev = kernels::force_isa(Some(Isa::Scalar));
        group.bench_function(format!("forced_scalar_{s}x{s}x{s}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
        kernels::force_isa(prev);
        // fast-kernels on FMA hardware: pin the unfused (mul-then-add)
        // kernel so the fused-vs-unfused microkernel speedup is visible in
        // one run. (`simd_` above is the fused tier there, as in serving.)
        // Gated on fused_active(), not fma_supported(): under a forced
        // sub-AVX2 dispatch (e.g. APPEALNET_FORCE_SCALAR) both entries
        // would measure the same unfused kernel and the comparison would
        // be meaningless.
        if kernels::fused_active() {
            let prev = kernels::force_fused(Some(false));
            group.bench_function(format!("forced_muladd_{s}x{s}x{s}"), |bch| {
                bch.iter(|| black_box(&a).matmul(black_box(&b)))
            });
            kernels::force_fused(prev);
        }
    }
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementwise");
    group.sample_size(if quick() { 5 } else { 20 });
    let n: usize = if quick() { 1 << 12 } else { 1 << 16 };
    let (rows, cols) = if quick() {
        (16usize, 64usize)
    } else {
        (64, 256)
    };
    let mut rng = SeededRng::new(0xE1_E3);
    let src: Vec<f32> = (0..n).map(|_| rng.normal(0.0, 1.0)).collect();
    let other: Vec<f32> = (0..n).map(|_| rng.normal(0.0, 1.0)).collect();
    let bias: Vec<f32> = (0..cols).map(|_| rng.normal(0.0, 1.0)).collect();
    let matrix: Vec<f32> = (0..rows * cols).map(|_| rng.normal(0.0, 1.0)).collect();
    let mut dst = vec![0.0f32; n];

    // ReLU forward: seed closure idiom vs dispatched kernel vs forced scalar.
    group.bench_function("relu_naive_map", |bch| {
        bch.iter(|| {
            black_box(&src)
                .iter()
                .map(|&x| x.max(0.0))
                .collect::<Vec<f32>>()
        })
    });
    group.bench_function("relu_simd", |bch| {
        bch.iter(|| elementwise::relu_fwd(black_box(&src), black_box(&mut dst)))
    });
    let prev = kernels::force_isa(Some(Isa::Scalar));
    group.bench_function("relu_forced_scalar", |bch| {
        bch.iter(|| elementwise::relu_fwd(black_box(&src), black_box(&mut dst)))
    });
    kernels::force_isa(prev);

    // Column-broadcast bias add.
    group.bench_function("bias_naive_loop", |bch| {
        bch.iter(|| {
            let mut data = black_box(&matrix).clone();
            for row in data.chunks_exact_mut(cols) {
                for (o, &bv) in row.iter_mut().zip(bias.iter()) {
                    *o += bv;
                }
            }
            data
        })
    });
    group.bench_function("bias_simd", |bch| {
        bch.iter(|| {
            let mut data = black_box(&matrix).clone();
            elementwise::bias_add_rows(&mut data, black_box(&bias));
            data
        })
    });

    // axpy (the SGD / gradient-accumulation primitive).
    group.bench_function("axpy_naive_loop", |bch| {
        bch.iter(|| {
            let mut y = black_box(&src).clone();
            for (a, &b) in y.iter_mut().zip(other.iter()) {
                *a += 0.5 * b;
            }
            y
        })
    });
    group.bench_function("axpy_simd", |bch| {
        bch.iter(|| {
            let mut y = black_box(&src).clone();
            elementwise::axpy(0.5, black_box(&other), &mut y);
            y
        })
    });
    // fast-kernels on FMA hardware: the unfused axpy for a fused-vs-unfused
    // comparison (axpy_simd above is the fused tier there; same
    // fused_active() gate as the GEMM entries).
    if kernels::fused_active() {
        let prev = kernels::force_fused(Some(false));
        group.bench_function("axpy_forced_muladd", |bch| {
            bch.iter(|| {
                let mut y = black_box(&src).clone();
                elementwise::axpy(0.5, black_box(&other), &mut y);
                y
            })
        });
        kernels::force_fused(prev);
    }
    group.finish();
}

/// The MobileNet-ish hot shape: 3x3 convolution over a mid-network feature
/// map (quick mode shrinks the spatial extent).
fn conv_shape() -> (usize, usize, usize, usize) {
    // (batch, channels_in, channels_out, spatial)
    if quick() {
        (1, 8, 16, 8)
    } else {
        (4, 16, 32, 16)
    }
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_forward");
    group.sample_size(if quick() { 5 } else { 20 });
    let (n, ci, co, hw) = conv_shape();
    let mut rng = SeededRng::new(0xC0_4F);
    let x = Tensor::randn(&[n, ci, hw, hw], &mut rng);
    let mut conv = Conv2d::new(ci, co, 3, 1, 1, &mut rng);
    let weight = randn_vec(&mut rng, co * ci * 3 * 3);
    let bias = randn_vec(&mut rng, co);
    group.bench_function("naive_3x3", |bch| {
        bch.iter(|| {
            naive::conv2d_forward_naive(
                black_box(x.data()),
                n,
                ci,
                hw,
                hw,
                &weight,
                &bias,
                co,
                3,
                1,
                1,
            )
        })
    });
    group.bench_function("gemm_3x3", |bch| {
        bch.iter(|| conv.forward(black_box(&x), false))
    });

    let mut dw = DepthwiseConv2d::new(ci, 3, 1, 1, &mut rng);
    let dw_weight = randn_vec(&mut rng, ci * 3 * 3);
    let dw_bias = randn_vec(&mut rng, ci);
    group.bench_function("naive_depthwise_3x3", |bch| {
        bch.iter(|| {
            naive::depthwise_forward_naive(
                black_box(x.data()),
                n,
                ci,
                hw,
                hw,
                &dw_weight,
                &dw_bias,
                3,
                1,
                1,
            )
        })
    });
    group.bench_function("gemm_depthwise_3x3", |bch| {
        bch.iter(|| dw.forward(black_box(&x), false))
    });
    group.finish();
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_backward");
    group.sample_size(if quick() { 5 } else { 20 });
    let (n, ci, co, hw) = conv_shape();
    let mut rng = SeededRng::new(0xBA_C4);
    let x = Tensor::randn(&[n, ci, hw, hw], &mut rng);
    let mut conv = Conv2d::new(ci, co, 3, 1, 1, &mut rng);
    let y = conv.forward(&x, true);
    let go = Tensor::randn(y.shape(), &mut rng);
    let weight = randn_vec(&mut rng, co * ci * 3 * 3);
    group.bench_function("naive_3x3", |bch| {
        bch.iter(|| {
            naive::conv2d_backward_naive(
                black_box(x.data()),
                n,
                ci,
                hw,
                hw,
                &weight,
                black_box(go.data()),
                co,
                3,
                1,
                1,
            )
        })
    });
    group.bench_function("gemm_3x3", |bch| bch.iter(|| conv.backward(black_box(&go))));
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_shapes,
    bench_elementwise,
    bench_conv_forward,
    bench_conv_backward
);
criterion_main!(benches);
