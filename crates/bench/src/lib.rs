//! # appeal-bench
//!
//! Benchmark and experiment harnesses that regenerate every table and figure
//! of the AppealNet paper's evaluation section.
//!
//! Two kinds of targets live in this crate:
//!
//! * **Binaries** (`src/bin/*.rs`) — run the full experiment pipelines
//!   (dataset generation, training, threshold tuning) and print the same
//!   rows/series the paper reports. `cargo run --release -p appeal-bench
//!   --bin paper_suite` regenerates everything in one pass and writes text
//!   reports into the repository's `reports/` directory.
//! * **Criterion benches** (`benches/*.rs`) — micro-benchmarks of the hot
//!   paths (inference latency, score computation, sweeps, threshold tuning,
//!   joint-loss evaluation) at smoke scale so `cargo bench --workspace`
//!   completes quickly.
//!
//! The experiment fidelity of the binaries can be overridden with the
//! `APPEALNET_FIDELITY` environment variable (`smoke` or `paper`).

use appeal_dataset::Fidelity;
use appealnet_core::experiments::ExperimentContext;
use std::fs;
use std::path::PathBuf;

/// Reads the experiment fidelity from `APPEALNET_FIDELITY` (default: `paper`).
pub fn fidelity_from_env() -> Fidelity {
    match std::env::var("APPEALNET_FIDELITY")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "smoke" => Fidelity::Smoke,
        _ => Fidelity::Paper,
    }
}

/// The experiment context used by all harness binaries.
pub fn harness_context() -> ExperimentContext {
    ExperimentContext::new(fidelity_from_env(), 2021)
}

/// Directory where harness binaries write their text reports.
pub fn report_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("reports");
    fs::create_dir_all(&dir).expect("failed to create reports directory");
    dir
}

/// Writes a report to `reports/<name>.txt` and echoes it to stdout.
pub fn write_report(name: &str, text: &str) {
    println!("{text}");
    let path = report_dir().join(format!("{name}.txt"));
    if let Err(err) = fs::write(&path, text) {
        eprintln!("warning: failed to write {}: {err}", path.display());
    } else {
        eprintln!("[report written to {}]", path.display());
    }
}

/// Seconds elapsed since `start`, formatted for progress logs.
pub fn elapsed_secs(start: std::time::Instant) -> String {
    format!("{:.1}s", start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_env_parsing_defaults_to_paper() {
        // The env var is not set in the test environment.
        if std::env::var("APPEALNET_FIDELITY").is_err() {
            assert_eq!(fidelity_from_env(), Fidelity::Paper);
        }
    }

    #[test]
    fn context_uses_env_fidelity() {
        let ctx = harness_context();
        assert!(ctx.beta > 0.0);
    }

    #[test]
    fn report_dir_is_creatable() {
        let dir = report_dir();
        assert!(dir.exists());
    }
}
