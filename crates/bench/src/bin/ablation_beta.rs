//! β ablation: how the trade-off weight of the joint objective (Eq. 9/10)
//! moves the predictor's operating point.
//!
//! Runs in black-box mode so no big-network training is needed per β value.

use appeal_bench::{harness_context, write_report};
use appeal_dataset::DatasetPreset;
use appeal_models::ModelFamily;
use appealnet_core::experiments::{ablations, PreparedExperiment};
use appealnet_core::loss::CloudMode;
use appealnet_core::scores::ScoreKind;

fn main() {
    let ctx = harness_context();
    let betas = [0.02f32, 0.05, 0.15, 0.5, 1.0];
    let preset = DatasetPreset::Cifar10Like;
    let family = ModelFamily::MobileNetLike;
    let pair = preset.spec(ctx.fidelity).generate();

    let mut rows = Vec::new();
    for &beta in &betas {
        let prepared = PreparedExperiment::prepare_with_data(
            preset,
            &pair,
            family,
            CloudMode::BlackBox,
            &ctx.with_beta(beta),
        );
        let art = prepared.artifacts(ScoreKind::AppealNetQ);
        rows.push(ablations::BetaAblationRow {
            beta,
            appealnet_accuracy: prepared.appealnet_accuracy,
            mean_q: art.scores.iter().map(|&s| s as f64).sum::<f64>() / art.len() as f64,
            accuracy_at_sr90: art
                .at_skipping_rate(0.9)
                .expect("prepared artifacts are non-empty with finite scores")
                .overall_accuracy,
            q_auroc: appealnet_core::experiments::fig4::auroc(&art.scores, &art.little_correct),
        });
    }
    let text = format!(
        "Beta ablation (black-box, CIFAR-10-like, MobileNet-like little network)\n\n{}",
        ablations::render_beta_table(&rows)
    );
    write_report("ablation_beta", &text);
}
