//! Fleet simulation driver: replays synthetic traces through the
//! deterministic two-tier simulator (`appealnet_fleet`) and reports the
//! fleet-level curves the single-device experiments cannot see.
//!
//! ```text
//! cargo run --release -p appeal-bench --bin fleet_sim
//! APPEALNET_FIDELITY=smoke cargo run --release -p appeal-bench --bin fleet_sim
//! ```
//!
//! Four experiment sections:
//!
//! - **A** — end-to-end p50/p99 latency versus the skipping rate (Eq. 11),
//!   sweeping the routing threshold δ over two link presets (wifi, lte).
//! - **B** — cloud GPU load (GPU-equivalents) versus fleet size: how many
//!   edge nodes one batching cloud absorbs on each link.
//! - **C** — SLO violation rate under bursty spikes on the slow link.
//! - **D** — adaptive per-node offload budget versus a static fleet when the
//!   link degrades mid-trace: the controller should tighten and pull the
//!   post-degradation appeal rate down.
//!
//! Every configuration is simulated twice and the rendered metrics compared
//! byte-for-byte; any mismatch, accounting-invariant violation
//! ([`FleetMetrics::check`]) or missing adaptive win makes the binary exit
//! non-zero, so it doubles as a CI smoke test of the simulator.

use appeal_bench::{fidelity_from_env, write_report};
use appeal_dataset::Fidelity;
use appeal_hw::{DeviceSpec, FaultPlan, StochasticLink};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::SeededRng;
use appealnet_core::{ChunkPolicy, TwoHeadNet};
use appealnet_fleet::trace::{TraceShape, TraceSpec};
use appealnet_fleet::{
    AdaptiveConfig, CloudConfig, Degradation, FleetConfig, FleetMetrics, FleetSim, GossipConfig,
};

const INPUT: [usize; 3] = [3, 12, 12];
const CLASSES: usize = 4;
const SEED: u64 = 2021;
const MEAN_GAP_NANOS: u64 = 2_000_000; // 2 ms between arrivals on average

/// Builds a fresh fleet for one run. Tiny untrained models: the simulator
/// measures routing/queueing/link behaviour, not accuracy, and fresh builds
/// per run keep every simulation independent and reproducible.
fn build(config: FleetConfig) -> FleetSim {
    let mut rng = SeededRng::new(SEED);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, INPUT, CLASSES).build(&mut rng);
    let big = ModelSpec::big(INPUT, CLASSES).build(&mut rng);
    FleetSim::new(TwoHeadNet::from_parts(little, &mut rng), big, config).expect("valid config")
}

fn cloud() -> CloudConfig {
    CloudConfig {
        device: DeviceSpec::cloud_gpu(),
        max_batch: 8,
        deadline_ms: 2.0,
        batch_overhead_ms: 1.0,
        shed_backlog_ms: None,
    }
}

fn base_config(nodes: usize, delta: f64, link: StochasticLink) -> FleetConfig {
    FleetConfig {
        nodes,
        delta,
        edge_device: DeviceSpec::mobile_soc(),
        cloud: cloud(),
        link,
        node_links: None,
        degrade: None,
        adaptive: None,
        recovery: None,
        gossip: GossipConfig::disabled(),
        cooperative: None,
        faults: FaultPlan::none(),
        slo_ms: 100.0,
        chunk: ChunkPolicy::sequential(),
        seed: SEED,
    }
}

fn uniform_trace(requests: usize) -> TraceSpec {
    TraceSpec {
        shape: TraceShape::Uniform,
        requests,
        mean_gap_nanos: MEAN_GAP_NANOS,
        clients: 64,
        seed: SEED,
    }
}

/// Runs one configuration twice and byte-compares the rendered metrics; any
/// drift or accounting violation lands in `violations`.
fn simulate(
    name: &str,
    config: &FleetConfig,
    trace: &TraceSpec,
    violations: &mut Vec<String>,
) -> (FleetMetrics, String) {
    let metrics = build(config.clone()).run(trace);
    let rendered = metrics.render();
    let second = build(config.clone()).run(trace).render();
    if rendered != second {
        violations.push(format!(
            "[{name}] two same-seed runs rendered different bytes"
        ));
    }
    for v in metrics.check() {
        violations.push(format!("[{name}] {v}"));
    }
    (metrics, rendered)
}

fn section(text: &mut String, title: &str) {
    text.push_str(&format!("--- {title} ---\n"));
}

fn entry(text: &mut String, name: &str, rendered: &str) {
    text.push_str(&format!("[{name}]\n"));
    for line in rendered.lines() {
        text.push_str(&format!("  {line}\n"));
    }
}

fn main() {
    let fidelity = fidelity_from_env();
    let per_node = match fidelity {
        Fidelity::Smoke => 24,
        Fidelity::Paper => 96,
    };
    let mut violations = Vec::new();
    let mut text = format!(
        "AppealNet fleet simulation: deterministic two-tier edge/cloud over a stochastic link\n\
         fidelity {fidelity:?} | seed {SEED} | {per_node} requests/node | edge mobile_soc | \
         cloud cloud_gpu | max_batch 8 | deadline 2.0 ms\n\n"
    );

    // A: latency vs skipping rate. δ sweeps the appeal boundary (Eq. 1);
    // the link preset sets what each appeal costs end-to-end. The untrained
    // predictor's scores cluster high, so the sweep sits in [0.7, 0.95] to
    // actually move the skipping rate.
    section(&mut text, "A: latency vs skipping rate (8 nodes, uniform)");
    let trace8 = uniform_trace(8 * per_node);
    for (link_name, link) in [
        ("wifi", StochasticLink::wifi()),
        ("lte", StochasticLink::lte()),
    ] {
        for delta in [0.7, 0.85, 0.95] {
            let name = format!("{link_name} delta={delta:.2}");
            let config = base_config(8, delta, link.clone());
            let (_, rendered) = simulate(&name, &config, &trace8, &mut violations);
            entry(&mut text, &name, &rendered);
        }
    }
    text.push('\n');

    // B: cloud load vs fleet size at a fixed δ: per-node traffic is held
    // constant, so doubling the fleet doubles offered appeals.
    section(&mut text, "B: cloud GPU load vs fleet size (delta=0.9)");
    for (link_name, link) in [
        ("wifi", StochasticLink::wifi()),
        ("lte", StochasticLink::lte()),
    ] {
        for nodes in [4usize, 16] {
            let name = format!("{link_name} nodes={nodes}");
            let config = base_config(nodes, 0.9, link.clone());
            let trace = uniform_trace(nodes * per_node);
            let (_, rendered) = simulate(&name, &config, &trace, &mut violations);
            entry(&mut text, &name, &rendered);
        }
    }
    text.push('\n');

    // C: SLO violations under bursty spikes on the slow link. Bursts pile
    // onto the per-node compute FIFOs and the uplink queues at once.
    section(
        &mut text,
        "C: SLO under bursty spikes (lte, 8 nodes, delta=0.9)",
    );
    let mut spike_config = base_config(8, 0.9, StochasticLink::lte());
    spike_config.slo_ms = 75.0;
    let spike_trace = TraceSpec {
        shape: TraceShape::Bursty { burst: 8 },
        requests: 8 * per_node,
        mean_gap_nanos: MEAN_GAP_NANOS,
        clients: 64,
        seed: SEED,
    };
    let (_, rendered) = simulate("bursty lte", &spike_config, &spike_trace, &mut violations);
    entry(&mut text, "bursty lte", &rendered);
    text.push('\n');

    // D: adaptive offload budget vs a static fleet through a mid-trace link
    // degradation. δ = 1.0 so every request wants the cloud; the adaptive
    // controller must notice the degraded round-trips and force appeals
    // back onto the edge.
    section(
        &mut text,
        "D: adaptive offload budget under link degradation (lte, 4 nodes, delta=1.0)",
    );
    // The controller only reacts when completions are *observed* between
    // window rolls, so this section runs a longer trace at a gentler arrival
    // rate: node inter-arrival ~32 ms against degraded round-trips of a few
    // hundred ms leaves plenty of trace for the feedback loop to bite.
    let requests = 16 * per_node;
    let degrade_gap_nanos = 4 * MEAN_GAP_NANOS;
    let degrade = Degradation {
        // A third of the way through the trace's expected span.
        after_nanos: requests as u64 * degrade_gap_nanos / 3,
        severity: 4.0,
    };
    let mut static_config = base_config(4, 1.0, StochasticLink::lte());
    static_config.degrade = Some(degrade);
    // Scale the controller off the *estimated* appeal cost (Eq. 5 c0) so the
    // experiment tracks the link preset instead of hard-coding milliseconds.
    let est_ms = build(static_config.clone())
        .routing_context()
        .offload_cost
        .latency_ms;
    let mut adaptive_config = static_config.clone();
    adaptive_config.adaptive = Some(AdaptiveConfig {
        window: 8,
        budget_ms: est_ms * 10.0, // admits the whole window when healthy
        target_ms: est_ms * 1.75, // nominal round-trips sit under this
        floor_ms: est_ms * 2.0,   // a tightened window admits ~2 appeals
    });
    let trace4 = TraceSpec {
        shape: TraceShape::Uniform,
        requests,
        mean_gap_nanos: degrade_gap_nanos,
        clients: 64,
        seed: SEED,
    };
    let (static_m, rendered) = simulate("static", &static_config, &trace4, &mut violations);
    entry(&mut text, "static", &rendered);
    let (adaptive_m, rendered) = simulate("adaptive", &adaptive_config, &trace4, &mut violations);
    entry(&mut text, "adaptive", &rendered);
    let (static_post, adaptive_post) = (
        static_m.post_degrade.as_ref().expect("degrade set"),
        adaptive_m.post_degrade.as_ref().expect("degrade set"),
    );
    text.push_str(&format!(
        "comparison: post-degrade appeal rate {:.1}% static -> {:.1}% adaptive | \
         post-degrade p99 {:.3} ms static -> {:.3} ms adaptive\n",
        100.0 * static_post.appeal_rate,
        100.0 * adaptive_post.appeal_rate,
        static_post.p99_ms,
        adaptive_post.p99_ms,
    ));
    if adaptive_post.appeal_rate >= static_post.appeal_rate {
        violations.push(format!(
            "[adaptive] post-degrade appeal rate {:.3} did not drop below static {:.3}",
            adaptive_post.appeal_rate, static_post.appeal_rate
        ));
    }
    text.push('\n');

    if violations.is_empty() {
        text.push_str("invariants: all accounting and determinism checks passed\n");
    } else {
        text.push_str("invariants: VIOLATED\n");
        for v in &violations {
            text.push_str(&format!("  {v}\n"));
        }
    }
    write_report("fleet_sim", &text);
    if !violations.is_empty() {
        eprintln!("fleet_sim detected {} violation(s)", violations.len());
        std::process::exit(1);
    }
}
