//! Fault-injection driver: replays scripted outages through the
//! deterministic fleet simulator and reports how the recovery machinery
//! (circuit breaker, bounded retries, graceful degradation) holds the SLO
//! and what degraded answers cost in accuracy.
//!
//! ```text
//! cargo run --release -p appeal-bench --bin fault_sim
//! APPEALNET_FIDELITY=smoke cargo run --release -p appeal-bench --bin fault_sim
//! ```
//!
//! Three experiment sections:
//!
//! - **A** — cloud outage duration × breaker on/off: every appeal sent into
//!   a blackout times out; the breaker-on fleet must trip to fail-local fast
//!   and end the run with strictly fewer SLO violations than the retry-only
//!   fleet under a full-trace outage.
//! - **B** — transient outage recovery: a mid-trace blackout ends and the
//!   fleet must resume answering from the cloud (retries bridge the gap).
//! - **C** — chaos mix: link brownout + response drop/corrupt + node crash
//!   in one run; every ledger must still reconcile exactly.
//! - **D** — cooperative vs independent degradation: the same outages with
//!   the gossip plane + fleet-stress policy on versus off. Under a full
//!   blackout the cooperative fleet must end with strictly fewer SLO
//!   violations *and* less wasted uplink (accepted transfers that never
//!   produced a cloud answer) than the independent fleet.
//!
//! Every configuration is simulated twice and the rendered metrics compared
//! byte-for-byte; any mismatch, accounting violation ([`FleetMetrics::check`])
//! or missing breaker win makes the binary exit non-zero, so it doubles as a
//! CI chaos smoke test.

use appeal_bench::{fidelity_from_env, write_report};
use appeal_dataset::Fidelity;
use appeal_hw::{DeviceSpec, FaultEvent, FaultPlan, StochasticLink};
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::SeededRng;
use appealnet_core::{ChunkPolicy, TwoHeadNet};
use appealnet_fleet::trace::{TraceShape, TraceSpec};
use appealnet_fleet::{
    BreakerConfig, CloudConfig, CooperativeConfig, FleetConfig, FleetMetrics, FleetSim,
    GossipConfig, RecoveryConfig, RetryConfig,
};

const INPUT: [usize; 3] = [3, 12, 12];
const CLASSES: usize = 4;
const SEED: u64 = 2021;
const MEAN_GAP_NANOS: u64 = 2_000_000; // 2 ms between arrivals on average
const NODES: usize = 4;
const MS: u64 = 1_000_000;

/// Builds a fresh fleet for one run (tiny untrained models; the experiment
/// measures recovery behaviour, not accuracy).
fn build(config: FleetConfig) -> FleetSim {
    let mut rng = SeededRng::new(SEED);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, INPUT, CLASSES).build(&mut rng);
    let big = ModelSpec::big(INPUT, CLASSES).build(&mut rng);
    FleetSim::new(TwoHeadNet::from_parts(little, &mut rng), big, config).expect("valid config")
}

/// The recovery policy under test. A tight 40 ms per-attempt deadline keeps
/// failure detection inside even the short outage windows; the breaker (when
/// on) is the stock appeal-path preset.
fn recovery(with_breaker: bool) -> RecoveryConfig {
    RecoveryConfig {
        appeal_deadline_ms: 40.0,
        retry: RetryConfig {
            max_attempts: 3,
            base_backoff_ms: 5.0,
            max_backoff_ms: 40.0,
        },
        breaker: if with_breaker {
            Some(BreakerConfig::default_for_appeals())
        } else {
            None
        },
    }
}

fn config(faults: FaultPlan, with_breaker: bool) -> FleetConfig {
    FleetConfig {
        nodes: NODES,
        delta: 0.9,
        edge_device: DeviceSpec::mobile_soc(),
        cloud: CloudConfig {
            device: DeviceSpec::cloud_gpu(),
            max_batch: 8,
            deadline_ms: 2.0,
            batch_overhead_ms: 1.0,
            shed_backlog_ms: None,
        },
        link: StochasticLink::wifi(),
        node_links: None,
        degrade: None,
        adaptive: None,
        recovery: Some(recovery(with_breaker)),
        gossip: GossipConfig::disabled(),
        cooperative: None,
        faults,
        slo_ms: 100.0,
        chunk: ChunkPolicy::sequential(),
        seed: SEED,
    }
}

/// The cooperative variant of [`config`]: same recovery ladder plus the
/// gossip plane and the fleet-stress degradation policy.
fn cooperative_config(faults: FaultPlan) -> FleetConfig {
    let mut cfg = config(faults, true);
    cfg.gossip = GossipConfig::default_for_fleet();
    cfg.cooperative = Some(CooperativeConfig::default_for_fleet());
    cfg
}

fn trace(requests: usize) -> TraceSpec {
    TraceSpec {
        shape: TraceShape::Uniform,
        requests,
        mean_gap_nanos: MEAN_GAP_NANOS,
        clients: 64,
        seed: SEED,
    }
}

/// Runs one configuration twice and byte-compares the rendered metrics; any
/// drift or accounting violation lands in `violations`.
fn simulate(
    name: &str,
    config: &FleetConfig,
    trace: &TraceSpec,
    violations: &mut Vec<String>,
) -> (FleetMetrics, String) {
    let metrics = build(config.clone()).run(trace);
    let rendered = metrics.render();
    let second = build(config.clone()).run(trace).render();
    if rendered != second {
        violations.push(format!(
            "[{name}] two same-seed runs rendered different bytes"
        ));
    }
    for v in metrics.check() {
        violations.push(format!("[{name}] {v}"));
    }
    (metrics, rendered)
}

fn section(text: &mut String, title: &str) {
    text.push_str(&format!("--- {title} ---\n"));
}

fn entry(text: &mut String, name: &str, rendered: &str) {
    text.push_str(&format!("[{name}]\n"));
    for line in rendered.lines() {
        text.push_str(&format!("  {line}\n"));
    }
}

fn main() {
    let fidelity = fidelity_from_env();
    let per_node = match fidelity {
        Fidelity::Smoke => 24,
        Fidelity::Paper => 96,
    };
    let requests = NODES * per_node;
    let mut violations = Vec::new();
    let mut text = format!(
        "AppealNet fault injection: scripted outages vs the appeal-path recovery machinery\n\
         fidelity {fidelity:?} | seed {SEED} | {NODES} nodes x {per_node} requests | \
         delta 0.90 | wifi | appeal deadline 40 ms | 3 attempts | SLO 100 ms\n\n"
    );

    // A: outage duration × breaker on/off. The blackout starts at t = 10 ms;
    // "full" outlives the entire run. Failure detection costs one 40 ms
    // appeal deadline per attempt, so the retry-only fleet burns >= 100 ms
    // per degraded request while the breaker-on fleet trips after one
    // failure window and fails local in edge time.
    section(&mut text, "A: SLO violations vs outage duration x breaker");
    let mut full_outage = Vec::new();
    for (dur_name, until_nanos) in [
        ("60ms", 10 * MS + 60 * MS),
        ("150ms", 10 * MS + 150 * MS),
        ("full", u64::MAX),
    ] {
        for breaker_on in [false, true] {
            let plan = FaultPlan::new(
                SEED,
                vec![FaultEvent::CloudBlackout {
                    from_nanos: 10 * MS,
                    until_nanos,
                }],
            )
            .expect("valid plan");
            let name = format!(
                "outage={dur_name} breaker={}",
                if breaker_on { "on" } else { "off" }
            );
            let cfg = config(plan, breaker_on);
            let (m, rendered) = simulate(&name, &cfg, &trace(requests), &mut violations);
            entry(&mut text, &name, &rendered);
            if dur_name == "full" {
                full_outage.push(m);
            }
        }
    }
    let (off, on) = (&full_outage[0], &full_outage[1]);
    text.push_str(&format!(
        "comparison (full outage): SLO violations {} retry-only -> {} breaker | \
         degraded {} -> {} | breaker opened {}\n\n",
        off.slo_violations,
        on.slo_violations,
        off.degraded_local,
        on.degraded_local,
        on.breaker_opened,
    ));
    if on.breaker_opened == 0 {
        violations.push("[full outage] breaker never opened".into());
    }
    if on.slo_violations >= off.slo_violations {
        violations.push(format!(
            "[full outage] breaker-on SLO violations {} did not beat retry-only {}",
            on.slo_violations, off.slo_violations
        ));
    }
    if off.degraded_local == 0 || on.degraded_local == 0 {
        violations.push("[full outage] no graceful degradation recorded".into());
    }

    // B: transient outage recovery. The blackout ends mid-trace; retries
    // scheduled during it land after it, so the cloud must answer again and
    // the run must record real retry traffic.
    section(
        &mut text,
        "B: recovery after a transient outage (60 ms, breaker on)",
    );
    let plan = FaultPlan::new(
        SEED,
        vec![FaultEvent::CloudBlackout {
            from_nanos: 10 * MS,
            until_nanos: 70 * MS,
        }],
    )
    .expect("valid plan");
    let (m, rendered) = simulate(
        "transient outage",
        &config(plan, true),
        &trace(requests),
        &mut violations,
    );
    entry(&mut text, "transient outage", &rendered);
    if m.cloud_answered == 0 {
        violations.push("[transient] cloud never resumed answering".into());
    }
    if m.retries == 0 {
        violations.push("[transient] no retries were attempted across the outage".into());
    }
    text.push('\n');

    // C: chaos mix — a brownout stretching transfers 3x, lossy and
    // corrupting return paths over the whole run, and node 0 crashed for
    // 50 ms. The point is the ledger: simulate() reconciles every counter
    // via FleetMetrics::check and byte-compares the replay.
    section(
        &mut text,
        "C: chaos mix (brownout + drops + corruption + crash)",
    );
    let plan = FaultPlan::new(
        SEED,
        vec![
            FaultEvent::LinkBrownout {
                from_nanos: 20 * MS,
                until_nanos: 120 * MS,
                severity: 3.0,
            },
            FaultEvent::ResponseDrop {
                from_nanos: 0,
                until_nanos: u64::MAX,
                probability: 0.25,
            },
            FaultEvent::ResponseCorrupt {
                from_nanos: 0,
                until_nanos: u64::MAX,
                probability: 0.2,
            },
            FaultEvent::NodeCrash {
                node: 0,
                at_nanos: 20 * MS,
                down_nanos: 50 * MS,
            },
        ],
    )
    .expect("valid plan");
    let (m, rendered) = simulate(
        "chaos",
        &config(plan, true),
        &trace(requests),
        &mut violations,
    );
    entry(&mut text, "chaos", &rendered);
    if m.crash_stalls == 0 {
        violations.push("[chaos] the crashed node stalled no arrivals".into());
    }
    if m.response_drops + m.response_corrupt == 0 {
        violations.push("[chaos] no response-path fault ever fired".into());
    }
    text.push('\n');

    // D: cooperative vs independent degradation. Same outage scripts, same
    // recovery ladder; the cooperative fleet adds the gossip plane and the
    // fleet-stress policy. "Wasted uplink" = accepted transfers that never
    // became a cloud answer — exactly the traffic a pre-emptive open or a
    // stress shed would have kept off the link.
    section(
        &mut text,
        "D: cooperative vs independent degradation (gossip + fleet stress)",
    );
    let blackout_full = || {
        FaultPlan::new(
            SEED,
            vec![FaultEvent::CloudBlackout {
                from_nanos: 10 * MS,
                until_nanos: u64::MAX,
            }],
        )
        .expect("valid plan")
    };
    let brownout = || {
        FaultPlan::new(
            SEED,
            vec![FaultEvent::LinkBrownout {
                from_nanos: 10 * MS,
                until_nanos: u64::MAX,
                severity: 4.0,
            }],
        )
        .expect("valid plan")
    };
    let flapping = || {
        FaultPlan::new(
            SEED,
            (0..4)
                .map(|i| FaultEvent::CloudBlackout {
                    from_nanos: (10 + 50 * i) * MS,
                    until_nanos: (40 + 50 * i) * MS,
                })
                .collect(),
        )
        .expect("valid plan")
    };
    let wasted = |m: &FleetMetrics| m.uplink_accepted - m.cloud_answered;
    let mut blackout_pair = Vec::new();
    for (scenario, plan) in [
        ("blackout", blackout_full as fn() -> FaultPlan),
        ("brownout", brownout),
        ("flapping", flapping),
    ] {
        for cooperative in [false, true] {
            let name = format!(
                "{scenario} policy={}",
                if cooperative {
                    "cooperative"
                } else {
                    "independent"
                }
            );
            let cfg = if cooperative {
                cooperative_config(plan())
            } else {
                config(plan(), true)
            };
            let (m, rendered) = simulate(&name, &cfg, &trace(requests), &mut violations);
            entry(&mut text, &name, &rendered);
            if scenario == "blackout" {
                blackout_pair.push(m);
            }
        }
    }
    let (indep, coop) = (&blackout_pair[0], &blackout_pair[1]);
    text.push_str(&format!(
        "comparison (full blackout): SLO violations {} independent -> {} cooperative | \
         wasted uplink {} -> {} | preemptive opens {} | stress shed {}\n",
        indep.slo_violations,
        coop.slo_violations,
        wasted(indep),
        wasted(coop),
        coop.preemptive_opens,
        coop.stress_shed,
    ));
    if coop.slo_violations >= indep.slo_violations {
        violations.push(format!(
            "[cooperative blackout] SLO violations {} did not beat independent {}",
            coop.slo_violations, indep.slo_violations
        ));
    }
    if wasted(coop) >= wasted(indep) {
        violations.push(format!(
            "[cooperative blackout] wasted uplink {} did not beat independent {}",
            wasted(coop),
            wasted(indep)
        ));
    }
    if coop.gossip_sent == 0 || coop.gossip_applied == 0 {
        violations.push("[cooperative blackout] gossip never exchanged a digest".into());
    }
    // Mixed per-node links: half the fleet on wifi, half on lte, cooperative
    // policy on. Exercises link heterogeneity end to end; the ledger checks
    // in simulate() are the assertion.
    let mut mixed = cooperative_config(blackout_full());
    mixed.node_links = Some(
        (0..NODES)
            .map(|i| {
                if i % 2 == 0 {
                    StochasticLink::wifi()
                } else {
                    StochasticLink::lte()
                }
            })
            .collect(),
    );
    let (_, rendered) = simulate(
        "blackout mixed-links cooperative",
        &mixed,
        &trace(requests),
        &mut violations,
    );
    entry(&mut text, "blackout mixed-links cooperative", &rendered);
    text.push('\n');

    if violations.is_empty() {
        text.push_str("invariants: all accounting, determinism and recovery checks passed\n");
    } else {
        text.push_str("invariants: VIOLATED\n");
        for v in &violations {
            text.push_str(&format!("  {v}\n"));
        }
    }
    write_report("fault_sim", &text);
    if !violations.is_empty() {
        eprintln!("fault_sim detected {} violation(s)", violations.len());
        std::process::exit(1);
    }
}
