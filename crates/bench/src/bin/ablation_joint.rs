//! Ablation: jointly trained predictor head vs. a post-hoc predictor trained
//! on the frozen little network — the central architectural claim of the paper.

use appeal_bench::{harness_context, write_report};
use appeal_dataset::DatasetPreset;
use appeal_models::ModelFamily;
use appealnet_core::experiments::{ablations, PreparedExperiment};
use appealnet_core::loss::CloudMode;

fn main() {
    let ctx = harness_context();
    let preset = DatasetPreset::Cifar10Like;
    let pair = preset.spec(ctx.fidelity).generate();
    let mut prepared = PreparedExperiment::prepare_with_data(
        preset,
        &pair,
        ModelFamily::MobileNetLike,
        CloudMode::WhiteBox,
        &ctx,
    );
    let result = ablations::joint_vs_posthoc(&mut prepared, &pair, &ctx);
    let text = format!(
        "Joint training vs post-hoc predictor (CIFAR-10-like, MobileNet-like little network)\n\n{}",
        result.render_text()
    );
    write_report("ablation_joint", &text);
}
