//! Regenerates the headline energy-savings claim: translates the Table I
//! operating points into per-input energy under the `appeal-hw` system model
//! (mobile SoC edge device + cloud GPU + Wi-Fi link).

use appeal_bench::{harness_context, write_report};
use appeal_dataset::DatasetPreset;
use appeal_hw::SystemModel;
use appeal_models::ModelFamily;
use appealnet_core::experiments::{energy, PreparedExperiment};
use appealnet_core::loss::CloudMode;

fn main() {
    let ctx = harness_context();
    let hardware = SystemModel::typical();
    let mut text = String::from("Energy savings of AppealNet vs the score-margin baseline\n\n");
    let mut max_saving: f64 = 0.0;
    for preset in DatasetPreset::all() {
        let prepared = PreparedExperiment::prepare(
            preset,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        let report = energy::run(&prepared, &hardware);
        if let Some(s) = report.max_saving() {
            max_saving = max_saving.max(s);
        }
        text.push_str(&report.render_text());
        text.push('\n');
    }
    text.push_str(&format!(
        "Maximum relative energy saving observed: {:.1}%\n",
        max_saving * 100.0
    ));
    write_report("energy_savings", &text);
}
