//! Load generator for the serving front-end: replays bursty and diurnal
//! synthetic traces through [`appealnet_core::server::Server`] and reports
//! latency percentiles, throughput, skipping rate and shed rate.
//!
//! ```text
//! cargo run --release -p appeal-bench --bin loadgen
//! APPEALNET_FIDELITY=smoke cargo run --release -p appeal-bench --bin loadgen
//! ```
//!
//! The binary self-checks the server's accounting invariants (every offered
//! request is answered, shed or rejected; the engine hands back an empty
//! queue; throughput is non-zero) and exits non-zero on any violation, so it
//! doubles as a CI smoke test of the threaded serving path.

use appeal_bench::{fidelity_from_env, write_report};
use appeal_dataset::Fidelity;
use appeal_hw::CostBudget;
use appeal_models::{ModelFamily, ModelSpec};
use appeal_tensor::{SeededRng, Tensor};
use appealnet_core::server::trace::{TraceShape, TraceSpec};
use appealnet_core::server::{Server, ServerConfig, ServerStats, ShedConfig};
use appealnet_core::{CoreError, Engine, InferenceRequest, ThresholdPolicy, TwoHeadNet};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

const INPUT: [usize; 3] = [3, 12, 12];
const CLASSES: usize = 4;

/// A deterministic, untrained serving stack: loadgen measures the server's
/// coalescing/shedding behaviour, not model quality, so tiny random weights
/// keep the replay fast while exercising the full routed pipeline.
fn build_engine(max_batch: usize, delta: f64) -> Engine {
    let mut rng = SeededRng::new(2021);
    let little = ModelSpec::little(ModelFamily::MobileNetLike, INPUT, CLASSES).build(&mut rng);
    let big = ModelSpec::big(INPUT, CLASSES).build(&mut rng);
    Engine::builder()
        .appealnet(TwoHeadNet::from_parts(little, &mut rng))
        .big(big)
        .policy(ThresholdPolicy::new(delta).expect("valid threshold"))
        .max_batch(max_batch)
        .build()
        .expect("engine builds")
}

struct TraceOutcome {
    name: &'static str,
    offered: usize,
    rejected: usize,
    latencies_ms: Vec<f64>,
    shed_seen: usize,
    wall: Duration,
    stats: ServerStats,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Replays one trace against a fresh server, pacing submissions by the
/// trace's virtual arrival times and collecting end-to-end latencies on a
/// dedicated collector thread.
fn replay(name: &'static str, spec: &TraceSpec, delta: f64, config: ServerConfig) -> TraceOutcome {
    let server = Server::start(build_engine(8, delta), config).expect("server starts");
    let handle = server.handle();

    let (tx, rx) = mpsc::channel();
    let collector = thread::spawn(move || {
        let mut latencies_ms = Vec::new();
        let mut shed = 0usize;
        while let Ok((sent_at, ticket)) = rx.recv() {
            let (sent_at, ticket): (Instant, appealnet_core::server::Ticket) = (sent_at, ticket);
            match ticket.wait() {
                Ok(_served) => latencies_ms.push(sent_at.elapsed().as_secs_f64() * 1e3),
                Err(CoreError::Shed) => shed += 1,
                Err(err) => panic!("unexpected serving error: {err}"),
            }
        }
        (latencies_ms, shed)
    });

    let mut rng = SeededRng::new(spec.seed ^ 0x5eed);
    let events = spec.events();
    let offered = events.len();
    let mut rejected = 0usize;
    let start = Instant::now();
    for (i, event) in events.into_iter().enumerate() {
        let due = Duration::from_nanos(event.at_nanos);
        if let Some(gap) = due.checked_sub(start.elapsed()) {
            thread::sleep(gap);
        }
        let image = Tensor::randn(&INPUT, &mut rng);
        let request = InferenceRequest::new(i as u64, image);
        let sent_at = Instant::now();
        match handle.submit(event.client, request) {
            Ok(ticket) => tx.send((sent_at, ticket)).expect("collector alive"),
            Err(CoreError::Overloaded { .. }) => rejected += 1,
            Err(err) => panic!("unexpected submit error: {err}"),
        }
    }
    drop(tx);
    let (latencies_ms, shed_seen) = collector.join().expect("collector thread");
    let wall = start.elapsed();
    let (engine, stats) = server.shutdown().expect("batcher exits cleanly");
    assert_eq!(engine.pending(), 0, "engine must hand back an empty queue");

    let mut sorted = latencies_ms;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    TraceOutcome {
        name,
        offered,
        rejected,
        latencies_ms: sorted,
        shed_seen,
        wall,
        stats,
    }
}

/// Accounting invariants that must hold after any replay; violations are
/// serving bugs, not workload properties.
fn check_invariants(o: &TraceOutcome, violations: &mut Vec<String>) {
    let mut check = |ok: bool, what: String| {
        if !ok {
            violations.push(format!("[{}] {what}", o.name));
        }
    };
    let answered = o.latencies_ms.len() as u64;
    check(
        answered == o.stats.answered,
        format!(
            "client saw {answered} answers but server counted {}",
            o.stats.answered
        ),
    );
    check(
        o.shed_seen as u64 == o.stats.shed,
        format!(
            "client saw {} sheds but server counted {}",
            o.shed_seen, o.stats.shed
        ),
    );
    check(
        o.rejected as u64 == o.stats.rejected,
        format!(
            "client saw {} rejections but server counted {}",
            o.rejected, o.stats.rejected
        ),
    );
    check(
        o.offered as u64 == o.stats.answered + o.stats.shed + o.stats.rejected,
        format!(
            "{} offered != {} answered + {} shed + {} rejected",
            o.offered, o.stats.answered, o.stats.shed, o.stats.rejected
        ),
    );
    check(o.stats.answered > 0, "no request was answered".to_string());
    check(
        o.stats.engine.requests == o.stats.answered,
        format!(
            "engine served {} requests but ledger answered {}",
            o.stats.engine.requests, o.stats.answered
        ),
    );
    let ledger: u64 = o.stats.clients.iter().map(|c| c.answered).sum();
    check(
        ledger == o.stats.answered,
        format!(
            "per-client ledger sums to {ledger}, not {}",
            o.stats.answered
        ),
    );
    check(
        o.stats.answered as f64 / o.wall.as_secs_f64() > 0.0,
        "throughput must be non-zero".to_string(),
    );
}

fn render(o: &TraceOutcome) -> String {
    let answered = o.stats.answered;
    let throughput = answered as f64 / o.wall.as_secs_f64();
    let mut s = String::new();
    s.push_str(&format!("--- trace: {} ---\n", o.name));
    s.push_str(&format!(
        "offered {} | answered {} | shed {} | rejected {}\n",
        o.offered, answered, o.stats.shed, o.stats.rejected
    ));
    s.push_str(&format!(
        "latency p50 {:.3} ms | p99 {:.3} ms | max {:.3} ms\n",
        percentile(&o.latencies_ms, 0.50),
        percentile(&o.latencies_ms, 0.99),
        percentile(&o.latencies_ms, 1.0),
    ));
    s.push_str(&format!(
        "throughput {:.0} req/s over {:.3} s wall\n",
        throughput,
        o.wall.as_secs_f64()
    ));
    s.push_str(&format!(
        "skipping rate {:.1}% | shed rate {:.1}% | rejection rate {:.1}%\n",
        100.0 * o.stats.engine.skipping_rate(),
        100.0 * o.stats.shed_rate(),
        100.0 * o.stats.rejection_rate(),
    ));
    s.push_str(&format!(
        "flushes: {} size, {} deadline, {} drain | fairness index {:.3} over {} clients\n",
        o.stats.size_flushes,
        o.stats.deadline_flushes,
        o.stats.drain_flushes,
        o.stats.fairness_index(),
        o.stats.clients.len(),
    ));
    s
}

fn main() {
    let fidelity = fidelity_from_env();
    let requests = match fidelity {
        Fidelity::Smoke => 96,
        Fidelity::Paper => 512,
    };
    let mean_gap_nanos = 500_000; // 0.5 ms between arrivals on average

    let deadline = Duration::from_millis(1);
    let budget_engine = build_engine(8, 1.0);
    let offload = budget_engine.offload_cost();
    drop(budget_engine);

    // The bursty trace runs at δ = 1.0 (everything appeals to the cloud)
    // behind an energy budget of ~16 offloads per 32-request window, so
    // bursts overrun the budget and exercise the shedding path. The diurnal
    // trace runs at δ = 0.5 (edge-heavy) and exercises deadline coalescing.
    let traces = [
        (
            "bursty",
            1.0,
            TraceSpec {
                shape: TraceShape::Bursty { burst: 8 },
                requests,
                mean_gap_nanos,
                clients: 4,
                seed: 2021,
            },
            ServerConfig {
                queue_capacity: 256,
                deadline,
                shed: Some(ShedConfig {
                    budget: CostBudget::energy_mj(offload.energy_mj * 16.0),
                    window: 32,
                }),
                ..ServerConfig::default()
            },
        ),
        (
            "diurnal",
            0.5,
            TraceSpec {
                shape: TraceShape::Diurnal {
                    periods: 2.0,
                    amplitude: 0.9,
                },
                requests,
                mean_gap_nanos,
                clients: 4,
                seed: 2021,
            },
            ServerConfig {
                queue_capacity: 256,
                deadline,
                ..ServerConfig::default()
            },
        ),
    ];

    let mut text = format!(
        "Serving load generation: deadline micro-batching under synthetic traces\n\
         fidelity {fidelity:?} | {requests} requests/trace | deadline {deadline:?} | max_batch 8\n\n"
    );
    let mut violations = Vec::new();
    for (name, delta, spec, config) in traces {
        let outcome = replay(name, &spec, delta, config);
        check_invariants(&outcome, &mut violations);
        text.push_str(&render(&outcome));
        text.push('\n');
    }

    if violations.is_empty() {
        text.push_str("invariants: all accounting checks passed\n");
    } else {
        text.push_str("invariants: VIOLATED\n");
        for v in &violations {
            text.push_str(&format!("  {v}\n"));
        }
    }
    write_report("serving_loadgen", &text);
    if !violations.is_empty() {
        eprintln!(
            "loadgen detected {} invariant violation(s)",
            violations.len()
        );
        std::process::exit(1);
    }
}
