//! Regenerates Fig. 4: MSP vs. AppealNet `q(z|x)` score histograms for
//! correctly / incorrectly classified inputs (EfficientNet little network,
//! CIFAR-10-like dataset).

use appeal_bench::{harness_context, write_report};
use appeal_dataset::DatasetPreset;
use appeal_models::ModelFamily;
use appealnet_core::experiments::{fig4, PreparedExperiment};
use appealnet_core::loss::CloudMode;

fn main() {
    let ctx = harness_context();
    let prepared = PreparedExperiment::prepare(
        DatasetPreset::Cifar10Like,
        ModelFamily::EfficientNetLike,
        CloudMode::WhiteBox,
        &ctx,
    );
    let result = fig4::run(&prepared, 10);
    write_report("fig4_histogram", &result.render_text());
}
