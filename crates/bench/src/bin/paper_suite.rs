//! Regenerates every figure and table of the paper in one pass, sharing the
//! trained systems between Fig. 4, Fig. 5, Table I and the energy report so
//! each dataset's models are trained exactly once.
//!
//! ```text
//! cargo run --release -p appeal-bench --bin paper_suite
//! APPEALNET_FIDELITY=smoke cargo run --release -p appeal-bench --bin paper_suite
//! ```

use appeal_bench::{elapsed_secs, harness_context, write_report};
use appeal_dataset::DatasetPreset;
use appeal_hw::SystemModel;
use appeal_models::ModelFamily;
use appealnet_core::experiments::{energy, fig4, fig5, table1, table2, PreparedExperiment};
use appealnet_core::loss::CloudMode;
use std::time::Instant;

fn main() {
    let ctx = harness_context();
    let start = Instant::now();
    eprintln!("[paper_suite] fidelity = {}", ctx.fidelity);

    // ------------------------------------------------------------------
    // White-box systems: MobileNet little + ResNet-like big, four datasets
    // (Fig. 5, Table I, energy report).
    // ------------------------------------------------------------------
    let mut fig5_text = String::new();
    let mut table1_text =
        String::from("Table I — overall computational cost under accuracy-improvement targets\n\n");
    let mut energy_text = String::from("Energy report — derived from Table I operating points\n\n");
    let hardware = SystemModel::typical();

    for preset in DatasetPreset::all() {
        eprintln!(
            "[paper_suite] preparing white-box {} ({}) ...",
            preset.name(),
            elapsed_secs(start)
        );
        let prepared = PreparedExperiment::prepare(
            preset,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        eprintln!(
            "[paper_suite]   little={:.2}% appeal={:.2}% big={:.2}% ({})",
            prepared.little_accuracy * 100.0,
            prepared.appealnet_accuracy * 100.0,
            prepared.big_accuracy * 100.0,
            elapsed_secs(start)
        );
        fig5_text.push_str(&fig5::run(&prepared).render_text());
        fig5_text.push('\n');
        table1_text.push_str(&table1::run(&prepared).render_text());
        table1_text.push('\n');
        energy_text.push_str(&energy::run(&prepared, &hardware).render_text());
        energy_text.push('\n');

        // Fig. 4 uses CIFAR-10; the paper's figure uses an EfficientNet
        // little network, prepared separately below, but we also record the
        // MobileNet histogram for completeness.
        if preset == DatasetPreset::Cifar10Like {
            let result = fig4::run(&prepared, 10);
            write_report("fig4_cifar10_mobilenet", &result.render_text());
        }
    }
    write_report("fig5_accuracy_vs_sr", &fig5_text);
    write_report("table1_cost", &table1_text);
    write_report("energy_savings", &energy_text);

    // ------------------------------------------------------------------
    // Fig. 4: EfficientNet little network on CIFAR-10 (white-box), as in the paper.
    // ------------------------------------------------------------------
    eprintln!(
        "[paper_suite] preparing Fig. 4 (EfficientNet, CIFAR-10) ... ({})",
        elapsed_secs(start)
    );
    let prepared = PreparedExperiment::prepare(
        DatasetPreset::Cifar10Like,
        ModelFamily::EfficientNetLike,
        CloudMode::WhiteBox,
        &ctx,
    );
    write_report("fig4_histogram", &fig4::run(&prepared, 10).render_text());

    // ------------------------------------------------------------------
    // Table II: black-box (oracle cloud) on CIFAR-10 for all three families.
    // ------------------------------------------------------------------
    let mut table2_text =
        String::from("Table II — appealing rate of black-box AppealNet on CIFAR-10\n\n");
    for family in ModelFamily::little_families() {
        eprintln!(
            "[paper_suite] preparing black-box {} ({}) ...",
            family.name(),
            elapsed_secs(start)
        );
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            family,
            CloudMode::BlackBox,
            &ctx,
        );
        table2_text.push_str(&table2::run(&prepared).render_text());
        table2_text.push('\n');
    }
    write_report("table2_blackbox", &table2_text);

    eprintln!("[paper_suite] done in {}", elapsed_secs(start));
}
