//! Regenerates Fig. 5: overall accuracy vs. skipping rate for
//! MSP / SM / Entropy / AppealNet with a MobileNet-like little network on all
//! four dataset presets.

use appeal_bench::{harness_context, write_report};
use appeal_dataset::DatasetPreset;
use appeal_models::ModelFamily;
use appealnet_core::experiments::{fig5, PreparedExperiment};
use appealnet_core::loss::CloudMode;

fn main() {
    let ctx = harness_context();
    let mut text = String::new();
    for preset in DatasetPreset::all() {
        let prepared = PreparedExperiment::prepare(
            preset,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        text.push_str(&fig5::run(&prepared).render_text());
        text.push('\n');
    }
    write_report("fig5_accuracy_vs_sr", &text);
}
