//! Accuracy-vs-skipping-rate curves for the f32 and quantized (Q8_0) little
//! network at matched thresholds δ.
//!
//! Trains one AppealNet experiment, quantizes a clone of the two-head little
//! network (dynamic and calibrated activation scales), evaluates all three
//! variants on the same test split, and sweeps an SR grid with thresholds
//! derived from the *f32* artifacts — so every row compares the tiers at the
//! same δ. The report also charges the hardware model's quantized edge costs
//! (`SystemModel::expected_cost_quantized`).
//!
//! The binary is its own regression harness and exits non-zero when:
//!
//! * a layer's weight round-trip breaks its Q8_0 error bound;
//! * a routing flip at matched δ cannot be attributed to a score within the
//!   observed quantization tolerance of δ (`RoutingDivergence::unexplained`);
//! * the quantized system fails to recover accuracy through appeals (its
//!   full-offload row must match f32 exactly — same big network);
//! * the whole quantize → evaluate → render pipeline is not byte-identical
//!   across two independent runs.

use appeal_bench::{elapsed_secs, harness_context, write_report};
use appeal_dataset::DatasetPreset;
use appeal_hw::SystemModel;
use appeal_models::ModelFamily;
use appeal_tensor::quant::QuantReportSummary;
use appealnet_core::experiments::PreparedExperiment;
use appealnet_core::loss::CloudMode;
use appealnet_core::{EvaluationArtifacts, ScoreKind, TwoHeadNet};

/// SR grid of the sweep, matching the paper's Fig. 5 sampling.
const SR_GRID: [f64; 8] = [1.0, 0.95, 0.9, 0.8, 0.7, 0.5, 0.3, 0.0];

fn main() {
    let start = std::time::Instant::now();
    let ctx = harness_context();
    let preset = DatasetPreset::Cifar10Like;
    let pair = preset.spec(ctx.fidelity).generate();
    let prepared = PreparedExperiment::prepare_with_data(
        preset,
        &pair,
        ModelFamily::MobileNetLike,
        CloudMode::WhiteBox,
        &ctx,
    );
    eprintln!("[prepared {preset} in {}]", elapsed_secs(start));

    let first = run_once(&prepared, &pair, &ctx);
    let second = run_once(&prepared, &pair, &ctx);
    if first != second {
        eprintln!("quant_sweep: report is not byte-identical across two runs");
        std::process::exit(1);
    }
    write_report("quant_sweep", &first);
    eprintln!("[quant_sweep done in {}]", elapsed_secs(start));
}

/// Quantizes fresh clones of the trained two-head net, evaluates them and
/// renders the full report. Called twice; the outputs must be byte-identical.
fn run_once(
    prepared: &PreparedExperiment,
    pair: &appeal_dataset::DatasetPair,
    ctx: &appealnet_core::experiments::ExperimentContext,
) -> String {
    let f32_art = prepared.artifacts(ScoreKind::AppealNetQ);
    let eval_batch = 32;

    // Quantized tier with dynamic per-row activation scales.
    let mut qnet = prepared.models.appealnet.clone();
    let reports = qnet.quantize_weights();
    let summary = QuantReportSummary::from_reports(&reports);
    if !summary.within_bound() {
        eprintln!("quant_sweep: weight round-trip broke the Q8_0 error bound");
        std::process::exit(1);
    }
    let q_art = quantized_artifacts(&mut qnet, f32_art, pair, eval_batch);

    // Quantized tier with activation scales calibrated on the test inputs.
    let mut cal_net = qnet.clone();
    cal_net.calibrate_activation_scales(pair.test.images(), eval_batch);
    let cal_art = quantized_artifacts(&mut cal_net, f32_art, pair, eval_batch);

    let tol = f32_art
        .max_score_divergence(&q_art)
        .expect("artifact sets share the test split");
    let cal_tol = f32_art
        .max_score_divergence(&cal_art)
        .expect("artifact sets share the test split");

    let mut text = String::new();
    text.push_str(&format!(
        "Quantized little-net sweep — {} / {} ({} samples)\n",
        prepared.preset,
        ModelFamily::MobileNetLike,
        f32_art.len()
    ));
    text.push_str(&format!(
        "fidelity {:?} | seed {} | Q8_0 little net vs f32 at matched delta\n",
        ctx.fidelity, ctx.seed
    ));
    text.push_str(&format!(
        "weight tier: Q8_0, {} params, {:.2}x compression, max round-trip err {:.3e} (bound {:.3e})\n",
        summary.params, summary.compression(), summary.max_error, summary.error_bound
    ));
    text.push_str(&format!(
        "score divergence vs f32: dynamic {tol:.3e}, calibrated {cal_tol:.3e}\n\n"
    ));
    text.push_str(
        "target_sr  delta      f32_acc  q8_acc   q8cal_acc  flips  straddle  f32_mJ    q8_mJ\n",
    );

    let thresholds = f32_art
        .thresholds_for_skipping_rates(&SR_GRID)
        .expect("f32 artifacts validated");
    let hardware = SystemModel::typical();
    let mut violations = 0usize;
    for (&sr, &delta) in SR_GRID.iter().zip(&thresholds) {
        let f = f32_art.at_threshold(delta).expect("validated");
        let q = q_art.at_threshold(delta).expect("validated");
        let c = cal_art.at_threshold(delta).expect("validated");
        let div = f32_art
            .routing_divergence(&q_art, delta, tol)
            .expect("matched artifact sets");
        violations += div.unexplained;
        let f32_cost = hardware.expected_cost(
            f.skipping_rate,
            prepared.little_flops,
            prepared.big_flops,
            prepared.input_bytes,
        );
        let q_cost = hardware.expected_cost_quantized(
            q.skipping_rate,
            prepared.little_flops,
            prepared.big_flops,
            prepared.input_bytes,
        );
        text.push_str(&format!(
            "{sr:>9.2}  {delta:>9.4}  {:>7.4}  {:>7.4}  {:>9.4}  {:>5}  {:>8}  {:>8.3}  {:>7.3}\n",
            f.overall_accuracy,
            q.overall_accuracy,
            c.overall_accuracy,
            div.differing,
            div.straddling,
            f32_cost.energy_mj,
            q_cost.energy_mj,
        ));
    }

    if violations > 0 {
        eprintln!(
            "quant_sweep: {violations} routing flips not attributable to \
             quantization tolerance around delta"
        );
        std::process::exit(1);
    }

    // Appeal-based recovery: with everything offloaded the quantized system
    // must land exactly on the f32 system (same big network answers).
    let full_offload_delta = *thresholds.last().expect("non-empty grid");
    let f_rec = f32_art
        .at_threshold(full_offload_delta)
        .expect("validated")
        .overall_accuracy;
    let q_rec = q_art
        .at_threshold(full_offload_delta)
        .expect("validated")
        .overall_accuracy;
    if (f_rec - q_rec).abs() > f64::EPSILON {
        eprintln!(
            "quant_sweep: full-offload accuracy diverged (f32 {f_rec} vs q8 {q_rec}); \
             appeals failed to recover the quantized tier"
        );
        std::process::exit(1);
    }
    text.push_str(&format!(
        "\nfull-offload recovery: f32 {f_rec:.4} == q8 {q_rec:.4} (appeals absorb quantization)\n"
    ));
    text
}

/// Evaluates a (quantized) two-head net on the shared test split, reusing the
/// f32 artifacts' big-network correctness so only the edge tier differs.
fn quantized_artifacts(
    net: &mut TwoHeadNet,
    f32_art: &EvaluationArtifacts,
    pair: &appeal_dataset::DatasetPair,
    eval_batch: usize,
) -> EvaluationArtifacts {
    let test = &pair.test;
    let out = net.evaluate(test.images(), eval_batch);
    let little_correct: Vec<bool> = out
        .predictions()
        .iter()
        .zip(test.labels().iter())
        .map(|(p, y)| p == y)
        .collect();
    EvaluationArtifacts {
        scores: out.q,
        little_correct,
        big_correct: f32_art.big_correct.clone(),
        hard_flags: f32_art.hard_flags.clone(),
        little_flops: net.flops(),
        big_flops: f32_art.big_flops,
        score_kind: ScoreKind::AppealNetQ,
    }
}
