//! Regenerates Table I: overall computational cost (MFLOPs) of the
//! edge/cloud system at AccI targets {50, 75, 90, 95}%, score-margin baseline
//! vs. AppealNet, on all four dataset presets.

use appeal_bench::{harness_context, write_report};
use appeal_dataset::DatasetPreset;
use appeal_models::ModelFamily;
use appealnet_core::experiments::{table1, PreparedExperiment};
use appealnet_core::loss::CloudMode;

fn main() {
    let ctx = harness_context();
    let mut text =
        String::from("Table I — overall computational cost under accuracy-improvement targets\n\n");
    for preset in DatasetPreset::all() {
        let prepared = PreparedExperiment::prepare(
            preset,
            ModelFamily::MobileNetLike,
            CloudMode::WhiteBox,
            &ctx,
        );
        text.push_str(&table1::run(&prepared).render_text());
        text.push('\n');
    }
    write_report("table1_cost", &text);
}
