//! Regenerates Table II: appealing rate of the black-box (oracle cloud)
//! configuration at AccI targets on CIFAR-10, for the three efficient
//! little-network families.

use appeal_bench::{harness_context, write_report};
use appeal_dataset::DatasetPreset;
use appeal_models::ModelFamily;
use appealnet_core::experiments::{table2, PreparedExperiment};
use appealnet_core::loss::CloudMode;

fn main() {
    let ctx = harness_context();
    let mut text = String::from("Table II — appealing rate of black-box AppealNet on CIFAR-10\n\n");
    for family in ModelFamily::little_families() {
        let prepared = PreparedExperiment::prepare(
            DatasetPreset::Cifar10Like,
            family,
            CloudMode::BlackBox,
            &ctx,
        );
        text.push_str(&table2::run(&prepared).render_text());
        text.push('\n');
    }
    write_report("table2_blackbox", &text);
}
