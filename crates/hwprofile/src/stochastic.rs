//! A seeded stochastic link model plus a bounded virtual-time link queue.
//!
//! [`LinkSpec`] is a *deterministic* cost model: every transfer of the same
//! size costs the same milliseconds. Real uplinks do not behave that way —
//! throughput jitters, packets drop and are retransmitted, and a saturated
//! radio queues (or sheds) frames. [`StochasticLink`] layers those effects on
//! top of a `LinkSpec` using a caller-supplied [`SeededRng`], so a fleet
//! simulation samples realistic per-transfer latencies while remaining
//! byte-reproducible: no wall clock, no global RNG, just virtual time and a
//! seed.
//!
//! [`LinkQueue`] models the congestion half: a bounded FIFO in front of a
//! single serial transmitter. Offers beyond capacity are rejected, which the
//! fleet simulator turns into edge-side fallbacks (the node answers locally
//! rather than waiting on a saturated uplink).

use crate::error::{
    require_non_negative, require_probability, require_probability_inclusive, HwError, HwResult,
};
use crate::link::LinkSpec;
use appeal_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Maximum retransmissions charged to a single transfer — the per-transfer
/// retransmit budget. [`StochasticLink::try_transmit_ms`] gives up with
/// [`HwError::LinkDown`] once the budget is spent; the legacy
/// [`StochasticLink::sample_transmit_ms`] instead treats the capped sample as
/// delivered. Either way an unbounded geometric tail can never stall a
/// simulation.
pub const MAX_RETRANSMITS: u32 = 8;

/// One sampled transfer over a [`StochasticLink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferSample {
    /// Serialization time the transmitter is busy for, in milliseconds
    /// (jittered base transmit plus retransmission penalties).
    pub service_ms: f64,
    /// How many retransmissions the loss process charged.
    pub retransmits: u32,
}

/// A [`LinkSpec`] extended with seeded jitter, loss and retransmission
/// behaviour.
///
/// All sampling draws from a caller-supplied [`SeededRng`] so the model has
/// no hidden state: a fixed seed plus a fixed sequence of calls reproduces
/// the same link weather bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StochasticLink {
    /// The nominal link this model perturbs.
    pub spec: LinkSpec,
    /// Relative jitter amplitude in `[0, 1)`: each transfer's serialization
    /// and propagation times are scaled by `1 + jitter * U(-1, 1)`.
    pub jitter: f64,
    /// Per-transfer loss probability in `[0, 1)`; each loss costs one
    /// retransmission timeout.
    pub loss: f64,
    /// Retransmission timeout charged per lost transfer, in milliseconds.
    pub rto_ms: f64,
    /// Depth of the bounded uplink queue (see [`LinkQueue`]).
    pub queue_capacity: usize,
}

impl StochasticLink {
    /// Creates a stochastic link model over `spec`.
    ///
    /// Returns [`HwError`] if `jitter` is outside `[0, 1)`, `loss` is outside
    /// `[0, 1]` (`loss = 1.0` is a well-defined total blackout — every
    /// [`try_transmit_ms`](Self::try_transmit_ms) fails with
    /// [`HwError::LinkDown`]), `rto_ms` is negative, or `queue_capacity` is
    /// zero.
    pub fn new(
        spec: LinkSpec,
        jitter: f64,
        loss: f64,
        rto_ms: f64,
        queue_capacity: usize,
    ) -> HwResult<Self> {
        require_probability("jitter", jitter)?;
        require_probability_inclusive("loss", loss)?;
        require_non_negative("rto_ms", rto_ms)?;
        if queue_capacity == 0 {
            return Err(HwError::ZeroCapacity {
                field: "queue_capacity",
            });
        }
        Ok(Self {
            spec,
            jitter,
            loss,
            rto_ms,
            queue_capacity,
        })
    }

    /// A degenerate stochastic link with no jitter, no loss and a deep
    /// queue: samples reproduce the deterministic [`LinkSpec`] numbers.
    pub fn ideal(spec: LinkSpec) -> Self {
        Self {
            spec,
            jitter: 0.0,
            loss: 0.0,
            rto_ms: 0.0,
            queue_capacity: usize::MAX,
        }
    }

    /// A jittery but mostly reliable Wi-Fi uplink.
    pub fn wifi() -> Self {
        Self {
            spec: LinkSpec::wifi(),
            jitter: 0.3,
            loss: 0.01,
            rto_ms: 20.0,
            queue_capacity: 32,
        }
    }

    /// A lossier cellular LTE uplink with a shallower radio queue.
    pub fn lte() -> Self {
        Self {
            spec: LinkSpec::lte(),
            jitter: 0.5,
            loss: 0.03,
            rto_ms: 100.0,
            queue_capacity: 16,
        }
    }

    /// Samples the serialization (transmitter-busy) time for `bytes`.
    ///
    /// `severity >= 1.0` models link degradation: it stretches the base
    /// transmit time and multiplies the loss probability, which is how the
    /// fleet simulator's degraded-link phase is expressed. `severity = 1.0`
    /// is the nominal link.
    pub fn sample_transmit_ms(
        &self,
        bytes: u64,
        severity: f64,
        rng: &mut SeededRng,
    ) -> TransferSample {
        let base = self.spec.transmit_ms(bytes) * severity;
        let factor = 1.0 + self.jitter * f64::from(rng.uniform(-1.0, 1.0));
        let loss = (self.loss * severity).min(0.95);
        let mut retransmits = 0u32;
        while retransmits < MAX_RETRANSMITS && rng.bernoulli(loss as f32) {
            retransmits += 1;
        }
        TransferSample {
            service_ms: base * factor + f64::from(retransmits) * self.rto_ms,
            retransmits,
        }
    }

    /// Fallible variant of [`sample_transmit_ms`](Self::sample_transmit_ms)
    /// with a hard per-transfer retransmit budget: the transfer either
    /// delivers within [`MAX_RETRANSMITS`] retransmissions or fails with
    /// [`HwError::LinkDown`] so the caller can run a typed recovery path.
    ///
    /// Two differences from the legacy sampler, both deliberate:
    ///
    /// * the effective loss probability saturates at **1.0** (not 0.95), so
    ///   `loss × severity ≥ 1` is a well-defined total blackout that fails
    ///   deterministically without consuming loss draws;
    /// * exhausting the retransmit budget is an *error*, not a delivery —
    ///   under a near-blackout the old sampler silently pretended the bytes
    ///   arrived, which is exactly the hazard a recovery layer must see.
    pub fn try_transmit_ms(
        &self,
        bytes: u64,
        severity: f64,
        rng: &mut SeededRng,
    ) -> HwResult<TransferSample> {
        let base = self.spec.transmit_ms(bytes) * severity;
        let factor = 1.0 + self.jitter * f64::from(rng.uniform(-1.0, 1.0));
        let loss = (self.loss * severity).min(1.0);
        if loss >= 1.0 {
            return Err(HwError::LinkDown { retransmits: 0 });
        }
        let mut retransmits = 0u32;
        while rng.bernoulli(loss as f32) {
            retransmits += 1;
            if retransmits > MAX_RETRANSMITS {
                return Err(HwError::LinkDown { retransmits });
            }
        }
        Ok(TransferSample {
            service_ms: base * factor + f64::from(retransmits) * self.rto_ms,
            retransmits,
        })
    }

    /// Samples the one-way propagation delay (half the RTT, jittered and
    /// stretched by `severity`), in milliseconds.
    pub fn sample_propagation_ms(&self, severity: f64, rng: &mut SeededRng) -> f64 {
        let factor = 1.0 + self.jitter * f64::from(rng.uniform(-1.0, 1.0));
        (self.spec.rtt_ms / 2.0) * severity * factor
    }
}

/// A bounded FIFO queue in front of a single serial transmitter, in virtual
/// time.
///
/// The queue tracks the departure time of every transfer still in flight.
/// [`LinkQueue::offer`] first expires departures at or before `now`, then
/// either rejects the transfer (queue full — congestion) or schedules it
/// behind the current backlog and returns its departure time.
#[derive(Debug, Clone)]
pub struct LinkQueue {
    capacity: usize,
    /// Departure nanoseconds of in-flight transfers, oldest first.
    departures: std::collections::VecDeque<u64>,
    accepted: u64,
    rejected: u64,
}

impl LinkQueue {
    /// Creates a queue with the given depth.
    ///
    /// Returns [`HwError::ZeroCapacity`] if `capacity` is zero.
    pub fn new(capacity: usize) -> HwResult<Self> {
        if capacity == 0 {
            return Err(HwError::ZeroCapacity { field: "capacity" });
        }
        Ok(Self {
            capacity,
            departures: std::collections::VecDeque::new(),
            accepted: 0,
            rejected: 0,
        })
    }

    /// Offers a transfer needing `service_nanos` of transmitter time at
    /// virtual time `now_nanos`.
    ///
    /// Returns the transfer's departure time, or `None` if the queue is at
    /// capacity (the transfer is shed).
    pub fn offer(&mut self, now_nanos: u64, service_nanos: u64) -> Option<u64> {
        self.expire(now_nanos);
        if self.departures.len() >= self.capacity {
            self.rejected += 1;
            return None;
        }
        let start = self.departures.back().copied().unwrap_or(0).max(now_nanos);
        let departure = start.saturating_add(service_nanos);
        self.departures.push_back(departure);
        self.accepted += 1;
        Some(departure)
    }

    /// Transfers still queued or transmitting at `now_nanos`.
    pub fn in_flight(&mut self, now_nanos: u64) -> usize {
        self.expire(now_nanos);
        self.departures.len()
    }

    /// Total transfers accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Total transfers rejected (queue full) so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    fn expire(&mut self, now_nanos: u64) {
        while self.departures.front().is_some_and(|&dep| dep <= now_nanos) {
            self.departures.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_reproduces_the_deterministic_spec() {
        let link = StochasticLink::ideal(LinkSpec::wifi());
        let mut rng = SeededRng::new(7);
        let sample = link.sample_transmit_ms(4096, 1.0, &mut rng);
        assert!((sample.service_ms - link.spec.transmit_ms(4096)).abs() < 1e-12);
        assert_eq!(sample.retransmits, 0);
        let prop = link.sample_propagation_ms(1.0, &mut rng);
        assert!((prop - link.spec.rtt_ms / 2.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let link = StochasticLink::lte();
        let run = |seed: u64| {
            let mut rng = SeededRng::new(seed);
            (0..64)
                .map(|i| link.sample_transmit_ms(1024 * (i + 1), 1.0, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn jitter_stays_within_the_configured_band() {
        let link = StochasticLink::wifi();
        let base = link.spec.transmit_ms(1 << 20);
        let mut rng = SeededRng::new(3);
        for _ in 0..256 {
            let s = link.sample_transmit_ms(1 << 20, 1.0, &mut rng);
            let jitter_only = s.service_ms - f64::from(s.retransmits) * link.rto_ms;
            assert!(jitter_only >= base * (1.0 - link.jitter) - 1e-9);
            assert!(jitter_only <= base * (1.0 + link.jitter) + 1e-9);
        }
    }

    #[test]
    fn severity_stretches_transfers_and_raises_loss() {
        let link = StochasticLink::lte();
        let trials = 512;
        let totals = |severity: f64| {
            let mut rng = SeededRng::new(5);
            let mut ms = 0.0;
            let mut retx = 0u64;
            for _ in 0..trials {
                let s = link.sample_transmit_ms(1 << 16, severity, &mut rng);
                ms += s.service_ms;
                retx += u64::from(s.retransmits);
            }
            (ms, retx)
        };
        let (nominal_ms, nominal_retx) = totals(1.0);
        let (degraded_ms, degraded_retx) = totals(4.0);
        assert!(degraded_ms > nominal_ms * 2.0);
        assert!(degraded_retx > nominal_retx);
    }

    #[test]
    fn retransmissions_are_capped() {
        // loss close to 1 (via severity) still terminates.
        let link = StochasticLink::new(LinkSpec::lte(), 0.0, 0.5, 10.0, 4).unwrap();
        let mut rng = SeededRng::new(1);
        for _ in 0..128 {
            let s = link.sample_transmit_ms(1024, 1.9, &mut rng);
            assert!(s.retransmits <= MAX_RETRANSMITS);
        }
    }

    #[test]
    fn try_transmit_total_blackout_is_typed_and_deterministic() {
        // loss = 1.0 is constructible and always LinkDown, never a loop.
        let link = StochasticLink::new(LinkSpec::wifi(), 0.0, 1.0, 10.0, 4).unwrap();
        let mut rng = SeededRng::new(2);
        for _ in 0..32 {
            assert!(matches!(
                link.try_transmit_ms(1024, 1.0, &mut rng),
                Err(HwError::LinkDown { retransmits: 0 })
            ));
        }
        // Severity can also push a lossy link into blackout.
        let lossy = StochasticLink::new(LinkSpec::lte(), 0.0, 0.5, 10.0, 4).unwrap();
        assert!(matches!(
            lossy.try_transmit_ms(1024, 2.0, &mut rng),
            Err(HwError::LinkDown { .. })
        ));
    }

    #[test]
    fn try_transmit_exhausted_retransmit_budget_is_link_down() {
        // At 90% loss, runs of MAX_RETRANSMITS + 1 losses are common; the
        // budget must convert them into typed failures, and delivered
        // samples must respect the cap.
        let link = StochasticLink::new(LinkSpec::lte(), 0.0, 0.9, 10.0, 4).unwrap();
        let mut rng = SeededRng::new(3);
        let mut failures = 0;
        for _ in 0..256 {
            match link.try_transmit_ms(1024, 1.0, &mut rng) {
                Ok(sample) => assert!(sample.retransmits <= MAX_RETRANSMITS),
                Err(HwError::LinkDown { retransmits }) => {
                    assert_eq!(retransmits, MAX_RETRANSMITS + 1);
                    failures += 1;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(failures > 0, "0.9^9 runs must occur in 256 trials");
    }

    #[test]
    fn try_transmit_matches_legacy_sampler_when_reliable() {
        // Below the cap the two samplers consume the same draws and agree.
        let link = StochasticLink::wifi();
        let mut a = SeededRng::new(17);
        let mut b = SeededRng::new(17);
        for i in 0..128u64 {
            let legacy = link.sample_transmit_ms(1024 * (i + 1), 1.0, &mut a);
            let tried = link.try_transmit_ms(1024 * (i + 1), 1.0, &mut b).unwrap();
            assert_eq!(legacy, tried);
        }
    }

    #[test]
    fn constructor_validates_fields() {
        let spec = LinkSpec::wifi;
        assert!(matches!(
            StochasticLink::new(spec(), 1.0, 0.0, 0.0, 4),
            Err(HwError::InvalidProbability {
                field: "jitter",
                ..
            })
        ));
        assert!(matches!(
            StochasticLink::new(spec(), 0.0, -0.1, 0.0, 4),
            Err(HwError::InvalidProbability { field: "loss", .. })
        ));
        assert!(matches!(
            StochasticLink::new(spec(), 0.0, 0.0, -1.0, 4),
            Err(HwError::Negative {
                field: "rto_ms",
                ..
            })
        ));
        assert!(matches!(
            StochasticLink::new(spec(), 0.0, 0.0, 0.0, 0),
            Err(HwError::ZeroCapacity { .. })
        ));
        assert!(StochasticLink::new(spec(), 0.0, 0.0, 0.0, 1).is_ok());
    }

    #[test]
    fn queue_schedules_fifo_behind_backlog() {
        let mut q = LinkQueue::new(8).unwrap();
        let a = q.offer(100, 50).unwrap();
        assert_eq!(a, 150);
        // Second transfer queues behind the first even though it arrives
        // before the first departs.
        let b = q.offer(120, 50).unwrap();
        assert_eq!(b, 200);
        // After both depart, service starts at the arrival time again.
        let c = q.offer(1_000, 50).unwrap();
        assert_eq!(c, 1_050);
        assert_eq!(q.accepted(), 3);
        assert_eq!(q.rejected(), 0);
    }

    #[test]
    fn queue_rejects_beyond_capacity_and_drains() {
        let mut q = LinkQueue::new(2).unwrap();
        assert!(q.offer(0, 100).is_some());
        assert!(q.offer(0, 100).is_some());
        assert!(q.offer(0, 100).is_none());
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.in_flight(0), 2);
        // First departs at 100, second at 200; at t=150 one slot is free.
        assert_eq!(q.in_flight(150), 1);
        assert!(q.offer(150, 100).is_some());
        assert_eq!(q.accepted(), 3);
    }

    #[test]
    fn zero_capacity_queue_is_rejected() {
        assert!(matches!(
            LinkQueue::new(0),
            Err(HwError::ZeroCapacity { field: "capacity" })
        ));
    }
}
