//! Compute device specifications.

use crate::error::{require_positive, HwError, HwResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A compute device (edge or cloud) described by throughput, energy
/// efficiency and memory capacity.
///
/// The numbers in the presets are order-of-magnitude figures for the three
/// device classes the paper targets (IoT microcontroller, mobile SoC, cloud
/// GPU); they drive the *relative* cost comparisons, which is what the
/// paper's evaluation reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Sustained throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Energy per floating-point operation, in picojoules.
    pub energy_per_flop_pj: f64,
    /// Memory available for model parameters, in kilobytes.
    pub memory_kb: u64,
}

impl DeviceSpec {
    /// Creates a custom device specification.
    ///
    /// Returns [`HwError`] if any numeric field is not positive (NaN is
    /// rejected too).
    pub fn new(
        name: impl Into<String>,
        peak_gflops: f64,
        energy_per_flop_pj: f64,
        memory_kb: u64,
    ) -> HwResult<Self> {
        require_positive("peak_gflops", peak_gflops)?;
        require_positive("energy_per_flop_pj", energy_per_flop_pj)?;
        if memory_kb == 0 {
            return Err(HwError::ZeroCapacity { field: "memory_kb" });
        }
        Ok(Self {
            name: name.into(),
            peak_gflops,
            energy_per_flop_pj,
            memory_kb,
        })
    }

    /// A resource-starved IoT microcontroller (Cortex-M class).
    pub fn edge_mcu() -> Self {
        Self {
            name: "edge-mcu".into(),
            peak_gflops: 0.5,
            energy_per_flop_pj: 120.0,
            memory_kb: 512,
        }
    }

    /// A mobile system-on-chip (smartphone / robot vacuum class).
    pub fn mobile_soc() -> Self {
        Self {
            name: "mobile-soc".into(),
            peak_gflops: 20.0,
            energy_per_flop_pj: 30.0,
            memory_kb: 64 * 1024,
        }
    }

    /// A cloud GPU accelerator.
    pub fn cloud_gpu() -> Self {
        Self {
            name: "cloud-gpu".into(),
            peak_gflops: 10_000.0,
            energy_per_flop_pj: 8.0,
            memory_kb: 16 * 1024 * 1024,
        }
    }

    /// Time to execute `flops` floating-point operations, in milliseconds.
    pub fn latency_ms(&self, flops: u64) -> f64 {
        flops as f64 / (self.peak_gflops * 1e9) * 1e3
    }

    /// Energy to execute `flops` floating-point operations, in millijoules.
    pub fn energy_mj(&self, flops: u64) -> f64 {
        flops as f64 * self.energy_per_flop_pj * 1e-12 * 1e3
    }

    /// Whether a model with `params` f32 parameters fits in device memory.
    pub fn fits(&self, params: u64) -> bool {
        params * 4 <= self.memory_kb * 1024
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} GFLOP/s, {} pJ/FLOP, {} kB)",
            self.name, self.peak_gflops, self.energy_per_flop_pj, self.memory_kb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_capability() {
        let mcu = DeviceSpec::edge_mcu();
        let soc = DeviceSpec::mobile_soc();
        let gpu = DeviceSpec::cloud_gpu();
        assert!(mcu.peak_gflops < soc.peak_gflops);
        assert!(soc.peak_gflops < gpu.peak_gflops);
        assert!(mcu.energy_per_flop_pj > gpu.energy_per_flop_pj);
        assert!(mcu.memory_kb < gpu.memory_kb);
    }

    #[test]
    fn latency_and_energy_scale_linearly_with_flops() {
        let dev = DeviceSpec::mobile_soc();
        assert!((dev.latency_ms(2_000_000) - 2.0 * dev.latency_ms(1_000_000)).abs() < 1e-9);
        assert!((dev.energy_mj(2_000_000) - 2.0 * dev.energy_mj(1_000_000)).abs() < 1e-9);
    }

    #[test]
    fn known_latency_value() {
        // 20 GFLOP/s device, 20 MFLOPs of work -> 1 ms.
        let dev = DeviceSpec::mobile_soc();
        assert!((dev.latency_ms(20_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_fit_check() {
        let mcu = DeviceSpec::edge_mcu();
        assert!(mcu.fits(100_000)); // 400 kB
        assert!(!mcu.fits(1_000_000)); // 4 MB
    }

    #[test]
    fn rejects_invalid_fields() {
        assert_eq!(
            DeviceSpec::new("bad", 0.0, 1.0, 1),
            Err(HwError::NonPositive {
                field: "peak_gflops",
                value: 0.0,
            })
        );
        assert_eq!(
            DeviceSpec::new("bad", 1.0, -1.0, 1),
            Err(HwError::NonPositive {
                field: "energy_per_flop_pj",
                value: -1.0,
            })
        );
        assert_eq!(
            DeviceSpec::new("bad", 1.0, 1.0, 0),
            Err(HwError::ZeroCapacity { field: "memory_kb" })
        );
    }

    #[test]
    fn presets_pass_their_own_validation() {
        for preset in [
            DeviceSpec::edge_mcu(),
            DeviceSpec::mobile_soc(),
            DeviceSpec::cloud_gpu(),
        ] {
            let rebuilt = DeviceSpec::new(
                preset.name.clone(),
                preset.peak_gflops,
                preset.energy_per_flop_pj,
                preset.memory_kb,
            )
            .expect("preset fields must validate");
            assert_eq!(rebuilt, preset);
        }
    }

    #[test]
    fn display_mentions_name() {
        assert!(DeviceSpec::cloud_gpu().to_string().contains("cloud-gpu"));
    }
}
