//! The typed error surface of the hardware-model constructors.
//!
//! Mirrors the `appealnet_core::CoreError` policy: invalid *user* inputs —
//! a non-positive bandwidth, a loss probability outside `[0, 1)`, a
//! zero-depth link queue — are reported as [`HwError`] values instead of
//! panics, so a serving system assembling device/link specs from
//! configuration can surface a typed diagnostic rather than aborting.
//! Internal invariants remain `assert!`s: violating them is a bug in this
//! crate, not a caller mistake.

use std::fmt;

/// Errors returned by the public device/link/profiler constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum HwError {
    /// A spec field that must be strictly positive was zero, negative or NaN.
    NonPositive {
        /// The offending field, e.g. `"bandwidth_mbps"`.
        field: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// A spec field that must be non-negative was negative or NaN.
    Negative {
        /// The offending field, e.g. `"rtt_ms"`.
        field: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// A probability field outside `[0, 1)` (or NaN).
    InvalidProbability {
        /// The offending field, e.g. `"loss"`.
        field: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// A queue or memory capacity that must be positive was zero.
    ZeroCapacity {
        /// The offending field, e.g. `"queue_capacity"`.
        field: &'static str,
    },
    /// A transfer could not be delivered: the effective loss probability is
    /// 1.0 (total blackout) or the per-transfer retransmit budget ran out.
    /// Surfaced by [`crate::StochasticLink::try_transmit_ms`] so callers can
    /// run a typed recovery path (retry with backoff, or answer locally)
    /// instead of pretending an undeliverable transfer arrived.
    LinkDown {
        /// Retransmissions charged before the transfer was given up on.
        retransmits: u32,
    },
    /// A fault-plan window is inverted (`until_nanos < from_nanos`).
    InvalidWindow {
        /// Window start, in virtual nanoseconds.
        from_nanos: u64,
        /// Window end, in virtual nanoseconds.
        until_nanos: u64,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::NonPositive { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
            HwError::Negative { field, value } => {
                write!(f, "{field} must be non-negative, got {value}")
            }
            HwError::InvalidProbability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1), got {value}")
            }
            HwError::ZeroCapacity { field } => {
                write!(f, "{field} must be positive")
            }
            HwError::LinkDown { retransmits } => {
                write!(
                    f,
                    "link down: transfer undeliverable after {retransmits} retransmission(s)"
                )
            }
            HwError::InvalidWindow {
                from_nanos,
                until_nanos,
            } => {
                write!(
                    f,
                    "fault window is inverted: until {until_nanos} ns precedes from {from_nanos} ns"
                )
            }
        }
    }
}

impl std::error::Error for HwError {}

/// Convenience alias for results of the hardware-model constructors.
pub type HwResult<T> = Result<T, HwError>;

/// Checks that `value` is strictly positive (rejecting NaN).
pub(crate) fn require_positive(field: &'static str, value: f64) -> HwResult<()> {
    if value > 0.0 {
        Ok(())
    } else {
        Err(HwError::NonPositive { field, value })
    }
}

/// Checks that `value` is non-negative (rejecting NaN).
pub(crate) fn require_non_negative(field: &'static str, value: f64) -> HwResult<()> {
    if value >= 0.0 {
        Ok(())
    } else {
        Err(HwError::Negative { field, value })
    }
}

/// Checks that `value` is a probability in `[0, 1)` (rejecting NaN).
pub(crate) fn require_probability(field: &'static str, value: f64) -> HwResult<()> {
    if (0.0..1.0).contains(&value) {
        Ok(())
    } else {
        Err(HwError::InvalidProbability { field, value })
    }
}

/// Checks that `value` is a probability in `[0, 1]` — the closed interval:
/// loss and drop models where exactly 1.0 means a total blackout.
pub(crate) fn require_probability_inclusive(field: &'static str, value: f64) -> HwResult<()> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(HwError::InvalidProbability { field, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        assert!(HwError::NonPositive {
            field: "bandwidth_mbps",
            value: -1.0,
        }
        .to_string()
        .contains("bandwidth_mbps"));
        assert!(HwError::Negative {
            field: "rtt_ms",
            value: -2.0,
        }
        .to_string()
        .contains("-2"));
        assert!(HwError::InvalidProbability {
            field: "loss",
            value: 1.5,
        }
        .to_string()
        .contains("[0, 1)"));
        assert!(HwError::ZeroCapacity {
            field: "queue_capacity",
        }
        .to_string()
        .contains("queue_capacity"));
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(HwError::ZeroCapacity { field: "x" });
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn validators_reject_nan() {
        assert!(require_positive("f", f64::NAN).is_err());
        assert!(require_non_negative("f", f64::NAN).is_err());
        assert!(require_probability("f", f64::NAN).is_err());
        assert!(require_positive("f", 0.1).is_ok());
        assert!(require_non_negative("f", 0.0).is_ok());
        assert!(require_probability("f", 0.0).is_ok());
        assert!(require_probability("f", 1.0).is_err());
        assert!(require_probability_inclusive("f", 1.0).is_ok());
        assert!(require_probability_inclusive("f", 1.0001).is_err());
        assert!(require_probability_inclusive("f", f64::NAN).is_err());
    }

    #[test]
    fn link_down_and_window_display() {
        assert!(HwError::LinkDown { retransmits: 8 }
            .to_string()
            .contains('8'));
        let w = HwError::InvalidWindow {
            from_nanos: 10,
            until_nanos: 5,
        };
        assert!(w.to_string().contains("inverted"));
    }
}
