//! The edge/cloud system cost model (the paper's Eq. 5 constants, plus
//! energy and latency).

use crate::device::DeviceSpec;
use crate::link::LinkSpec;
use serde::{Deserialize, Serialize};

/// Cost of processing one input, in three units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceCost {
    /// FLOPs-equivalent cost (the unit used by the paper's Table I).
    ///
    /// For offloaded inputs this counts the edge FLOPs plus the cloud FLOPs;
    /// communication shows up in the energy/latency fields.
    pub flops: u64,
    /// Energy drawn from the edge device's battery plus the cloud energy, in millijoules.
    pub energy_mj: f64,
    /// End-to-end latency, in milliseconds.
    pub latency_ms: f64,
}

impl InferenceCost {
    /// The zero cost.
    pub fn zero() -> Self {
        Self {
            flops: 0,
            energy_mj: 0.0,
            latency_ms: 0.0,
        }
    }

    /// Adds another cost to this one. The FLOPs component saturates at
    /// `u64::MAX` instead of overflowing: long-lived meters (a server's
    /// [`crate::CostMeter`], cumulative engine stats) accumulate costs for
    /// the lifetime of a deployment, and a counter that wraps would silently
    /// re-admit work a budget should reject.
    pub fn add(&self, other: &InferenceCost) -> Self {
        Self {
            flops: self.flops.saturating_add(other.flops),
            energy_mj: self.energy_mj + other.energy_mj,
            latency_ms: self.latency_ms + other.latency_ms,
        }
    }

    /// Scales the cost by a factor (e.g. a routing probability).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn scale(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        Self {
            flops: (self.flops as f64 * factor).round() as u64,
            energy_mj: self.energy_mj * factor,
            latency_ms: self.latency_ms * factor,
        }
    }
}

/// The full edge + link + cloud system used to derive per-input costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    /// Edge device running the little network and the predictor.
    pub edge: DeviceSpec,
    /// Cloud device running the big network.
    pub cloud: DeviceSpec,
    /// Uplink between them.
    pub link: LinkSpec,
}

/// Edge energy/latency advantage of the quantized (Q8_0) little-network
/// tier over f32, as a speedup factor.
///
/// Int8 weights quarter the bytes moved per MAC and widen SIMD lanes 4×;
/// measured end-to-end gains on mobile-class CPUs land well below the 4×
/// ceiling once the f32 accumulate, scale bookkeeping and the untouched
/// non-GEMM layers are included, so the model charges a conservative 3.2×.
/// FLOP counts are *unchanged*: the quantized tier performs the same MACs,
/// only cheaper, and Eq. 5/15 comparisons stay in the paper's FLOPs unit.
pub const QUANT_EDGE_SPEEDUP: f64 = 3.2;

impl SystemModel {
    /// Creates a system model.
    pub fn new(edge: DeviceSpec, cloud: DeviceSpec, link: LinkSpec) -> Self {
        Self { edge, cloud, link }
    }

    /// A typical deployment: mobile-class edge device, cloud GPU, Wi-Fi link.
    pub fn typical() -> Self {
        Self::new(
            DeviceSpec::mobile_soc(),
            DeviceSpec::cloud_gpu(),
            LinkSpec::wifi(),
        )
    }

    /// Cost `c1` of Eq. 5: the input is handled entirely on the edge by the
    /// little network (which includes the predictor head).
    pub fn edge_only_cost(&self, little_flops: u64) -> InferenceCost {
        InferenceCost {
            flops: little_flops,
            energy_mj: self.edge.energy_mj(little_flops),
            latency_ms: self.edge.latency_ms(little_flops),
        }
    }

    /// Cost `c0` of Eq. 5: the edge runs the little network (to produce the
    /// predictor decision), uploads `input_bytes` to the cloud, the cloud runs
    /// the big network and returns the label.
    pub fn offload_cost(
        &self,
        little_flops: u64,
        big_flops: u64,
        input_bytes: u64,
    ) -> InferenceCost {
        let result_bytes = 16; // a class id + confidence comfortably fits
        let edge = self.edge_only_cost(little_flops);
        let uplink_energy = self.link.energy_mj(input_bytes + result_bytes);
        // Full appeal round trip: features up, logits back — one full RTT.
        let uplink_latency = self.link.round_trip_ms(input_bytes, result_bytes);
        InferenceCost {
            flops: little_flops + big_flops,
            energy_mj: edge.energy_mj + uplink_energy + self.cloud.energy_mj(big_flops),
            latency_ms: edge.latency_ms + uplink_latency + self.cloud.latency_ms(big_flops),
        }
    }

    /// Cost `c1` when the little network runs on the quantized (Q8_0) tier:
    /// same FLOPs, edge energy and latency divided by [`QUANT_EDGE_SPEEDUP`].
    pub fn edge_only_cost_quantized(&self, little_flops: u64) -> InferenceCost {
        let f32_cost = self.edge_only_cost(little_flops);
        InferenceCost {
            flops: f32_cost.flops,
            energy_mj: f32_cost.energy_mj / QUANT_EDGE_SPEEDUP,
            latency_ms: f32_cost.latency_ms / QUANT_EDGE_SPEEDUP,
        }
    }

    /// Cost `c0` when the edge pass runs on the quantized tier. Only the
    /// edge portion is discounted: the link and the cloud's big network are
    /// untouched by edge quantization.
    pub fn offload_cost_quantized(
        &self,
        little_flops: u64,
        big_flops: u64,
        input_bytes: u64,
    ) -> InferenceCost {
        let f32_offload = self.offload_cost(little_flops, big_flops, input_bytes);
        let edge_f32 = self.edge_only_cost(little_flops);
        let edge_q = self.edge_only_cost_quantized(little_flops);
        InferenceCost {
            flops: f32_offload.flops,
            energy_mj: f32_offload.energy_mj - edge_f32.energy_mj + edge_q.energy_mj,
            latency_ms: f32_offload.latency_ms - edge_f32.latency_ms + edge_q.latency_ms,
        }
    }

    /// Expected per-input cost (Eq. 15) with the little network on the
    /// quantized tier at skipping rate `sr`.
    ///
    /// # Panics
    ///
    /// Panics if `sr` is outside `[0, 1]`.
    pub fn expected_cost_quantized(
        &self,
        sr: f64,
        little_flops: u64,
        big_flops: u64,
        input_bytes: u64,
    ) -> InferenceCost {
        assert!((0.0..=1.0).contains(&sr), "skipping rate must be in [0, 1]");
        let on_edge = self.edge_only_cost_quantized(little_flops).scale(sr);
        let offloaded = self
            .offload_cost_quantized(little_flops, big_flops, input_bytes)
            .scale(1.0 - sr);
        on_edge.add(&offloaded)
    }

    /// Cost of a cloud-only deployment (every input is offloaded, no little network).
    pub fn cloud_only_cost(&self, big_flops: u64, input_bytes: u64) -> InferenceCost {
        self.offload_cost(0, big_flops, input_bytes)
    }

    /// Expected per-input cost of the collaborative system given the skipping
    /// rate `sr` (fraction of inputs kept on the edge) — the paper's Eq. 15
    /// extended to energy and latency.
    ///
    /// # Panics
    ///
    /// Panics if `sr` is outside `[0, 1]`.
    pub fn expected_cost(
        &self,
        sr: f64,
        little_flops: u64,
        big_flops: u64,
        input_bytes: u64,
    ) -> InferenceCost {
        assert!((0.0..=1.0).contains(&sr), "skipping rate must be in [0, 1]");
        let on_edge = self.edge_only_cost(little_flops).scale(sr);
        let offloaded = self
            .offload_cost(little_flops, big_flops, input_bytes)
            .scale(1.0 - sr);
        on_edge.add(&offloaded)
    }
}

impl Default for SystemModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> SystemModel {
        SystemModel::typical()
    }

    #[test]
    fn offload_is_more_expensive_than_edge_only() {
        let s = system();
        let edge = s.edge_only_cost(100_000);
        let offload = s.offload_cost(100_000, 3_000_000, 1728);
        assert!(offload.flops > edge.flops);
        assert!(offload.energy_mj > edge.energy_mj);
        assert!(offload.latency_ms > edge.latency_ms);
    }

    #[test]
    fn expected_cost_interpolates_between_extremes() {
        let s = system();
        let all_edge = s.expected_cost(1.0, 100_000, 3_000_000, 1728);
        let all_cloud = s.expected_cost(0.0, 100_000, 3_000_000, 1728);
        let half = s.expected_cost(0.5, 100_000, 3_000_000, 1728);
        assert!(all_edge.energy_mj < half.energy_mj);
        assert!(half.energy_mj < all_cloud.energy_mj);
        let expected = (all_edge.energy_mj + all_cloud.energy_mj) / 2.0;
        assert!((half.energy_mj - expected).abs() < 1e-9);
    }

    #[test]
    fn expected_cost_matches_eq15_in_flops() {
        // Eq. 15: cost = SR * c1 + (1 - SR) * c0.
        let s = system();
        let little = 200_000u64;
        let big = 4_000_000u64;
        let sr = 0.8;
        let c = s.expected_cost(sr, little, big, 1728);
        let c1 = little as f64;
        let c0 = (little + big) as f64;
        let expected = sr * c1 + (1.0 - sr) * c0;
        assert!((c.flops as f64 - expected).abs() <= 1.0);
    }

    #[test]
    fn higher_skipping_rate_always_cheaper() {
        let s = system();
        let mut prev = f64::INFINITY;
        for sr in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let c = s.expected_cost(sr, 100_000, 3_000_000, 1728);
            assert!(c.energy_mj < prev);
            prev = c.energy_mj;
        }
    }

    #[test]
    fn cloud_only_has_no_little_flops() {
        let s = system();
        let c = s.cloud_only_cost(3_000_000, 1728);
        assert_eq!(c.flops, 3_000_000);
    }

    #[test]
    fn cost_arithmetic() {
        let a = InferenceCost {
            flops: 10,
            energy_mj: 1.0,
            latency_ms: 2.0,
        };
        let b = a.scale(2.0);
        assert_eq!(b.flops, 20);
        let c = a.add(&b);
        assert_eq!(c.flops, 30);
        assert!((c.energy_mj - 3.0).abs() < 1e-12);
        assert_eq!(InferenceCost::zero().flops, 0);
    }

    #[test]
    #[should_panic(expected = "skipping rate must be in")]
    fn rejects_invalid_sr() {
        let _ = system().expected_cost(1.5, 1, 1, 1);
    }

    #[test]
    fn quantized_edge_is_cheaper_but_same_flops() {
        let s = system();
        let f = s.edge_only_cost(100_000);
        let q = s.edge_only_cost_quantized(100_000);
        assert_eq!(q.flops, f.flops, "quantization must not change FLOPs");
        assert!((q.energy_mj * QUANT_EDGE_SPEEDUP - f.energy_mj).abs() < 1e-9);
        assert!((q.latency_ms * QUANT_EDGE_SPEEDUP - f.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn quantized_offload_discounts_only_the_edge_share() {
        let s = system();
        let f = s.offload_cost(100_000, 3_000_000, 1728);
        let q = s.offload_cost_quantized(100_000, 3_000_000, 1728);
        assert_eq!(q.flops, f.flops);
        // The saving equals exactly the edge share's discount; link + cloud
        // terms cancel.
        let edge_saving =
            s.edge_only_cost(100_000).energy_mj - s.edge_only_cost_quantized(100_000).energy_mj;
        assert!((f.energy_mj - q.energy_mj - edge_saving).abs() < 1e-9);
        assert!(q.energy_mj < f.energy_mj);
        assert!(q.latency_ms < f.latency_ms);
    }

    #[test]
    fn quantized_expected_cost_dominates_f32_at_every_sr() {
        let s = system();
        for sr in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let f = s.expected_cost(sr, 100_000, 3_000_000, 1728);
            let q = s.expected_cost_quantized(sr, 100_000, 3_000_000, 1728);
            assert_eq!(q.flops, f.flops);
            assert!(q.energy_mj < f.energy_mj);
            assert!(q.latency_ms < f.latency_ms);
        }
        // Every input pays exactly one edge pass (offloaded inputs run the
        // little network too, per Eq. 5), so the per-input saving is the
        // same at every skipping rate.
        let gain_low = s.expected_cost(0.2, 100_000, 3_000_000, 1728).energy_mj
            - s.expected_cost_quantized(0.2, 100_000, 3_000_000, 1728)
                .energy_mj;
        let gain_high = s.expected_cost(0.9, 100_000, 3_000_000, 1728).energy_mj
            - s.expected_cost_quantized(0.9, 100_000, 3_000_000, 1728)
                .energy_mj;
        assert!((gain_high - gain_low).abs() < 1e-9);
    }

    #[test]
    fn lpwan_link_makes_offloading_very_costly() {
        let constrained = SystemModel::new(
            DeviceSpec::edge_mcu(),
            DeviceSpec::cloud_gpu(),
            LinkSpec::lpwan(),
        );
        let wifi = SystemModel::typical();
        let bytes = 1728;
        assert!(
            constrained
                .offload_cost(100_000, 3_000_000, bytes)
                .latency_ms
                > wifi.offload_cost(100_000, 3_000_000, bytes).latency_ms * 10.0
        );
    }
}
