//! # appeal-hw
//!
//! Hardware profiles, communication links and the energy/latency cost model
//! for edge/cloud collaborative inference, plus the hardware-profiler
//! workflow of the paper's Fig. 3.
//!
//! The paper folds all system costs into two constants (its Eq. 5):
//! `c1` — the cost of running the predictor + little DNN on the edge device —
//! and `c0` — the accumulated cost of running the predictor on the edge,
//! shipping the input to the cloud, running the big DNN there and returning
//! the result. This crate derives those constants from explicit device and
//! link models so that the same experiment can be reported in FLOPs (as the
//! paper's Table I does), in Joules (the ">40% energy savings" headline) or
//! in milliseconds.
//!
//! # Example
//!
//! ```
//! use appeal_hw::prelude::*;
//!
//! let system = SystemModel::new(
//!     DeviceSpec::mobile_soc(),
//!     DeviceSpec::cloud_gpu(),
//!     LinkSpec::wifi(),
//! );
//! let cost = system.offload_cost(100_000, 3_000_000, 3 * 12 * 12 * 4);
//! assert!(cost.energy_mj > system.edge_only_cost(100_000).energy_mj);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod cost;
pub mod device;
pub mod error;
pub mod faults;
pub mod link;
pub mod profiler;
pub mod stochastic;

pub use budget::{CostBudget, CostMeter};
pub use cost::{InferenceCost, SystemModel, QUANT_EDGE_SPEEDUP};
pub use device::DeviceSpec;
pub use error::{HwError, HwResult};
pub use faults::{FaultEvent, FaultPlan};
pub use link::LinkSpec;
pub use profiler::{HardwareProfiler, ProfileDecision};
pub use stochastic::{LinkQueue, StochasticLink, TransferSample, MAX_RETRANSMITS};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::budget::{CostBudget, CostMeter};
    pub use crate::cost::{InferenceCost, SystemModel};
    pub use crate::device::DeviceSpec;
    pub use crate::error::{HwError, HwResult};
    pub use crate::faults::{FaultEvent, FaultPlan};
    pub use crate::link::LinkSpec;
    pub use crate::profiler::{HardwareProfiler, ProfileDecision};
    pub use crate::stochastic::{LinkQueue, StochasticLink, TransferSample, MAX_RETRANSMITS};
}
