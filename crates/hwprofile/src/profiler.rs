//! The hardware profiler workflow of the paper's Fig. 3.
//!
//! Given a hardware specification and a pool of efficient DNN candidates, the
//! profiler selects the most capable little model that fits the device's
//! memory and latency budget. The selected architecture is then augmented
//! with the AppealNet predictor head and jointly trained (that part lives in
//! `appealnet-core`).

use crate::device::DeviceSpec;
use crate::error::{require_positive, HwResult};
use appeal_models::{ModelCost, ModelSpec};
use appeal_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Outcome of profiling one candidate model on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileDecision {
    /// The candidate that was profiled.
    pub spec: ModelSpec,
    /// Its cost summary.
    pub cost: ModelCost,
    /// Estimated on-device latency in milliseconds.
    pub latency_ms: f64,
    /// Whether the candidate fits the device's memory.
    pub fits_memory: bool,
    /// Whether the candidate meets the latency budget.
    pub meets_latency: bool,
}

impl ProfileDecision {
    /// A candidate is deployable if it fits memory and meets the latency budget.
    pub fn deployable(&self) -> bool {
        self.fits_memory && self.meets_latency
    }
}

/// Profiles candidate little models against an edge device budget (Fig. 3).
#[derive(Debug, Clone)]
pub struct HardwareProfiler {
    device: DeviceSpec,
    latency_budget_ms: f64,
}

impl HardwareProfiler {
    /// Creates a profiler for a device with a per-inference latency budget.
    ///
    /// Returns [`crate::HwError`] if the latency budget is not positive.
    pub fn new(device: DeviceSpec, latency_budget_ms: f64) -> HwResult<Self> {
        require_positive("latency_budget_ms", latency_budget_ms)?;
        Ok(Self {
            device,
            latency_budget_ms,
        })
    }

    /// The device being profiled against.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Profiles one candidate.
    pub fn profile(&self, spec: &ModelSpec) -> ProfileDecision {
        // Building the model materializes exact FLOP/parameter counts; the
        // profiler never needs trained weights, so any seed works.
        let mut model = spec.build(&mut SeededRng::new(0));
        let cost = model.cost();
        let latency_ms = self.device.latency_ms(cost.flops);
        ProfileDecision {
            spec: spec.clone(),
            cost,
            latency_ms,
            fits_memory: self.device.fits(cost.params),
            meets_latency: latency_ms <= self.latency_budget_ms,
        }
    }

    /// Profiles every candidate in the pool.
    pub fn profile_pool(&self, pool: &[ModelSpec]) -> Vec<ProfileDecision> {
        pool.iter().map(|spec| self.profile(spec)).collect()
    }

    /// Selects the deployable candidate with the highest FLOP count — the
    /// most capable model that still fits the budget, which is the paper's
    /// selection rule for the little network.
    pub fn select(&self, pool: &[ModelSpec]) -> Option<ProfileDecision> {
        self.profile_pool(pool)
            .into_iter()
            .filter(ProfileDecision::deployable)
            .max_by_key(|d| d.cost.flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use appeal_models::ModelFamily;

    fn pool() -> Vec<ModelSpec> {
        let mut pool: Vec<ModelSpec> = ModelFamily::little_families()
            .iter()
            .map(|&f| ModelSpec::little(f, [3, 12, 12], 10))
            .collect();
        pool.push(ModelSpec::little(ModelFamily::MobileNetLike, [3, 12, 12], 10).with_width(0.5));
        pool.push(ModelSpec::big([3, 12, 12], 10));
        pool
    }

    #[test]
    fn profile_reports_cost_and_latency() {
        let profiler = HardwareProfiler::new(DeviceSpec::mobile_soc(), 10.0).unwrap();
        let d = profiler.profile(&ModelSpec::little(
            ModelFamily::MobileNetLike,
            [3, 12, 12],
            10,
        ));
        assert!(d.cost.flops > 0);
        assert!(d.latency_ms > 0.0);
        assert!(d.fits_memory);
    }

    #[test]
    fn generous_budget_selects_most_capable_candidate() {
        let profiler = HardwareProfiler::new(DeviceSpec::cloud_gpu(), 1000.0).unwrap();
        let selected = profiler.select(&pool()).expect("something must fit");
        // With no effective constraint, the big network wins.
        assert_eq!(selected.spec.family, ModelFamily::ResNetLike);
    }

    #[test]
    fn tight_memory_excludes_big_model() {
        // A device whose memory holds the little models but not the big
        // network's parameters must select a little family.
        let mut rng = appeal_tensor::SeededRng::new(0);
        let big_params = ModelSpec::big([3, 12, 12], 10)
            .build(&mut rng)
            .param_count() as u64;
        let tight =
            DeviceSpec::new("tight-mcu", 0.5, 120.0, (big_params * 4 / 1024).max(1) / 2).unwrap();
        let profiler = HardwareProfiler::new(tight, 1e9).unwrap();
        let selected = profiler.select(&pool()).expect("a little model must fit");
        assert!(selected.spec.family.is_little());
    }

    #[test]
    fn impossible_latency_budget_selects_nothing() {
        let profiler = HardwareProfiler::new(DeviceSpec::edge_mcu(), 1e-6).unwrap();
        assert!(profiler.select(&pool()).is_none());
    }

    #[test]
    fn profile_pool_covers_all_candidates() {
        let profiler = HardwareProfiler::new(DeviceSpec::mobile_soc(), 10.0).unwrap();
        assert_eq!(profiler.profile_pool(&pool()).len(), pool().len());
    }

    #[test]
    fn rejects_zero_budget() {
        let err = HardwareProfiler::new(DeviceSpec::mobile_soc(), 0.0).unwrap_err();
        assert_eq!(
            err,
            crate::HwError::NonPositive {
                field: "latency_budget_ms",
                value: 0.0,
            }
        );
    }
}
