//! Edge-to-cloud communication link specifications.

use crate::error::{require_non_negative, require_positive, HwResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A wireless (or wired) uplink between the edge device and the cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable link name.
    pub name: String,
    /// Sustained throughput in megabits per second.
    pub bandwidth_mbps: f64,
    /// Transmission energy per byte, in nanojoules.
    pub energy_per_byte_nj: f64,
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
}

impl LinkSpec {
    /// Creates a custom link specification.
    ///
    /// Returns [`crate::HwError`] if bandwidth or energy is not positive,
    /// or RTT is negative (NaN is rejected by all three checks).
    pub fn new(
        name: impl Into<String>,
        bandwidth_mbps: f64,
        energy_per_byte_nj: f64,
        rtt_ms: f64,
    ) -> HwResult<Self> {
        require_positive("bandwidth_mbps", bandwidth_mbps)?;
        require_positive("energy_per_byte_nj", energy_per_byte_nj)?;
        require_non_negative("rtt_ms", rtt_ms)?;
        Ok(Self {
            name: name.into(),
            bandwidth_mbps,
            energy_per_byte_nj,
            rtt_ms,
        })
    }

    /// A home/office Wi-Fi link.
    pub fn wifi() -> Self {
        Self {
            name: "wifi".into(),
            bandwidth_mbps: 50.0,
            energy_per_byte_nj: 90.0,
            rtt_ms: 10.0,
        }
    }

    /// A cellular LTE link.
    pub fn lte() -> Self {
        Self {
            name: "lte".into(),
            bandwidth_mbps: 10.0,
            energy_per_byte_nj: 400.0,
            rtt_ms: 50.0,
        }
    }

    /// A constrained LPWAN-style link (worst case for offloading).
    pub fn lpwan() -> Self {
        Self {
            name: "lpwan".into(),
            bandwidth_mbps: 0.25,
            energy_per_byte_nj: 1500.0,
            rtt_ms: 500.0,
        }
    }

    /// Pure serialization time for `bytes` at the link bandwidth, in
    /// milliseconds — no propagation component.
    pub fn transmit_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / (self.bandwidth_mbps * 1e6) * 1e3
    }

    /// Time to transmit `bytes` one way plus half the round trip, in
    /// milliseconds.
    ///
    /// This charges only *half* the RTT: it models a single one-way message.
    /// The appeal path (features up, logits back) is two such messages — use
    /// [`Self::round_trip_ms`] so the response leg is not dropped.
    pub fn latency_ms(&self, bytes: u64) -> f64 {
        self.transmit_ms(bytes) + self.rtt_ms / 2.0
    }

    /// Full appeal-response latency: send `up_bytes` to the cloud and
    /// receive `down_bytes` back, in milliseconds.
    ///
    /// Each direction pays its serialization time plus half the RTT, so the
    /// pair charges exactly one full RTT of propagation.
    pub fn round_trip_ms(&self, up_bytes: u64, down_bytes: u64) -> f64 {
        self.latency_ms(up_bytes) + self.latency_ms(down_bytes)
    }

    /// Transmission energy for `bytes`, in millijoules.
    pub fn energy_mj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte_nj * 1e-9 * 1e3
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} Mbps, {} nJ/B, rtt {} ms)",
            self.name, self.bandwidth_mbps, self.energy_per_byte_nj, self.rtt_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HwError;

    #[test]
    fn presets_are_ordered() {
        assert!(LinkSpec::wifi().bandwidth_mbps > LinkSpec::lte().bandwidth_mbps);
        assert!(LinkSpec::lte().bandwidth_mbps > LinkSpec::lpwan().bandwidth_mbps);
        assert!(LinkSpec::wifi().energy_per_byte_nj < LinkSpec::lpwan().energy_per_byte_nj);
    }

    #[test]
    fn presets_pass_their_own_validation() {
        for preset in [LinkSpec::wifi(), LinkSpec::lte(), LinkSpec::lpwan()] {
            let rebuilt = LinkSpec::new(
                preset.name.clone(),
                preset.bandwidth_mbps,
                preset.energy_per_byte_nj,
                preset.rtt_ms,
            )
            .expect("preset fields must validate");
            assert_eq!(rebuilt, preset);
        }
    }

    #[test]
    fn latency_includes_rtt() {
        let link = LinkSpec::wifi();
        assert!(link.latency_ms(0) >= link.rtt_ms / 2.0);
        assert!(link.latency_ms(1_000_000) > link.latency_ms(1_000));
    }

    #[test]
    fn transmit_excludes_propagation() {
        let link = LinkSpec::wifi();
        assert!((link.transmit_ms(0)).abs() < 1e-12);
        assert!((link.latency_ms(4096) - link.transmit_ms(4096) - link.rtt_ms / 2.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_charges_one_full_rtt() {
        let link = LinkSpec::lte();
        let rt = link.round_trip_ms(4096, 16);
        let expected = link.transmit_ms(4096) + link.transmit_ms(16) + link.rtt_ms;
        assert!((rt - expected).abs() < 1e-12);
        // The old single-call accounting undercounts by half the RTT.
        assert!(rt > link.latency_ms(4096 + 16));
    }

    #[test]
    fn energy_scales_with_bytes() {
        let link = LinkSpec::lte();
        assert!((link.energy_mj(2000) - 2.0 * link.energy_mj(1000)).abs() < 1e-12);
    }

    #[test]
    fn known_energy_value() {
        // 90 nJ per byte * 1e6 bytes = 0.09 J = 90 mJ.
        assert!((LinkSpec::wifi().energy_mj(1_000_000) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_fields() {
        assert_eq!(
            LinkSpec::new("bad", 0.0, 1.0, 1.0),
            Err(HwError::NonPositive {
                field: "bandwidth_mbps",
                value: 0.0,
            })
        );
        assert_eq!(
            LinkSpec::new("bad", 1.0, -1.0, 1.0),
            Err(HwError::NonPositive {
                field: "energy_per_byte_nj",
                value: -1.0,
            })
        );
        assert_eq!(
            LinkSpec::new("bad", 1.0, 1.0, -1.0),
            Err(HwError::Negative {
                field: "rtt_ms",
                value: -1.0,
            })
        );
        assert!(LinkSpec::new("bad", f64::NAN, 1.0, 1.0).is_err());
    }
}
