//! Edge-to-cloud communication link specifications.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A wireless (or wired) uplink between the edge device and the cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable link name.
    pub name: String,
    /// Sustained throughput in megabits per second.
    pub bandwidth_mbps: f64,
    /// Transmission energy per byte, in nanojoules.
    pub energy_per_byte_nj: f64,
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
}

impl LinkSpec {
    /// Creates a custom link specification.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth or energy is not positive, or RTT is negative.
    pub fn new(
        name: impl Into<String>,
        bandwidth_mbps: f64,
        energy_per_byte_nj: f64,
        rtt_ms: f64,
    ) -> Self {
        assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
        assert!(energy_per_byte_nj > 0.0, "energy per byte must be positive");
        assert!(rtt_ms >= 0.0, "rtt must be non-negative");
        Self {
            name: name.into(),
            bandwidth_mbps,
            energy_per_byte_nj,
            rtt_ms,
        }
    }

    /// A home/office Wi-Fi link.
    pub fn wifi() -> Self {
        Self::new("wifi", 50.0, 90.0, 10.0)
    }

    /// A cellular LTE link.
    pub fn lte() -> Self {
        Self::new("lte", 10.0, 400.0, 50.0)
    }

    /// A constrained LPWAN-style link (worst case for offloading).
    pub fn lpwan() -> Self {
        Self::new("lpwan", 0.25, 1500.0, 500.0)
    }

    /// Time to transmit `bytes` one way plus half the round trip, in milliseconds.
    pub fn latency_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / (self.bandwidth_mbps * 1e6) * 1e3 + self.rtt_ms / 2.0
    }

    /// Transmission energy for `bytes`, in millijoules.
    pub fn energy_mj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte_nj * 1e-9 * 1e3
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} Mbps, {} nJ/B, rtt {} ms)",
            self.name, self.bandwidth_mbps, self.energy_per_byte_nj, self.rtt_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(LinkSpec::wifi().bandwidth_mbps > LinkSpec::lte().bandwidth_mbps);
        assert!(LinkSpec::lte().bandwidth_mbps > LinkSpec::lpwan().bandwidth_mbps);
        assert!(LinkSpec::wifi().energy_per_byte_nj < LinkSpec::lpwan().energy_per_byte_nj);
    }

    #[test]
    fn latency_includes_rtt() {
        let link = LinkSpec::wifi();
        assert!(link.latency_ms(0) >= link.rtt_ms / 2.0);
        assert!(link.latency_ms(1_000_000) > link.latency_ms(1_000));
    }

    #[test]
    fn energy_scales_with_bytes() {
        let link = LinkSpec::lte();
        assert!((link.energy_mj(2000) - 2.0 * link.energy_mj(1000)).abs() < 1e-12);
    }

    #[test]
    fn known_energy_value() {
        // 90 nJ per byte * 1e6 bytes = 0.09 J = 90 mJ.
        assert!((LinkSpec::wifi().energy_mj(1_000_000) - 90.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = LinkSpec::new("bad", 0.0, 1.0, 1.0);
    }
}
