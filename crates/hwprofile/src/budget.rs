//! Cost accounting for serving-time routing policies.
//!
//! The paper's deployment objective (Eq. 7) can be read as a *budgeted*
//! problem: maximize accuracy subject to a bound on the system cost. A
//! [`CostBudget`] expresses such a bound in any subset of the three cost
//! units of [`InferenceCost`], and a [`CostMeter`] accumulates what a
//! running system has actually spent. Together they let a routing policy
//! (e.g. `appealnet_core::serve::BudgetPolicy`) decide per input whether
//! one more offload still fits the budget.

use crate::cost::InferenceCost;
use serde::{Deserialize, Serialize};

/// An upper bound on accumulated inference cost. Unset components are
/// unconstrained; a budget with no component set admits everything.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBudget {
    /// Maximum accumulated FLOPs, if bounded.
    pub max_flops: Option<u64>,
    /// Maximum accumulated energy in millijoules, if bounded.
    pub max_energy_mj: Option<f64>,
    /// Maximum accumulated latency in milliseconds, if bounded.
    pub max_latency_ms: Option<f64>,
}

impl CostBudget {
    /// A budget with no bounds: everything is admitted.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget bounding only accumulated energy (the battery view).
    pub fn energy_mj(max: f64) -> Self {
        Self {
            max_energy_mj: Some(max),
            ..Self::default()
        }
    }

    /// A budget bounding only accumulated FLOPs (the paper's Table I unit).
    pub fn flops(max: u64) -> Self {
        Self {
            max_flops: Some(max),
            ..Self::default()
        }
    }

    /// A budget bounding only accumulated latency.
    pub fn latency_ms(max: f64) -> Self {
        Self {
            max_latency_ms: Some(max),
            ..Self::default()
        }
    }

    /// Returns `true` if charging `next` on top of `spent` stays within
    /// every bounded component.
    pub fn admits(&self, spent: &InferenceCost, next: &InferenceCost) -> bool {
        let flops_ok = self
            .max_flops
            .is_none_or(|max| spent.flops.saturating_add(next.flops) <= max);
        let energy_ok = self
            .max_energy_mj
            .is_none_or(|max| spent.energy_mj + next.energy_mj <= max);
        let latency_ok = self
            .max_latency_ms
            .is_none_or(|max| spent.latency_ms + next.latency_ms <= max);
        flops_ok && energy_ok && latency_ok
    }

    /// Returns `true` if no component is bounded.
    pub fn is_unlimited(&self) -> bool {
        self.max_flops.is_none() && self.max_energy_mj.is_none() && self.max_latency_ms.is_none()
    }
}

/// Accumulates the cost a running system has charged so far.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostMeter {
    spent: InferenceCost,
    charges: u64,
}

impl CostMeter {
    /// A meter with nothing spent.
    pub fn new() -> Self {
        Self {
            spent: InferenceCost::zero(),
            charges: 0,
        }
    }

    /// Adds one cost to the running total. Accumulation saturates (see
    /// [`InferenceCost::add`]) so a meter that runs for the lifetime of a
    /// deployment pins at `u64::MAX` FLOPs instead of wrapping back under
    /// its budget.
    pub fn charge(&mut self, cost: &InferenceCost) {
        self.spent = self.spent.add(cost);
        self.charges = self.charges.saturating_add(1);
    }

    /// Total cost charged so far.
    pub fn spent(&self) -> InferenceCost {
        self.spent
    }

    /// Number of individual charges recorded.
    pub fn charges(&self) -> u64 {
        self.charges
    }

    /// Resets the meter to zero.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

impl Default for CostMeter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(flops: u64, energy: f64, latency: f64) -> InferenceCost {
        InferenceCost {
            flops,
            energy_mj: energy,
            latency_ms: latency,
        }
    }

    #[test]
    fn unlimited_budget_admits_everything() {
        let b = CostBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.admits(&cost(u64::MAX, 1e30, 1e30), &cost(u64::MAX, 1e30, 1e30)));
    }

    #[test]
    fn energy_budget_rejects_once_exceeded() {
        let b = CostBudget::energy_mj(10.0);
        let spent = cost(0, 8.0, 0.0);
        assert!(b.admits(&spent, &cost(0, 2.0, 0.0)));
        assert!(!b.admits(&spent, &cost(0, 2.1, 0.0)));
        // Other components are unconstrained.
        assert!(b.admits(&spent, &cost(u64::MAX, 1.0, 1e12)));
    }

    #[test]
    fn flops_budget_saturates_instead_of_overflowing() {
        let b = CostBudget::flops(100);
        assert!(!b.admits(&cost(u64::MAX, 0.0, 0.0), &cost(u64::MAX, 0.0, 0.0)));
    }

    #[test]
    fn multi_component_budget_requires_all_components() {
        let b = CostBudget {
            max_flops: Some(100),
            max_energy_mj: Some(10.0),
            max_latency_ms: None,
        };
        assert!(b.admits(&cost(50, 5.0, 0.0), &cost(50, 5.0, 99.0)));
        assert!(!b.admits(&cost(50, 5.0, 0.0), &cost(51, 1.0, 0.0)));
        assert!(!b.admits(&cost(50, 5.0, 0.0), &cost(1, 5.1, 0.0)));
    }

    #[test]
    fn meter_charge_saturates_instead_of_overflowing() {
        // A lifetime meter must pin at the ceiling, not wrap to a small
        // number that a budget would happily admit again.
        let mut m = CostMeter::new();
        m.charge(&cost(u64::MAX - 5, 0.0, 0.0));
        m.charge(&cost(100, 0.0, 0.0));
        assert_eq!(m.spent().flops, u64::MAX);
        // A saturated meter keeps rejecting under any bounded flops budget.
        let b = CostBudget::flops(u64::MAX - 1);
        assert!(!b.admits(&m.spent(), &cost(0, 0.0, 0.0)));
    }

    #[test]
    fn meter_accumulates_and_resets() {
        let mut m = CostMeter::new();
        assert_eq!(m.charges(), 0);
        m.charge(&cost(10, 1.0, 2.0));
        m.charge(&cost(5, 0.5, 1.0));
        assert_eq!(m.spent().flops, 15);
        assert!((m.spent().energy_mj - 1.5).abs() < 1e-12);
        assert_eq!(m.charges(), 2);
        m.reset();
        assert_eq!(m.spent().flops, 0);
        assert_eq!(m.charges(), 0);
    }
}
