//! Seeded, deterministic fault injection: typed virtual-time fault events
//! composable with the [`StochasticLink`](crate::StochasticLink) weather
//! model.
//!
//! A [`FaultPlan`] is a *script*, not a process: every event is a window (or
//! instant) on the virtual clock, and every probabilistic decision (response
//! drop/corruption) is a pure hash of `(plan seed, request, attempt)` — no
//! RNG stream is consumed, so a plan's answers are independent of query
//! order and a faulted simulation replays byte-for-byte from its seed. That
//! is the property the fleet simulator's chaos experiments lean on: the same
//! outage produces the same ledger twice.
//!
//! Supported fault types ([`FaultEvent`]):
//!
//! * **Cloud blackout** — the cloud tier is unreachable for a window:
//!   appeals arriving during it are lost (the edge learns via its appeal
//!   deadline).
//! * **Link brownout** — a window that multiplies the stochastic link's
//!   severity (stretching transfers and scaling loss, exactly like the fleet
//!   simulator's `Degradation` but bounded and composable — overlapping
//!   brownouts multiply).
//! * **Response drop / corruption** — each cloud answer inside the window is
//!   dropped (never delivered) or corrupted (delivered but unusable) with a
//!   configured probability, decided by the plan's seed.
//! * **Node crash** — one edge node's compute is down for a window starting
//!   at `at_nanos`; requests arriving while it is down wait for the restart.

use crate::error::{require_positive, require_probability_inclusive, HwError, HwResult};
use serde::{Deserialize, Serialize};

/// One scripted fault on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The cloud tier is unreachable in `[from_nanos, until_nanos)`.
    CloudBlackout {
        /// Window start (inclusive), in virtual nanoseconds.
        from_nanos: u64,
        /// Window end (exclusive), in virtual nanoseconds.
        until_nanos: u64,
    },
    /// The link degrades by `severity` in `[from_nanos, until_nanos)`.
    LinkBrownout {
        /// Window start (inclusive), in virtual nanoseconds.
        from_nanos: u64,
        /// Window end (exclusive), in virtual nanoseconds.
        until_nanos: u64,
        /// Severity multiplier applied to transfers and loss (must be
        /// positive; > 1 degrades, and overlapping brownouts multiply).
        severity: f64,
    },
    /// Each cloud answer in `[from_nanos, until_nanos)` is dropped with
    /// probability `probability` (1.0 drops everything).
    ResponseDrop {
        /// Window start (inclusive), in virtual nanoseconds.
        from_nanos: u64,
        /// Window end (exclusive), in virtual nanoseconds.
        until_nanos: u64,
        /// Per-answer drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Each cloud answer in `[from_nanos, until_nanos)` is corrupted with
    /// probability `probability`: it arrives, but its payload is unusable
    /// and the edge must treat it as a failed appeal.
    ResponseCorrupt {
        /// Window start (inclusive), in virtual nanoseconds.
        from_nanos: u64,
        /// Window end (exclusive), in virtual nanoseconds.
        until_nanos: u64,
        /// Per-answer corruption probability in `[0, 1]`.
        probability: f64,
    },
    /// Edge node `node` crashes at `at_nanos` and restarts `down_nanos`
    /// later. While down, its compute is unavailable.
    NodeCrash {
        /// The crashed node's fleet index.
        node: usize,
        /// Crash instant, in virtual nanoseconds.
        at_nanos: u64,
        /// How long the node stays down, in virtual nanoseconds.
        down_nanos: u64,
    },
}

impl FaultEvent {
    fn validate(&self) -> HwResult<()> {
        match *self {
            FaultEvent::CloudBlackout {
                from_nanos,
                until_nanos,
            } => require_window(from_nanos, until_nanos),
            FaultEvent::LinkBrownout {
                from_nanos,
                until_nanos,
                severity,
            } => {
                require_window(from_nanos, until_nanos)?;
                require_positive("brownout severity", severity)
            }
            FaultEvent::ResponseDrop {
                from_nanos,
                until_nanos,
                probability,
            } => {
                require_window(from_nanos, until_nanos)?;
                require_probability_inclusive("drop probability", probability)
            }
            FaultEvent::ResponseCorrupt {
                from_nanos,
                until_nanos,
                probability,
            } => {
                require_window(from_nanos, until_nanos)?;
                require_probability_inclusive("corrupt probability", probability)
            }
            FaultEvent::NodeCrash { .. } => Ok(()),
        }
    }

    /// Whether this event touches the cloud-facing half of an appeal
    /// (blackouts, response drops/corruption). A simulator without a
    /// recovery policy cannot resolve requests these faults strand, so it
    /// should reject plans containing them unless recovery is configured.
    pub fn needs_recovery(&self) -> bool {
        matches!(
            self,
            FaultEvent::CloudBlackout { .. }
                | FaultEvent::ResponseDrop { .. }
                | FaultEvent::ResponseCorrupt { .. }
        )
    }
}

fn require_window(from_nanos: u64, until_nanos: u64) -> HwResult<()> {
    if until_nanos >= from_nanos {
        Ok(())
    } else {
        Err(HwError::InvalidWindow {
            from_nanos,
            until_nanos,
        })
    }
}

/// A validated script of [`FaultEvent`]s plus the seed its probabilistic
/// decisions hash from. Construct with [`FaultPlan::new`] (or
/// [`FaultPlan::none`] for the empty plan) and query it from a simulation's
/// event loop; queries are pure functions of `(plan, arguments)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Validates and assembles a plan.
    pub fn new(seed: u64, events: Vec<FaultEvent>) -> HwResult<Self> {
        for event in &events {
            event.validate()?;
        }
        Ok(Self { seed, events })
    }

    /// The empty plan: no faults, every query answers "healthy".
    pub fn none() -> Self {
        Self {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Whether the plan scripts no faults at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scripted events, in script order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether any scripted fault requires an appeal recovery policy to keep
    /// stranded requests resolvable (see [`FaultEvent::needs_recovery`]).
    pub fn needs_recovery(&self) -> bool {
        self.events.iter().any(FaultEvent::needs_recovery)
    }

    /// Whether the cloud tier is blacked out at `t_nanos`.
    pub fn cloud_down(&self, t_nanos: u64) -> bool {
        self.events.iter().any(|e| match *e {
            FaultEvent::CloudBlackout {
                from_nanos,
                until_nanos,
            } => (from_nanos..until_nanos).contains(&t_nanos),
            _ => false,
        })
    }

    /// The product of every brownout severity active at `t_nanos` (1.0 when
    /// none is). Multiply into the link's other severity sources.
    pub fn link_severity(&self, t_nanos: u64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::LinkBrownout {
                    from_nanos,
                    until_nanos,
                    severity,
                } if (from_nanos..until_nanos).contains(&t_nanos) => Some(severity),
                _ => None,
            })
            .product()
    }

    /// If node `node` is down at `t_nanos`, the virtual time it restarts;
    /// `None` while the node is up. Overlapping crash windows report the
    /// latest restart.
    pub fn node_restart_at(&self, node: usize, t_nanos: u64) -> Option<u64> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::NodeCrash {
                    node: n,
                    at_nanos,
                    down_nanos,
                } if n == node => {
                    let restart = at_nanos.saturating_add(down_nanos);
                    (at_nanos..restart).contains(&t_nanos).then_some(restart)
                }
                _ => None,
            })
            .max()
    }

    /// Whether the cloud answer for `(request, attempt)` completing at
    /// `t_nanos` is dropped. Pure: hashes the plan seed, never draws from an
    /// RNG stream.
    pub fn drops_response(&self, t_nanos: u64, request: usize, attempt: u32) -> bool {
        self.response_fault(t_nanos, request, attempt, 0x5D, |e| match *e {
            FaultEvent::ResponseDrop {
                from_nanos,
                until_nanos,
                probability,
            } => Some((from_nanos, until_nanos, probability)),
            _ => None,
        })
    }

    /// Whether the cloud answer for `(request, attempt)` completing at
    /// `t_nanos` is corrupted. Pure, like [`drops_response`](Self::drops_response).
    pub fn corrupts_response(&self, t_nanos: u64, request: usize, attempt: u32) -> bool {
        self.response_fault(t_nanos, request, attempt, 0xC0, |e| match *e {
            FaultEvent::ResponseCorrupt {
                from_nanos,
                until_nanos,
                probability,
            } => Some((from_nanos, until_nanos, probability)),
            _ => None,
        })
    }

    fn response_fault(
        &self,
        t_nanos: u64,
        request: usize,
        attempt: u32,
        salt: u64,
        select: impl Fn(&FaultEvent) -> Option<(u64, u64, f64)>,
    ) -> bool {
        self.events
            .iter()
            .filter_map(&select)
            .any(|(from_nanos, until_nanos, probability)| {
                (from_nanos..until_nanos).contains(&t_nanos)
                    && hashed_unit(self.seed, request as u64, u64::from(attempt), salt)
                        < probability
            })
    }
}

/// SplitMix64-style avalanche of `(seed, request, attempt, salt)` onto
/// `[0, 1)`. Stateless so fault decisions replay independent of query order.
fn hashed_unit(seed: u64, request: u64, attempt: u64, salt: u64) -> f64 {
    let mut z = seed
        .wrapping_add(request.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(attempt.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(
            42,
            vec![
                FaultEvent::CloudBlackout {
                    from_nanos: 100,
                    until_nanos: 200,
                },
                FaultEvent::LinkBrownout {
                    from_nanos: 150,
                    until_nanos: 400,
                    severity: 3.0,
                },
                FaultEvent::LinkBrownout {
                    from_nanos: 300,
                    until_nanos: 500,
                    severity: 2.0,
                },
                FaultEvent::ResponseDrop {
                    from_nanos: 0,
                    until_nanos: 1_000,
                    probability: 0.5,
                },
                FaultEvent::NodeCrash {
                    node: 1,
                    at_nanos: 600,
                    down_nanos: 100,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn blackout_windows_are_half_open() {
        let p = plan();
        assert!(!p.cloud_down(99));
        assert!(p.cloud_down(100));
        assert!(p.cloud_down(199));
        assert!(!p.cloud_down(200));
    }

    #[test]
    fn overlapping_brownouts_multiply() {
        let p = plan();
        assert_eq!(p.link_severity(0), 1.0);
        assert_eq!(p.link_severity(150), 3.0);
        assert_eq!(p.link_severity(350), 6.0);
        assert_eq!(p.link_severity(450), 2.0);
        assert_eq!(p.link_severity(500), 1.0);
    }

    #[test]
    fn node_crash_reports_restart_time() {
        let p = plan();
        assert_eq!(p.node_restart_at(1, 599), None);
        assert_eq!(p.node_restart_at(1, 600), Some(700));
        assert_eq!(p.node_restart_at(1, 699), Some(700));
        assert_eq!(p.node_restart_at(1, 700), None);
        assert_eq!(p.node_restart_at(0, 650), None, "other nodes stay up");
    }

    #[test]
    fn response_drops_are_pure_and_seed_sensitive() {
        let p = plan();
        // Same query always answers the same; query order cannot matter.
        let first: Vec<bool> = (0..64).map(|r| p.drops_response(10, r, 1)).collect();
        let second: Vec<bool> = (0..64).map(|r| p.drops_response(10, r, 1)).collect();
        assert_eq!(first, second);
        let dropped = first.iter().filter(|&&d| d).count();
        assert!(dropped > 10 && dropped < 54, "p=0.5 should land mid-range");
        // Attempts are independent coins: a request dropped on attempt 1 is
        // not automatically dropped on attempt 2.
        let flips = (0..64).any(|r| p.drops_response(10, r, 1) != p.drops_response(10, r, 2));
        assert!(flips);
        // A different plan seed reshuffles the outcomes.
        let reseeded = FaultPlan::new(43, p.events().to_vec()).unwrap();
        assert_ne!(
            first,
            (0..64)
                .map(|r| reseeded.drops_response(10, r, 1))
                .collect::<Vec<_>>()
        );
        // Outside the window nothing drops.
        assert!((0..64).all(|r| !p.drops_response(5_000, r, 1)));
    }

    #[test]
    fn probability_extremes_are_exact() {
        let all = FaultPlan::new(
            1,
            vec![FaultEvent::ResponseCorrupt {
                from_nanos: 0,
                until_nanos: 100,
                probability: 1.0,
            }],
        )
        .unwrap();
        assert!((0..32).all(|r| all.corrupts_response(50, r, 1)));
        let none = FaultPlan::new(
            1,
            vec![FaultEvent::ResponseCorrupt {
                from_nanos: 0,
                until_nanos: 100,
                probability: 0.0,
            }],
        )
        .unwrap();
        assert!((0..32).all(|r| !none.corrupts_response(50, r, 1)));
    }

    #[test]
    fn validation_rejects_bad_events() {
        assert!(matches!(
            FaultPlan::new(
                0,
                vec![FaultEvent::CloudBlackout {
                    from_nanos: 10,
                    until_nanos: 5,
                }],
            ),
            Err(HwError::InvalidWindow { .. })
        ));
        assert!(FaultPlan::new(
            0,
            vec![FaultEvent::LinkBrownout {
                from_nanos: 0,
                until_nanos: 1,
                severity: 0.0,
            }],
        )
        .is_err());
        assert!(FaultPlan::new(
            0,
            vec![FaultEvent::ResponseDrop {
                from_nanos: 0,
                until_nanos: 1,
                probability: 1.5,
            }],
        )
        .is_err());
    }

    #[test]
    fn needs_recovery_flags_cloud_facing_faults() {
        assert!(plan().needs_recovery());
        let benign = FaultPlan::new(
            0,
            vec![
                FaultEvent::LinkBrownout {
                    from_nanos: 0,
                    until_nanos: 10,
                    severity: 2.0,
                },
                FaultEvent::NodeCrash {
                    node: 0,
                    at_nanos: 0,
                    down_nanos: 10,
                },
            ],
        )
        .unwrap();
        assert!(!benign.needs_recovery());
        assert!(!FaultPlan::none().needs_recovery());
        assert!(FaultPlan::none().is_empty());
    }
}
