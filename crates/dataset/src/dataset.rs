//! In-memory labelled image datasets and batching.

use appeal_tensor::{SeededRng, Tensor};
use serde::{Deserialize, Serialize};

/// A mini-batch of images and labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images, shape `[batch, channels, height, width]`.
    pub images: Tensor,
    /// Integer class labels, one per image.
    pub labels: Vec<usize>,
    /// Indices of these samples in the parent dataset.
    pub indices: Vec<usize>,
}

/// An in-memory labelled image dataset.
///
/// Every sample also carries a ground-truth *difficulty flag* recording
/// whether the synthesizer produced it as a long-tail "hard" input. The flag
/// is used only for analysis and visualization (e.g. Fig. 4-style
/// histograms); it is never shown to the models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    hard: Vec<bool>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from images `[n, c, h, w]`, labels and difficulty flags.
    ///
    /// # Panics
    ///
    /// Panics if the images tensor is not rank 4, or the label / flag counts
    /// do not match the number of images, or a label is `>= num_classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, hard: Vec<bool>, num_classes: usize) -> Self {
        assert_eq!(images.rank(), 4, "images must be [n, c, h, w]");
        let n = images.shape()[0];
        assert_eq!(labels.len(), n, "label count must match image count");
        assert_eq!(
            hard.len(),
            n,
            "difficulty flag count must match image count"
        );
        assert!(
            labels.iter().all(|&y| y < num_classes),
            "labels must be < num_classes"
        );
        Self {
            images,
            labels,
            hard,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image shape as `[channels, height, width]`.
    pub fn image_shape(&self) -> Vec<usize> {
        self.images.shape()[1..].to_vec()
    }

    /// All images, `[n, c, h, w]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Ground-truth difficulty flags (true = generated as a long-tail hard input).
    pub fn hard_flags(&self) -> &[bool] {
        &self.hard
    }

    /// Fraction of samples generated as hard inputs.
    pub fn hard_fraction(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        self.hard.iter().filter(|&&h| h).count() as f32 / self.len() as f32
    }

    /// Number of samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }

    /// Gathers a subset of samples by index into a [`Batch`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        Batch {
            images: self.images.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            indices: indices.to_vec(),
        }
    }

    /// Returns the whole dataset as a single batch (useful for evaluation).
    pub fn full_batch(&self) -> Batch {
        self.gather(&(0..self.len()).collect::<Vec<_>>())
    }

    /// Splits the dataset into mini-batches, optionally shuffling sample order.
    ///
    /// The final batch may be smaller than `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize, shuffle: bool, rng: &mut SeededRng) -> Vec<Batch> {
        assert!(batch_size > 0, "batch_size must be positive");
        let order: Vec<usize> = if shuffle {
            rng.permutation(self.len())
        } else {
            (0..self.len()).collect()
        };
        order
            .chunks(batch_size)
            .map(|chunk| self.gather(chunk))
            .collect()
    }

    /// Returns a new dataset containing only the samples at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Self {
        Self {
            images: self.images.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            hard: indices.iter().map(|&i| self.hard[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Splits into two datasets: the first `n` samples and the rest.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_at(&self, n: usize) -> (Self, Self) {
        assert!(n <= self.len(), "split point beyond dataset length");
        let first: Vec<usize> = (0..n).collect();
        let second: Vec<usize> = (n..self.len()).collect();
        (self.subset(&first), self.subset(&second))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(n: usize, classes: usize) -> Dataset {
        let mut rng = SeededRng::new(1);
        let images = Tensor::randn(&[n, 1, 2, 2], &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let hard: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect();
        Dataset::new(images, labels, hard, classes)
    }

    #[test]
    fn construction_and_accessors() {
        let ds = toy_dataset(10, 3);
        assert_eq!(ds.len(), 10);
        assert!(!ds.is_empty());
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.image_shape(), vec![1, 2, 2]);
        assert_eq!(ds.class_counts().iter().sum::<usize>(), 10);
        assert!((ds.hard_fraction() - 0.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "labels must be < num_classes")]
    fn rejects_out_of_range_label() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = Dataset::new(images, vec![5], vec![false], 3);
    }

    #[test]
    fn gather_collects_requested_rows() {
        let ds = toy_dataset(6, 2);
        let batch = ds.gather(&[4, 1]);
        assert_eq!(batch.labels, vec![0, 1]);
        assert_eq!(batch.images.shape(), &[2, 1, 2, 2]);
        assert_eq!(batch.indices, vec![4, 1]);
    }

    #[test]
    fn batches_cover_every_sample_exactly_once() {
        let ds = toy_dataset(23, 4);
        let mut rng = SeededRng::new(2);
        let batches = ds.batches(5, true, &mut rng);
        assert_eq!(batches.len(), 5);
        let mut seen: Vec<usize> = batches.iter().flat_map(|b| b.indices.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
        assert_eq!(batches.last().unwrap().labels.len(), 3);
    }

    #[test]
    fn unshuffled_batches_preserve_order() {
        let ds = toy_dataset(8, 2);
        let mut rng = SeededRng::new(3);
        let batches = ds.batches(4, false, &mut rng);
        assert_eq!(batches[0].indices, vec![0, 1, 2, 3]);
        assert_eq!(batches[1].indices, vec![4, 5, 6, 7]);
    }

    #[test]
    fn subset_and_split() {
        let ds = toy_dataset(10, 2);
        let sub = ds.subset(&[0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.num_classes(), 2);
        let (a, b) = ds.split_at(7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn full_batch_has_all_samples() {
        let ds = toy_dataset(5, 2);
        assert_eq!(ds.full_batch().labels.len(), 5);
    }

    #[test]
    fn batch_size_zero_panics() {
        let ds = toy_dataset(4, 2);
        let mut rng = SeededRng::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ds.batches(0, false, &mut rng)
        }));
        assert!(result.is_err());
    }
}
