//! Synthetic long-tail image synthesis.
//!
//! Each class is defined by a smooth low-frequency *prototype* image. "Easy"
//! samples are mild perturbations of the prototype (noise, brightness and
//! contrast jitter). "Hard" samples — the long tail the AppealNet predictor
//! must learn to detect — are produced by one of three corruptions:
//!
//! 1. heavy additive noise,
//! 2. occlusion of a large rectangular patch,
//! 3. blending with the prototype of a *different* class (the true class
//!    remains dominant, so a high-capacity model can still recover it).
//!
//! The ground-truth "hard" flag is stored in the dataset for analysis but is
//! never visible to the models.

use crate::dataset::Dataset;
use appeal_tensor::{SeededRng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of training samples.
    pub train_size: usize,
    /// Number of test samples.
    pub test_size: usize,
    /// Fraction of samples drawn from the hard long tail.
    pub hard_fraction: f32,
    /// Standard deviation of the additive noise on easy samples.
    pub noise_std: f32,
    /// Standard deviation of the additive noise on heavy-noise hard samples.
    pub hard_noise_std: f32,
    /// Fraction of the image area covered by an occlusion patch on occluded hard samples.
    pub occlusion_frac: f32,
    /// Blend weight of the distractor class on mixed hard samples (0 = no mixing).
    pub mix_alpha: f32,
    /// Size of the coarse grid from which class prototypes are upsampled.
    pub proto_grid: usize,
    /// Seed controlling prototypes and sample noise.
    pub seed: u64,
}

impl SynthSpec {
    /// Generates the train/test pair described by this specification.
    ///
    /// Prototypes are shared between the train and test splits (they describe
    /// the same underlying distribution); sample noise is independent.
    pub fn generate(&self) -> DatasetPair {
        let mut rng = SeededRng::new(self.seed);
        let prototypes = self.make_prototypes(&mut rng);
        let mut train_rng = rng.split();
        let mut test_rng = rng.split();
        let train = self.sample_split(self.train_size, &prototypes, &mut train_rng);
        let test = self.sample_split(self.test_size, &prototypes, &mut test_rng);
        DatasetPair { train, test }
    }

    /// Total number of pixels per image.
    pub fn pixels(&self) -> usize {
        self.channels * self.height * self.width
    }

    fn make_prototypes(&self, rng: &mut SeededRng) -> Vec<Vec<f32>> {
        (0..self.num_classes)
            .map(|_| self.smooth_pattern(rng))
            .collect()
    }

    /// A smooth pattern: coarse random grid, bilinearly upsampled per channel.
    fn smooth_pattern(&self, rng: &mut SeededRng) -> Vec<f32> {
        let g = self.proto_grid.max(2);
        let mut out = vec![0.0f32; self.pixels()];
        for c in 0..self.channels {
            let coarse: Vec<f32> = (0..g * g).map(|_| rng.normal(0.0, 1.0)).collect();
            for y in 0..self.height {
                for x in 0..self.width {
                    // Map pixel coordinates into coarse-grid coordinates.
                    let fy = y as f32 / (self.height - 1).max(1) as f32 * (g - 1) as f32;
                    let fx = x as f32 / (self.width - 1).max(1) as f32 * (g - 1) as f32;
                    let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
                    let (y1, x1) = ((y0 + 1).min(g - 1), (x0 + 1).min(g - 1));
                    let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                    let v = coarse[y0 * g + x0] * (1.0 - dy) * (1.0 - dx)
                        + coarse[y0 * g + x1] * (1.0 - dy) * dx
                        + coarse[y1 * g + x0] * dy * (1.0 - dx)
                        + coarse[y1 * g + x1] * dy * dx;
                    out[(c * self.height + y) * self.width + x] = v;
                }
            }
        }
        out
    }

    fn sample_split(&self, n: usize, prototypes: &[Vec<f32>], rng: &mut SeededRng) -> Dataset {
        let pixels = self.pixels();
        let mut data = Vec::with_capacity(n * pixels);
        let mut labels = Vec::with_capacity(n);
        let mut hard_flags = Vec::with_capacity(n);
        for _ in 0..n {
            let class = rng.below(self.num_classes);
            let hard = rng.bernoulli(self.hard_fraction);
            let image = self.sample_image(class, hard, prototypes, rng);
            data.extend_from_slice(&image);
            labels.push(class);
            hard_flags.push(hard);
        }
        let images = Tensor::from_vec(data, &[n, self.channels, self.height, self.width])
            .expect("synthesized data length matches shape");
        Dataset::new(images, labels, hard_flags, self.num_classes)
    }

    fn sample_image(
        &self,
        class: usize,
        hard: bool,
        prototypes: &[Vec<f32>],
        rng: &mut SeededRng,
    ) -> Vec<f32> {
        let pixels = self.pixels();
        let proto = &prototypes[class];
        let contrast = 1.0 + rng.normal(0.0, 0.1);
        let brightness = rng.normal(0.0, 0.1);
        let mut image: Vec<f32> = proto.iter().map(|&v| v * contrast + brightness).collect();

        if !hard {
            for v in image.iter_mut() {
                *v += rng.normal(0.0, self.noise_std);
            }
            return image;
        }

        // Hard long-tail sample: pick one of three corruption modes.
        match rng.below(3) {
            0 => {
                // Heavy noise.
                for v in image.iter_mut() {
                    *v += rng.normal(0.0, self.hard_noise_std);
                }
            }
            1 => {
                // Occlusion: overwrite a rectangle with noise.
                let area = (self.height * self.width) as f32 * self.occlusion_frac;
                let side = area.sqrt().round().max(1.0) as usize;
                let side_h = side.min(self.height);
                let side_w = side.min(self.width);
                let y0 = rng.below(self.height - side_h + 1);
                let x0 = rng.below(self.width - side_w + 1);
                for c in 0..self.channels {
                    for y in y0..y0 + side_h {
                        for x in x0..x0 + side_w {
                            image[(c * self.height + y) * self.width + x] = rng.normal(0.0, 1.0);
                        }
                    }
                }
                for v in image.iter_mut() {
                    *v += rng.normal(0.0, self.noise_std);
                }
            }
            _ => {
                // Class mixing: blend in a distractor prototype.
                let mut other = rng.below(self.num_classes);
                if self.num_classes > 1 {
                    while other == class {
                        other = rng.below(self.num_classes);
                    }
                }
                let alpha = self.mix_alpha;
                let distractor = &prototypes[other];
                for i in 0..pixels {
                    image[i] = (1.0 - alpha) * image[i] + alpha * distractor[i];
                    image[i] += rng.normal(0.0, self.noise_std);
                }
            }
        }
        image
    }
}

/// A train/test pair produced by [`SynthSpec::generate`].
#[derive(Debug, Clone)]
pub struct DatasetPair {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SynthSpec {
        SynthSpec {
            name: "tiny".to_string(),
            num_classes: 4,
            channels: 3,
            height: 8,
            width: 8,
            train_size: 200,
            test_size: 80,
            hard_fraction: 0.25,
            noise_std: 0.2,
            hard_noise_std: 1.0,
            occlusion_frac: 0.4,
            mix_alpha: 0.45,
            proto_grid: 4,
            seed: 7,
        }
    }

    #[test]
    fn generates_requested_sizes_and_shapes() {
        let pair = tiny_spec().generate();
        assert_eq!(pair.train.len(), 200);
        assert_eq!(pair.test.len(), 80);
        assert_eq!(pair.train.image_shape(), vec![3, 8, 8]);
        assert_eq!(pair.train.num_classes(), 4);
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let a = tiny_spec().generate();
        let b = tiny_spec().generate();
        assert_eq!(a.train.images().data(), b.train.images().data());
        assert_eq!(a.train.labels(), b.train.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_spec().generate();
        let mut spec = tiny_spec();
        spec.seed = 8;
        let b = spec.generate();
        assert_ne!(a.train.images().data(), b.train.images().data());
    }

    #[test]
    fn hard_fraction_is_roughly_respected() {
        let mut spec = tiny_spec();
        spec.train_size = 4000;
        let pair = spec.generate();
        assert!((pair.train.hard_fraction() - 0.25).abs() < 0.04);
    }

    #[test]
    fn every_class_is_represented() {
        let pair = tiny_spec().generate();
        let counts = pair.train.class_counts();
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn images_are_finite() {
        let pair = tiny_spec().generate();
        assert!(pair.train.images().all_finite());
        assert!(pair.test.images().all_finite());
    }

    #[test]
    fn prototypes_are_class_separable_for_a_nearest_prototype_classifier() {
        // Easy samples should sit closer to their own prototype than to other
        // prototypes most of the time — the basic sanity check that the task
        // is learnable.
        let spec = tiny_spec();
        let mut rng = SeededRng::new(spec.seed);
        let protos = spec.make_prototypes(&mut rng);
        let pair = spec.generate();
        let train = &pair.train;
        let pixels = spec.pixels();
        let mut correct = 0;
        let mut total = 0;
        for i in 0..train.len() {
            if train.hard_flags()[i] {
                continue;
            }
            let img = &train.images().data()[i * pixels..(i + 1) * pixels];
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (k, p) in protos.iter().enumerate() {
                let d: f32 = img.iter().zip(p.iter()).map(|(a, b)| (a - b).powi(2)).sum();
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            if best == train.labels()[i] {
                correct += 1;
            }
            total += 1;
        }
        let acc = correct as f32 / total as f32;
        assert!(
            acc > 0.9,
            "nearest-prototype accuracy on easy samples was {acc}"
        );
    }

    #[test]
    fn hard_samples_are_farther_from_their_prototype() {
        let spec = tiny_spec();
        let mut rng = SeededRng::new(spec.seed);
        let protos = spec.make_prototypes(&mut rng);
        let pair = spec.generate();
        let train = &pair.train;
        let pixels = spec.pixels();
        let mut easy_d = Vec::new();
        let mut hard_d = Vec::new();
        for i in 0..train.len() {
            let img = &train.images().data()[i * pixels..(i + 1) * pixels];
            let p = &protos[train.labels()[i]];
            let d: f32 = img.iter().zip(p.iter()).map(|(a, b)| (a - b).powi(2)).sum();
            if train.hard_flags()[i] {
                hard_d.push(d);
            } else {
                easy_d.push(d);
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&hard_d) > mean(&easy_d) * 1.3);
    }
}
