//! # appeal-dataset
//!
//! Synthetic long-tail image-classification datasets for the AppealNet
//! reproduction.
//!
//! The paper evaluates on GTSRB, CIFAR-10, CIFAR-100 and Tiny-ImageNet. Those
//! datasets are not available in this offline environment, so this crate
//! generates *synthetic* classification problems that preserve the property
//! AppealNet exploits: the bulk of the distribution is "easy" (a small model
//! classifies it correctly) while a long tail of "difficult" inputs — heavy
//! noise, occlusions, class mixtures — requires a larger model.
//!
//! Each named preset ([`presets::DatasetPreset`]) mirrors one of the paper's
//! datasets in class count and relative difficulty, at a reduced resolution
//! and sample count so the full experiment suite runs on a CPU in minutes.
//!
//! # Example
//!
//! ```
//! use appeal_dataset::prelude::*;
//!
//! let spec = DatasetPreset::Cifar10Like.spec(Fidelity::Smoke);
//! let pair = spec.generate();
//! assert_eq!(pair.train.num_classes(), 10);
//! assert!(pair.test.len() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod presets;
pub mod synth;

pub use dataset::{Batch, Dataset};
pub use presets::{DatasetPreset, Fidelity};
pub use synth::{DatasetPair, SynthSpec};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::dataset::{Batch, Dataset};
    pub use crate::presets::{DatasetPreset, Fidelity};
    pub use crate::synth::{DatasetPair, SynthSpec};
}
