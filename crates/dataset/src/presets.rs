//! Named dataset presets mirroring the paper's four benchmarks.

use crate::synth::SynthSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Experiment fidelity level.
///
/// `Smoke` keeps sample counts tiny so unit and integration tests run in
/// milliseconds; `Paper` is the scale used by the benchmark harness to
/// regenerate the paper's tables and figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Minimal sizes for fast tests.
    Smoke,
    /// Reduced-but-realistic sizes for the benchmark harness.
    Paper,
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fidelity::Smoke => write!(f, "smoke"),
            Fidelity::Paper => write!(f, "paper"),
        }
    }
}

/// The four dataset presets used in the paper's evaluation (Section VI-A),
/// reproduced synthetically.
///
/// | Preset | Stands in for | Classes | Relative difficulty |
/// |---|---|---|---|
/// | `GtsrbLike` | GTSRB | 43 | easiest (little/big gap ≈ 2%) |
/// | `Cifar10Like` | CIFAR-10 | 10 | easy (gap ≈ 1.5%) |
/// | `Cifar100Like` | CIFAR-100 | 100 | harder (gap ≈ 5%) |
/// | `TinyImageNetLike` | Tiny-ImageNet | 200 | hardest (gap ≈ 9%) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// 43-class traffic-sign-like task (GTSRB stand-in).
    GtsrbLike,
    /// 10-class natural-image-like task (CIFAR-10 stand-in).
    Cifar10Like,
    /// 100-class task (CIFAR-100 stand-in).
    Cifar100Like,
    /// 200-class higher-resolution task (Tiny-ImageNet stand-in).
    TinyImageNetLike,
}

impl DatasetPreset {
    /// All presets, in the order the paper reports them.
    pub fn all() -> [DatasetPreset; 4] {
        [
            DatasetPreset::GtsrbLike,
            DatasetPreset::Cifar10Like,
            DatasetPreset::Cifar100Like,
            DatasetPreset::TinyImageNetLike,
        ]
    }

    /// Short name used in tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::GtsrbLike => "gtsrb_like",
            DatasetPreset::Cifar10Like => "cifar10_like",
            DatasetPreset::Cifar100Like => "cifar100_like",
            DatasetPreset::TinyImageNetLike => "tiny_imagenet_like",
        }
    }

    /// Name of the dataset this preset stands in for, as used in the paper.
    pub fn paper_name(&self) -> &'static str {
        match self {
            DatasetPreset::GtsrbLike => "GTSRB",
            DatasetPreset::Cifar10Like => "CIFAR-10",
            DatasetPreset::Cifar100Like => "CIFAR-100",
            DatasetPreset::TinyImageNetLike => "Tiny-ImageNet",
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        match self {
            DatasetPreset::GtsrbLike => 43,
            DatasetPreset::Cifar10Like => 10,
            DatasetPreset::Cifar100Like => 100,
            DatasetPreset::TinyImageNetLike => 200,
        }
    }

    /// Builds the synthesis specification for this preset at a given fidelity.
    pub fn spec(&self, fidelity: Fidelity) -> SynthSpec {
        let classes = self.num_classes();
        // Difficulty parameters are tuned so the little/big accuracy gap
        // qualitatively follows the paper: GTSRB ≈ CIFAR-10 < CIFAR-100 < Tiny-ImageNet.
        let (hard_fraction, noise_std, hard_noise_std, height, width) = match self {
            DatasetPreset::GtsrbLike => (0.08, 0.35, 1.3, 12, 12),
            DatasetPreset::Cifar10Like => (0.12, 0.40, 1.4, 12, 12),
            DatasetPreset::Cifar100Like => (0.28, 0.50, 1.6, 12, 12),
            DatasetPreset::TinyImageNetLike => (0.36, 0.55, 1.8, 16, 16),
        };
        let (train_size, test_size) = match fidelity {
            Fidelity::Smoke => (classes * 6, classes * 3),
            Fidelity::Paper => match self {
                DatasetPreset::GtsrbLike => (1600, 800),
                DatasetPreset::Cifar10Like => (1600, 800),
                DatasetPreset::Cifar100Like => (2000, 900),
                DatasetPreset::TinyImageNetLike => (2200, 1000),
            },
        };
        SynthSpec {
            name: self.name().to_string(),
            num_classes: classes,
            channels: 3,
            height,
            width,
            train_size,
            test_size,
            hard_fraction,
            noise_std,
            hard_noise_std,
            occlusion_frac: 0.4,
            mix_alpha: 0.45,
            proto_grid: 4,
            seed: 0xA99E ^ ((*self as u64 + 1) * 7919),
        }
    }
}

impl fmt::Display for DatasetPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_class_counts() {
        assert_eq!(DatasetPreset::GtsrbLike.num_classes(), 43);
        assert_eq!(DatasetPreset::Cifar10Like.num_classes(), 10);
        assert_eq!(DatasetPreset::Cifar100Like.num_classes(), 100);
        assert_eq!(DatasetPreset::TinyImageNetLike.num_classes(), 200);
    }

    #[test]
    fn specs_are_internally_consistent() {
        for preset in DatasetPreset::all() {
            for fidelity in [Fidelity::Smoke, Fidelity::Paper] {
                let spec = preset.spec(fidelity);
                assert_eq!(spec.num_classes, preset.num_classes());
                assert!(spec.train_size > 0 && spec.test_size > 0);
                assert!(spec.hard_fraction > 0.0 && spec.hard_fraction < 1.0);
            }
        }
    }

    #[test]
    fn smoke_is_smaller_than_paper() {
        for preset in DatasetPreset::all() {
            assert!(
                preset.spec(Fidelity::Smoke).train_size < preset.spec(Fidelity::Paper).train_size
            );
        }
    }

    #[test]
    fn difficulty_ordering_follows_paper() {
        let hf = |p: DatasetPreset| p.spec(Fidelity::Paper).hard_fraction;
        assert!(hf(DatasetPreset::GtsrbLike) <= hf(DatasetPreset::Cifar10Like));
        assert!(hf(DatasetPreset::Cifar10Like) < hf(DatasetPreset::Cifar100Like));
        assert!(hf(DatasetPreset::Cifar100Like) < hf(DatasetPreset::TinyImageNetLike));
    }

    #[test]
    fn smoke_generation_runs_quickly_and_correctly() {
        let pair = DatasetPreset::Cifar10Like.spec(Fidelity::Smoke).generate();
        assert_eq!(pair.train.num_classes(), 10);
        assert_eq!(pair.train.len(), 60);
        assert_eq!(pair.test.len(), 30);
    }

    #[test]
    fn seeds_differ_across_presets() {
        let seeds: Vec<u64> = DatasetPreset::all()
            .iter()
            .map(|p| p.spec(Fidelity::Paper).seed)
            .collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn display_and_names() {
        assert_eq!(DatasetPreset::Cifar10Like.to_string(), "cifar10_like");
        assert_eq!(DatasetPreset::Cifar10Like.paper_name(), "CIFAR-10");
        assert_eq!(Fidelity::Smoke.to_string(), "smoke");
    }
}
