//! Fully-connected (dense) layer.

use crate::init::Init;
use crate::layer::{Layer, Param};
use crate::rng::SeededRng;
use crate::tensor::Tensor;

/// A fully-connected layer: `y = x W + b` with `W: [in, out]`, `b: [out]`.
///
/// # Example
///
/// ```
/// use appeal_tensor::prelude::*;
///
/// let mut rng = SeededRng::new(0);
/// let mut layer = Dense::new(8, 4, &mut rng);
/// let x = Tensor::randn(&[2, 8], &mut rng);
/// let y = layer.forward(&x, true);
/// assert_eq!(y.shape(), &[2, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Self {
        Self::with_init(in_features, out_features, Init::KaimingNormal, rng)
    }

    /// Creates a dense layer with a specific weight initializer.
    pub fn with_init(
        in_features: usize,
        out_features: usize,
        init: Init,
        rng: &mut SeededRng,
    ) -> Self {
        let weight = init.build(&[in_features, out_features], in_features, out_features, rng);
        Self {
            weight: Param::new("dense.weight", weight),
            bias: Param::new("dense.bias", Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight parameter (for inspection in tests).
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Dense {
    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 2, "Dense expects [batch, features] input");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Dense input feature mismatch"
        );
        if train {
            self.cached_input = Some(input.clone());
        } else {
            self.cached_input = None;
        }
        // Fused GEMM + bias: bit-identical to matmul + add_row_broadcast
        // (the bias joins after each element's full K accumulation) without
        // the intermediate tensor.
        input.matmul_bias(&self.weight.value, &self.bias.value)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = x^T · dy, db = sum over batch of dy, dx = dy · W^T
        let grad_w = input.transpose().matmul(grad_output);
        let grad_b = grad_output.sum_rows();
        self.weight.grad.add_scaled_inplace(&grad_w, 1.0);
        self.bias.grad.add_scaled_inplace(&grad_b, 1.0);
        grad_output.matmul(&self.weight.value.transpose())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.out_features]
    }

    fn flops(&self, _input_shape: &[usize]) -> u64 {
        // One MAC = 2 FLOPs, plus the bias add.
        (2 * self.in_features * self.out_features + self.out_features) as u64
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::with_init(3, 2, Init::Zeros, &mut rng);
        layer.bias.value = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let x = Tensor::ones(&[4, 3]);
        let y = layer.forward(&x, true);
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(y.row(0).data(), &[1.0, -1.0]);
    }

    #[test]
    fn param_count() {
        let mut rng = SeededRng::new(2);
        let mut layer = Dense::new(5, 7, &mut rng);
        assert_eq!(layer.param_count(), 5 * 7 + 7);
    }

    #[test]
    fn flops_formula() {
        let mut rng = SeededRng::new(3);
        let layer = Dense::new(10, 4, &mut rng);
        assert_eq!(layer.flops(&[10]), 2 * 10 * 4 + 4);
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = SeededRng::new(4);
        let layer = Dense::new(4, 3, &mut rng);
        check_layer_gradients(Box::new(layer), &[2, 4], 1e-2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn eval_forward_does_not_cache_input() {
        let mut rng = SeededRng::new(6);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let _ = layer.forward(&x, false);
        let _ = layer.backward(&Tensor::ones(&[2, 3]));
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn rejects_wrong_input_width() {
        let mut rng = SeededRng::new(5);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::zeros(&[2, 5]);
        let _ = layer.forward(&x, true);
    }
}
