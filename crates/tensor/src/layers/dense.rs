//! Fully-connected (dense) layer.

use crate::init::Init;
use crate::kernels::{quant_gemm_into, with_thread_scratch};
use crate::layer::{Layer, Param};
use crate::quant::{q8_block_scale, QuantLayerReport, QuantMatrix};
use crate::rng::SeededRng;
use crate::tensor::Tensor;

/// Quantized-tier state for a [`Dense`] layer: the Q8_0 weight matrix plus
/// activation-scale calibration state. Present only after
/// [`Layer::quantize_weights`]; eval forwards then run the int8 GEMM while
/// training keeps using the f32 weights.
#[derive(Debug, Clone)]
struct QuantDense {
    weight: QuantMatrix,
    /// Static power-of-two activation scale frozen by calibration; `None`
    /// selects dynamic per-row absmax quantization.
    act_scale: Option<f32>,
    observed_absmax: f32,
    observing: bool,
}

/// A fully-connected layer: `y = x W + b` with `W: [in, out]`, `b: [out]`.
///
/// # Example
///
/// ```
/// use appeal_tensor::prelude::*;
///
/// let mut rng = SeededRng::new(0);
/// let mut layer = Dense::new(8, 4, &mut rng);
/// let x = Tensor::randn(&[2, 8], &mut rng);
/// let y = layer.forward(&x, true);
/// assert_eq!(y.shape(), &[2, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
    quant: Option<QuantDense>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Self {
        Self::with_init(in_features, out_features, Init::KaimingNormal, rng)
    }

    /// Creates a dense layer with a specific weight initializer.
    pub fn with_init(
        in_features: usize,
        out_features: usize,
        init: Init,
        rng: &mut SeededRng,
    ) -> Self {
        let weight = init.build(&[in_features, out_features], in_features, out_features, rng);
        Self {
            weight: Param::new("dense.weight", weight),
            bias: Param::new("dense.bias", Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
            quant: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight parameter (for inspection in tests).
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Dense {
    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 2, "Dense expects [batch, features] input");
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Dense input feature mismatch"
        );
        if train {
            self.cached_input = Some(input.clone());
        } else {
            self.cached_input = None;
            if let Some(q) = self.quant.as_mut() {
                if q.observing {
                    q.observed_absmax = input
                        .data()
                        .iter()
                        .fold(q.observed_absmax, |acc, &x| acc.max(x.abs()));
                }
                let m = input.shape()[0];
                let mut out = Tensor::zeros(&[m, self.out_features]);
                with_thread_scratch(|s| {
                    quant_gemm_into(
                        m,
                        self.in_features,
                        self.out_features,
                        input.data(),
                        &q.weight,
                        Some(self.bias.value.data()),
                        q.act_scale,
                        out.data_mut(),
                        &mut s.quant,
                    );
                });
                return out;
            }
        }
        // Fused GEMM + bias: bit-identical to matmul + add_row_broadcast
        // (the bias joins after each element's full K accumulation) without
        // the intermediate tensor.
        input.matmul_bias(&self.weight.value, &self.bias.value)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = x^T · dy, db = sum over batch of dy, dx = dy · W^T
        let grad_w = input.transpose().matmul(grad_output);
        let grad_b = grad_output.sum_rows();
        self.weight.grad.add_scaled_inplace(&grad_w, 1.0);
        self.bias.grad.add_scaled_inplace(&grad_b, 1.0);
        grad_output.matmul(&self.weight.value.transpose())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_shape(&self, _input_shape: &[usize]) -> Vec<usize> {
        vec![self.out_features]
    }

    fn flops(&self, _input_shape: &[usize]) -> u64 {
        // One MAC = 2 FLOPs, plus the bias add.
        (2 * self.in_features * self.out_features + self.out_features) as u64
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn quantize_weights(&mut self) -> Vec<QuantLayerReport> {
        let w = self.weight.value.data();
        let (k, n) = (self.in_features, self.out_features);
        // Gather columns into the from_rows layout so the round-trip report
        // can compare against the exact blocks that were quantized.
        let mut gathered = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                gathered[j * k + p] = w[p * n + j];
            }
        }
        let qm = QuantMatrix::from_rows(&gathered, n, k);
        let report = qm.report_against_rows(self.name(), &gathered);
        self.quant = Some(QuantDense {
            weight: qm,
            act_scale: None,
            observed_absmax: 0.0,
            observing: false,
        });
        vec![report]
    }

    fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    fn begin_calibration(&mut self) {
        if let Some(q) = self.quant.as_mut() {
            q.observing = true;
            q.observed_absmax = 0.0;
            q.act_scale = None;
        }
    }

    fn end_calibration(&mut self) {
        if let Some(q) = self.quant.as_mut() {
            if q.observing && q.observed_absmax > 0.0 {
                q.act_scale = Some(q8_block_scale(q.observed_absmax));
            }
            q.observing = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::with_init(3, 2, Init::Zeros, &mut rng);
        layer.bias.value = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let x = Tensor::ones(&[4, 3]);
        let y = layer.forward(&x, true);
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(y.row(0).data(), &[1.0, -1.0]);
    }

    #[test]
    fn param_count() {
        let mut rng = SeededRng::new(2);
        let mut layer = Dense::new(5, 7, &mut rng);
        assert_eq!(layer.param_count(), 5 * 7 + 7);
    }

    #[test]
    fn flops_formula() {
        let mut rng = SeededRng::new(3);
        let layer = Dense::new(10, 4, &mut rng);
        assert_eq!(layer.flops(&[10]), 2 * 10 * 4 + 4);
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = SeededRng::new(4);
        let layer = Dense::new(4, 3, &mut rng);
        check_layer_gradients(Box::new(layer), &[2, 4], 1e-2, &mut rng);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn eval_forward_does_not_cache_input() {
        let mut rng = SeededRng::new(6);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let _ = layer.forward(&x, false);
        let _ = layer.backward(&Tensor::ones(&[2, 3]));
    }

    #[test]
    fn quantized_eval_forward_matches_kernel_and_tracks_f32() {
        let mut rng = SeededRng::new(7);
        let mut layer = Dense::new(64, 16, &mut rng);
        let x = Tensor::randn(&[8, 64], &mut rng);
        let f32_out = layer.forward(&x, false);
        let reports = layer.quantize_weights();
        assert!(layer.is_quantized());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].layer, "Dense");
        assert_eq!(reports[0].params, 64 * 16);
        assert!(reports[0].within_bound(), "weight round-trip broke bound");
        let q_out = layer.forward(&x, false);
        assert_eq!(q_out.shape(), f32_out.shape());
        // Plumbing is exact: the layer's quantized forward is the raw kernel
        // on QuantMatrix::from_b of its weights, bit for bit.
        let qm = QuantMatrix::from_b(layer.weight.value.data(), 64, 16);
        let mut want = vec![0.0f32; 8 * 16];
        let mut scratch = crate::kernels::QuantScratch::new();
        quant_gemm_into(
            8,
            64,
            16,
            x.data(),
            &qm,
            Some(layer.bias.value.data()),
            None,
            &mut want,
            &mut scratch,
        );
        for (a, b) in q_out.data().iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And close to the f32 output on unit-scale data.
        for (a, b) in q_out.data().iter().zip(f32_out.data()) {
            assert!((a - b).abs() < 0.2, "quantized {a} too far from f32 {b}");
        }
    }

    #[test]
    fn calibration_freezes_a_static_scale() {
        let mut rng = SeededRng::new(8);
        let mut layer = Dense::new(32, 4, &mut rng);
        let x = Tensor::randn(&[4, 32], &mut rng);
        layer.quantize_weights();
        layer.begin_calibration();
        let _ = layer.forward(&x, false);
        layer.end_calibration();
        let absmax = x.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let s = q8_block_scale(absmax);
        assert_eq!(layer.quant.as_ref().unwrap().act_scale, Some(s));
        // The calibrated forward is the kernel with that static scale.
        let calibrated = layer.forward(&x, false);
        let qm = QuantMatrix::from_b(layer.weight.value.data(), 32, 4);
        let mut want = vec![0.0f32; 4 * 4];
        let mut scratch = crate::kernels::QuantScratch::new();
        quant_gemm_into(
            4,
            32,
            4,
            x.data(),
            &qm,
            Some(layer.bias.value.data()),
            Some(s),
            &mut want,
            &mut scratch,
        );
        for (a, b) in calibrated.data().iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn training_forward_ignores_quantization() {
        let mut rng = SeededRng::new(9);
        let mut layer = Dense::new(16, 8, &mut rng);
        let x = Tensor::randn(&[2, 16], &mut rng);
        let before = layer.forward(&x, true);
        layer.quantize_weights();
        let after = layer.forward(&x, true);
        for (a, b) in before.data().iter().zip(after.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn rejects_wrong_input_width() {
        let mut rng = SeededRng::new(5);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::zeros(&[2, 5]);
        let _ = layer.forward(&x, true);
    }
}
