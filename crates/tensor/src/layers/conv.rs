//! 2-D convolution layers (standard and depthwise), NCHW layout.
//!
//! Both layers are lowered onto the blocked GEMM in [`crate::kernels`]:
//! forward is `weight x im2col(x)` with the bias seeding the accumulators,
//! the weight gradient is `grad_out x im2col(x)^T`, and the input gradient is
//! `weight^T x grad_out` scattered back through `col2im`. The im2col column
//! order matches the original 7-deep loop's `ic -> ky -> kx` tap order, so
//! forward outputs and weight/bias gradients follow the build's numeric
//! contract against the naive kernels — bit-identical on the default build,
//! tolerance-bounded under `fast-kernels` (pinned by the equivalence tests
//! below against [`crate::kernels::naive`] through
//! [`crate::kernels::tolerance`]); the input gradient is numerically
//! equivalent (GEMM sums output channels before scattering) and covered by
//! gradcheck.
//!
//! Both layers draw their im2col and GEMM-packing buffers from the current
//! thread's [`kernels::with_thread_scratch`] arena, so steady-state
//! inference reuses warmed high-water buffers instead of allocating — on the
//! calling thread and on the persistent rayon pool workers alike (model
//! replicas carry no scratch of their own). The input is only cached for
//! backward when `train == true`.

use crate::init::Init;
use crate::kernels::{self, GemmInit};
use crate::layer::{Layer, Param};
use crate::quant::{q8_block_scale, QuantLayerReport, QuantMatrix};
use crate::rng::SeededRng;
use crate::tensor::Tensor;

/// Quantized-tier state for a [`Conv2d`]: the Q8_0 weight matrix (one
/// reduction row of length `in_c*k*k` per output channel — exactly the f32
/// weight layout) plus activation-calibration state. [`DepthwiseConv2d`]
/// deliberately has no quantized tier: its per-channel `k*k` reductions are
/// too short for int8 blocking to pay off, and its f32 path already runs on
/// the small-problem GEMM.
#[derive(Debug, Clone)]
struct QuantConv {
    weight: QuantMatrix,
    act_scale: Option<f32>,
    observed_absmax: f32,
    observing: bool,
}

fn conv_output_hw(
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> (usize, usize) {
    let oh = (h + 2 * padding - kernel) / stride + 1;
    let ow = (w + 2 * padding - kernel) / stride + 1;
    (oh, ow)
}

/// Standard 2-D convolution over NCHW tensors.
///
/// Weights have shape `[out_channels, in_channels, k, k]`; biases `[out_channels]`.
///
/// # Example
///
/// ```
/// use appeal_tensor::prelude::*;
///
/// let mut rng = SeededRng::new(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
/// let y = conv.forward(&x, true);
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
    quant: Option<QuantConv>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weight = Init::KaimingNormal.build(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            fan_out,
            rng,
        );
        Self {
            weight: Param::new("conv.weight", weight),
            bias: Param::new("conv.bias", Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
            quant: None,
        }
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// `true` when the convolution is a pointwise (1x1, stride 1, no padding)
    /// one, whose im2col matrix is the input itself.
    fn is_pointwise(&self) -> bool {
        self.kernel == 1 && self.stride == 1 && self.padding == 0
    }

    fn check_input(&self, input: &Tensor) {
        assert_eq!(input.rank(), 4, "Conv2d expects NCHW input");
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "Conv2d channel mismatch"
        );
    }
}

impl Layer for Conv2d {
    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.check_input(input);
        if train {
            self.cached_input = Some(input.clone());
        } else {
            self.cached_input = None;
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let (oh, ow) = conv_output_hw(h, w, k, self.stride, self.padding);
        let (s, ckk) = (oh * ow, c * k * k);
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let oc = self.out_channels;
        let x = input.data();
        let wgt = self.weight.value.data();
        let bias = self.bias.value.data();
        let odata = out.data_mut();
        let pointwise = self.is_pointwise();
        if !train {
            if let Some(q) = self.quant.as_mut() {
                if q.observing {
                    q.observed_absmax = x.iter().fold(q.observed_absmax, |m, &v| m.max(v.abs()));
                }
                // Quantized eval path: the GEMM runs transposed —
                // `cols^T [s, ckk] x W` with one activation scale per
                // spatial position (each output pixel's receptive field),
                // the weight rows being the Q8_0 output-channel filters.
                // The [s, oc] result transposes back into the NCHW output.
                let act_scale = q.act_scale;
                let qw = &q.weight;
                kernels::with_thread_scratch(|scratch| {
                    for b in 0..n {
                        let xb = &x[b * c * h * w..(b + 1) * c * h * w];
                        let ob = &mut odata[b * oc * s..(b + 1) * oc * s];
                        let cols: &[f32] = if pointwise {
                            xb
                        } else {
                            let cols = scratch.cols.take(ckk * s);
                            kernels::im2col(
                                xb,
                                c,
                                h,
                                w,
                                k,
                                self.stride,
                                self.padding,
                                oh,
                                ow,
                                cols,
                            );
                            cols
                        };
                        let cols_t = scratch.cols_t.take(s * ckk);
                        kernels::transpose_into(cols, ckk, s, cols_t);
                        let out_t = scratch.quant.out_t.take(s * oc);
                        kernels::quant_gemm::quant_gemm_into_qa(
                            s,
                            ckk,
                            oc,
                            cols_t,
                            qw,
                            Some(bias),
                            act_scale,
                            out_t,
                            &mut scratch.quant.qa,
                        );
                        kernels::transpose_into(out_t, s, oc, ob);
                    }
                });
                return out;
            }
        }
        kernels::with_thread_scratch(|scratch| {
            for b in 0..n {
                let xb = &x[b * c * h * w..(b + 1) * c * h * w];
                let ob = &mut odata[b * oc * s..(b + 1) * oc * s];
                let cols: &[f32] = if pointwise {
                    xb
                } else {
                    let cols = scratch.cols.take(ckk * s);
                    kernels::im2col(xb, c, h, w, k, self.stride, self.padding, oh, ow, cols);
                    cols
                };
                kernels::gemm_into(
                    oc,
                    ckk,
                    s,
                    wgt,
                    cols,
                    GemmInit::RowBias(bias),
                    ob,
                    &mut scratch.packs,
                );
            }
        });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let oc = self.out_channels;
        let (oh, ow) = conv_output_hw(h, w, k, self.stride, self.padding);
        assert_eq!(
            grad_output.shape(),
            &[n, oc, oh, ow],
            "Conv2d backward shape mismatch"
        );
        let (s, ckk) = (oh * ow, c * k * k);
        let pointwise = self.is_pointwise();
        let mut grad_input = Tensor::zeros(input.shape());
        let x = input.data();
        let wgt = self.weight.value.data();
        let go = grad_output.data();
        let gw = self.weight.grad.data_mut();
        let gb = self.bias.grad.data_mut();
        let gi = grad_input.data_mut();
        kernels::with_thread_scratch(|scratch| {
            // W^T, shared by every image's input-gradient GEMM.
            let wt = scratch.weight_t.take(ckk * oc);
            kernels::transpose_into(wgt, oc, ckk, wt);
            for b in 0..n {
                let xb = &x[b * c * h * w..(b + 1) * c * h * w];
                let gob = &go[b * oc * s..(b + 1) * oc * s];
                let gib = &mut gi[b * c * h * w..(b + 1) * c * h * w];
                // Bias gradient: per output channel, sum over spatial positions
                // (batch-major accumulation, same order as the naive loop).
                for (o, gbo) in gb.iter_mut().enumerate() {
                    let mut acc = *gbo;
                    for &g in &gob[o * s..(o + 1) * s] {
                        acc += g;
                    }
                    *gbo = acc;
                }
                // Weight gradient: gw += grad_out [oc, s] x im2col(x)^T [s, ckk].
                // The explicit transpose (rather than a B-transposed GEMM
                // variant) is deliberate: with B transposed the reduction walks
                // both operands along `p`, a strict-FP serial dot product the
                // vectorizer cannot reassociate, so it runs scalar — slower than
                // transpose + the vectorized kernel.
                let cols_t = scratch.cols_t.take(s * ckk);
                if pointwise {
                    kernels::transpose_into(xb, ckk, s, cols_t);
                } else {
                    let cols = scratch.cols.take(ckk * s);
                    kernels::im2col(xb, c, h, w, k, self.stride, self.padding, oh, ow, cols);
                    kernels::transpose_into(cols, ckk, s, cols_t);
                }
                kernels::gemm_into(
                    oc,
                    s,
                    ckk,
                    gob,
                    cols_t,
                    GemmInit::Accumulate,
                    gw,
                    &mut scratch.packs,
                );
                // Input gradient: cols_grad = W^T [ckk, oc] x grad_out [oc, s],
                // scattered back through col2im (identity for pointwise convs).
                if pointwise {
                    kernels::gemm_into(
                        ckk,
                        oc,
                        s,
                        wt,
                        gob,
                        GemmInit::Zero,
                        gib,
                        &mut scratch.packs,
                    );
                } else {
                    let gcols = scratch.grad_cols.take(ckk * s);
                    kernels::gemm_into(
                        ckk,
                        oc,
                        s,
                        wt,
                        gob,
                        GemmInit::Zero,
                        gcols,
                        &mut scratch.packs,
                    );
                    kernels::col2im(gcols, c, h, w, k, self.stride, self.padding, oh, ow, gib);
                }
            }
        });
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (h, w) = (input_shape[1], input_shape[2]);
        let (oh, ow) = conv_output_hw(h, w, self.kernel, self.stride, self.padding);
        vec![self.out_channels, oh, ow]
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        let (h, w) = (input_shape[1], input_shape[2]);
        let (oh, ow) = conv_output_hw(h, w, self.kernel, self.stride, self.padding);
        // 2 FLOPs per MAC, over out_c * oh * ow output positions each summing
        // in_c * k * k products, plus the bias add.
        let macs = self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel;
        (2 * macs + self.out_channels * oh * ow) as u64
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn quantize_weights(&mut self) -> Vec<QuantLayerReport> {
        // The f32 weight [oc, c, k, k] is already row-major [oc, c*k*k] —
        // exactly the reduction-row layout the quantized GEMM wants.
        let w = self.weight.value.data();
        let ckk = self.in_channels * self.kernel * self.kernel;
        let qm = QuantMatrix::from_rows(w, self.out_channels, ckk);
        let report = qm.report_against_rows(self.name(), w);
        self.quant = Some(QuantConv {
            weight: qm,
            act_scale: None,
            observed_absmax: 0.0,
            observing: false,
        });
        vec![report]
    }

    fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    fn begin_calibration(&mut self) {
        if let Some(q) = self.quant.as_mut() {
            q.observing = true;
            q.observed_absmax = 0.0;
            q.act_scale = None;
        }
    }

    fn end_calibration(&mut self) {
        if let Some(q) = self.quant.as_mut() {
            if q.observing && q.observed_absmax > 0.0 {
                // Padding contributes only zeros to the im2col rows, so the
                // input absmax is the receptive-field absmax.
                q.act_scale = Some(q8_block_scale(q.observed_absmax));
            }
            q.observing = false;
        }
    }
}

/// Depthwise 2-D convolution: each input channel is convolved with its own
/// single-channel kernel (the building block of MobileNet-style models).
/// Has no quantized tier (see [`Layer::quantize_weights`]): its per-channel
/// `k*k` reductions are shorter than one Q8_0 block, so it stays f32 even in
/// a quantized model — the containers' reports simply skip it.
#[derive(Debug, Clone)]
pub struct DepthwiseConv2d {
    weight: Param,
    bias: Param,
    channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution with Kaiming-normal weights.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        let fan_in = kernel * kernel;
        let weight = Init::KaimingNormal.build(&[channels, kernel, kernel], fan_in, fan_in, rng);
        Self {
            weight: Param::new("dwconv.weight", weight),
            bias: Param::new("dwconv.bias", Tensor::zeros(&[channels])),
            channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }
}

impl Layer for DepthwiseConv2d {
    fn clear_cache(&mut self) {
        self.cached_input = None;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "DepthwiseConv2d expects NCHW input");
        assert_eq!(input.shape()[1], self.channels, "channel mismatch");
        if train {
            self.cached_input = Some(input.clone());
        } else {
            self.cached_input = None;
        }
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let (oh, ow) = conv_output_hw(h, w, k, self.stride, self.padding);
        let (s, kk) = (oh * ow, k * k);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let x = input.data();
        let wgt = self.weight.value.data();
        let bias = self.bias.value.data();
        let odata = out.data_mut();
        // Each channel is an independent [1, k*k] x [k*k, s] GEMM, which the
        // kernel layer runs on its small-problem path (plain row-accumulate).
        kernels::with_thread_scratch(|scratch| {
            for b in 0..n {
                for ch in 0..c {
                    let xc = &x[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                    let ochan = &mut odata[(b * c + ch) * s..(b * c + ch + 1) * s];
                    let cols = scratch.cols.take(kk * s);
                    kernels::im2col(xc, 1, h, w, k, self.stride, self.padding, oh, ow, cols);
                    kernels::gemm_into(
                        1,
                        kk,
                        s,
                        &wgt[ch * kk..(ch + 1) * kk],
                        cols,
                        GemmInit::RowBias(&bias[ch..ch + 1]),
                        ochan,
                        &mut scratch.packs,
                    );
                }
            }
        });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let k = self.kernel;
        let (oh, ow) = conv_output_hw(h, w, k, self.stride, self.padding);
        let (s, kk) = (oh * ow, k * k);
        let mut grad_input = Tensor::zeros(input.shape());
        let x = input.data();
        let wgt = self.weight.value.data();
        let go = grad_output.data();
        let gw = self.weight.grad.data_mut();
        let gb = self.bias.grad.data_mut();
        let gi = grad_input.data_mut();
        kernels::with_thread_scratch(|scratch| {
            for b in 0..n {
                for ch in 0..c {
                    let xc = &x[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                    let goc = &go[(b * c + ch) * s..(b * c + ch + 1) * s];
                    let gic = &mut gi[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                    // Bias gradient: spatial sum, batch-major like the naive loop.
                    let mut acc = gb[ch];
                    for &g in goc {
                        acc += g;
                    }
                    gb[ch] = acc;
                    // Weight gradient: gw[ch] += grad_out [1, s] x im2col(x)^T.
                    let cols = scratch.cols.take(kk * s);
                    kernels::im2col(xc, 1, h, w, k, self.stride, self.padding, oh, ow, cols);
                    let cols_t = scratch.cols_t.take(s * kk);
                    kernels::transpose_into(cols, kk, s, cols_t);
                    kernels::gemm_into(
                        1,
                        s,
                        kk,
                        goc,
                        cols_t,
                        GemmInit::Accumulate,
                        &mut gw[ch * kk..(ch + 1) * kk],
                        &mut scratch.packs,
                    );
                    // Input gradient: outer product w[ch]^T [kk, 1] x grad_out
                    // [1, s], scattered back through col2im.
                    let gcols = scratch.grad_cols.take(kk * s);
                    kernels::gemm_into(
                        kk,
                        1,
                        s,
                        &wgt[ch * kk..(ch + 1) * kk],
                        goc,
                        GemmInit::Zero,
                        gcols,
                        &mut scratch.packs,
                    );
                    kernels::col2im(gcols, 1, h, w, k, self.stride, self.padding, oh, ow, gic);
                }
            }
        });
        grad_input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (h, w) = (input_shape[1], input_shape[2]);
        let (oh, ow) = conv_output_hw(h, w, self.kernel, self.stride, self.padding);
        vec![self.channels, oh, ow]
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        let (h, w) = (input_shape[1], input_shape[2]);
        let (oh, ow) = conv_output_hw(h, w, self.kernel, self.stride, self.padding);
        let macs = self.channels * oh * ow * self.kernel * self.kernel;
        (2 * macs + self.channels * oh * ow) as u64
    }

    fn name(&self) -> &'static str {
        "DepthwiseConv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn output_hw_formula() {
        assert_eq!(conv_output_hw(8, 8, 3, 1, 1), (8, 8));
        assert_eq!(conv_output_hw(8, 8, 3, 2, 1), (4, 4));
        assert_eq!(conv_output_hw(7, 7, 3, 1, 0), (5, 5));
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::ones(&[1, 1, 1, 1]);
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        let y = conv.forward(&x, true);
        assert!(y.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn conv_known_values() {
        // 2x2 input, 2x2 kernel of ones, no padding: output = sum of inputs.
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng);
        conv.weight.value = Tensor::ones(&[1, 1, 2, 2]);
        conv.bias.value = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 10.5);
    }

    #[test]
    fn conv_stride_and_padding_shapes() {
        let mut rng = SeededRng::new(1);
        let mut conv = Conv2d::new(3, 6, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], &mut rng);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 6, 8, 8]);
        assert_eq!(conv.output_shape(&[3, 16, 16]), vec![6, 8, 8]);
    }

    #[test]
    fn conv_gradcheck() {
        let mut rng = SeededRng::new(2);
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        check_layer_gradients(Box::new(conv), &[2, 2, 5, 5], 2e-2, &mut rng);
    }

    #[test]
    fn conv_gradcheck_strided() {
        let mut rng = SeededRng::new(3);
        let conv = Conv2d::new(2, 2, 3, 2, 1, &mut rng);
        check_layer_gradients(Box::new(conv), &[1, 2, 6, 6], 2e-2, &mut rng);
    }

    #[test]
    fn conv_gradcheck_pointwise() {
        // The 1x1 fast path skips im2col/col2im entirely; check it too.
        let mut rng = SeededRng::new(21);
        let conv = Conv2d::new(3, 2, 1, 1, 0, &mut rng);
        check_layer_gradients(Box::new(conv), &[2, 3, 4, 4], 2e-2, &mut rng);
    }

    #[test]
    fn depthwise_preserves_channels() {
        let mut rng = SeededRng::new(4);
        let mut dw = DepthwiseConv2d::new(5, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 5, 8, 8], &mut rng);
        let y = dw.forward(&x, true);
        assert_eq!(y.shape(), &[2, 5, 8, 8]);
    }

    #[test]
    fn depthwise_gradcheck() {
        let mut rng = SeededRng::new(5);
        let dw = DepthwiseConv2d::new(3, 3, 1, 1, &mut rng);
        check_layer_gradients(Box::new(dw), &[2, 3, 5, 5], 2e-2, &mut rng);
    }

    #[test]
    fn depthwise_gradcheck_strided() {
        let mut rng = SeededRng::new(15);
        let dw = DepthwiseConv2d::new(2, 3, 2, 1, &mut rng);
        check_layer_gradients(Box::new(dw), &[1, 2, 6, 6], 2e-2, &mut rng);
    }

    #[test]
    fn depthwise_flops_less_than_full_conv() {
        let mut rng = SeededRng::new(6);
        let conv = Conv2d::new(16, 16, 3, 1, 1, &mut rng);
        let dw = DepthwiseConv2d::new(16, 3, 1, 1, &mut rng);
        assert!(dw.flops(&[16, 8, 8]) < conv.flops(&[16, 8, 8]) / 8);
    }

    #[test]
    fn quantized_conv_eval_matches_direct_kernel_and_tracks_f32() {
        let mut rng = SeededRng::new(0x0A11);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        conv.bias.value = Tensor::randn(&[8], &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let f32_out = conv.forward(&x, false);
        let reports = conv.quantize_weights();
        assert!(conv.is_quantized());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].layer, "Conv2d");
        assert!(reports[0].within_bound());
        let q_out = conv.forward(&x, false);
        assert_eq!(q_out.shape(), f32_out.shape());
        // Plumbing is exact: the layer is im2col -> transpose -> quantized
        // GEMM -> transpose, bit for bit.
        let (s, ckk) = (64usize, 27usize);
        let qm = QuantMatrix::from_rows(conv.weight.value.data(), 8, ckk);
        let mut cols = vec![0.0f32; ckk * s];
        let mut cols_t = vec![0.0f32; s * ckk];
        let mut out_t = vec![0.0f32; s * 8];
        let mut expect = vec![0.0f32; 2 * 8 * s];
        let mut scratch = kernels::QuantScratch::new();
        for b in 0..2 {
            let xb = &x.data()[b * 3 * 64..(b + 1) * 3 * 64];
            kernels::im2col(xb, 3, 8, 8, 3, 1, 1, 8, 8, &mut cols);
            kernels::transpose_into(&cols, ckk, s, &mut cols_t);
            kernels::quant_gemm_into(
                s,
                ckk,
                8,
                &cols_t,
                &qm,
                Some(conv.bias.value.data()),
                None,
                &mut out_t,
                &mut scratch,
            );
            kernels::transpose_into(&out_t, s, 8, &mut expect[b * 8 * s..(b + 1) * 8 * s]);
        }
        for (a, b) in q_out.data().iter().zip(&expect) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Close to the f32 output on unit-scale data.
        for (a, b) in q_out.data().iter().zip(f32_out.data()) {
            assert!((a - b).abs() < 0.3, "quantized {a} too far from f32 {b}");
        }
        // Training forwards ignore quantization, bit for bit.
        let trained = conv.forward(&x, true);
        for (a, b) in trained.data().iter().zip(f32_out.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn quantized_pointwise_conv_runs_without_im2col() {
        let mut rng = SeededRng::new(0x0A12);
        let mut conv = Conv2d::new(4, 6, 1, 1, 0, &mut rng);
        let x = Tensor::randn(&[1, 4, 5, 5], &mut rng);
        let f32_out = conv.forward(&x, false);
        conv.quantize_weights();
        let q_out = conv.forward(&x, false);
        assert_eq!(q_out.shape(), f32_out.shape());
        for (a, b) in q_out.data().iter().zip(f32_out.data()) {
            assert!((a - b).abs() < 0.3);
        }
    }

    #[test]
    fn conv_calibration_freezes_input_scale() {
        let mut rng = SeededRng::new(0x0A13);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 6, 6], &mut rng);
        conv.quantize_weights();
        conv.begin_calibration();
        let _ = conv.forward(&x, false);
        conv.end_calibration();
        let absmax = x.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert_eq!(
            conv.quant.as_ref().unwrap().act_scale,
            Some(q8_block_scale(absmax))
        );
    }

    #[test]
    fn depthwise_has_no_quantized_tier() {
        let mut rng = SeededRng::new(0x0A14);
        let mut dw = DepthwiseConv2d::new(4, 3, 1, 1, &mut rng);
        assert!(dw.quantize_weights().is_empty());
        assert!(!dw.is_quantized());
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_rejects_wrong_channels() {
        let mut rng = SeededRng::new(7);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[1, 2, 8, 8]);
        let _ = conv.forward(&x, true);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn eval_forward_does_not_cache_input() {
        // Inference must not pay for the training-only input cache; backward
        // after an eval-mode forward is a caller bug and panics.
        let mut rng = SeededRng::new(8);
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let y = conv.forward(&x, false);
        let _ = conv.backward(&Tensor::ones(y.shape()));
    }
}

#[cfg(test)]
mod equivalence {
    //! Property suite: the GEMM-lowered layers against the retained naive
    //! reference kernels, over seeded random shapes / stride / padding
    //! combinations (the proptest-as-loops idiom used across this crate).
    //!
    //! The forward and weight-gradient checks follow the build's numeric
    //! contract (see [`crate::kernels::tolerance`]): bit equality on the
    //! default build, the accumulation bound under `fast-kernels`. The
    //! magnitude scales come from re-running the naive reference kernels on
    //! the |absolute values| of the inputs — `Σ|terms|` per output element,
    //! exactly the quantity the bound needs. Bias gradients are plain sum
    //! loops with no multiply to fuse, so they stay bit-identical under
    //! both contracts.

    use super::*;
    use crate::kernels::naive;
    use crate::kernels::tolerance::{self, assert_bits_eq};

    fn abs_vec(xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| x.abs()).collect()
    }

    fn as_f64(xs: &[f32]) -> Vec<f64> {
        xs.iter().map(|&x| f64::from(x)).collect()
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// (kernel, stride, padding) combinations exercised by every suite. The
    /// 7x7/padding-2 entry makes the kernel span the whole padded width of
    /// the smallest test images, where some taps have an empty valid column
    /// range (im2col underflow regression).
    const GEOMETRIES: [(usize, usize, usize); 6] = [
        (1, 1, 0),
        (3, 1, 1),
        (3, 2, 1),
        (2, 2, 0),
        (3, 1, 0),
        (7, 1, 2),
    ];

    #[test]
    fn conv_forward_matches_naive_under_build_contract() {
        let mut rng = SeededRng::new(0xC0DE);
        for &(k, stride, padding) in &GEOMETRIES {
            // The (1, 8, 8, 16) shape pushes the lowered GEMM past the
            // small-problem threshold onto the blocked (and, under
            // `fast-kernels`, fused) path.
            for &(n, c, oc, hw) in &[
                (1usize, 1usize, 1usize, 6usize),
                (2, 3, 5, 8),
                (3, 4, 2, 7),
                (1, 8, 8, 16),
            ] {
                let mut conv = Conv2d::new(c, oc, k, stride, padding, &mut rng);
                let x = Tensor::randn(&[n, c, hw, hw], &mut rng);
                // Give the bias nonzero values so seeding order matters.
                conv.bias.value = Tensor::randn(&[oc], &mut rng);
                let y = conv.forward(&x, false);
                let expect = naive::conv2d_forward_naive(
                    x.data(),
                    n,
                    c,
                    hw,
                    hw,
                    conv.weight.value.data(),
                    conv.bias.value.data(),
                    oc,
                    k,
                    stride,
                    padding,
                );
                // Σ|terms| per output element: the naive kernel on |x|, |w|
                // (computed lazily — only the fast-kernels tolerance branch
                // needs it).
                tolerance::assert_matches_reference(
                    y.data(),
                    &expect,
                    || {
                        as_f64(&naive::conv2d_forward_naive(
                            &abs_vec(x.data()),
                            n,
                            c,
                            hw,
                            hw,
                            &abs_vec(conv.weight.value.data()),
                            &abs_vec(conv.bias.value.data()),
                            oc,
                            k,
                            stride,
                            padding,
                        ))
                    },
                    c * k * k + 1,
                    &format!("conv fwd k={k} s={stride} p={padding} n={n} c={c} oc={oc}"),
                );
            }
        }
    }

    #[test]
    fn conv_backward_matches_naive() {
        // Weight and bias gradients accumulate in the same order as the naive
        // loop and must be bit-identical; the input gradient reassociates the
        // output-channel sum (GEMM before scatter) and is compared with a
        // tight numeric tolerance instead.
        let mut rng = SeededRng::new(0xBACC);
        for &(k, stride, padding) in &GEOMETRIES {
            let (n, c, oc, hw) = (2usize, 3usize, 4usize, 7usize);
            let mut conv = Conv2d::new(c, oc, k, stride, padding, &mut rng);
            let x = Tensor::randn(&[n, c, hw, hw], &mut rng);
            let y = conv.forward(&x, true);
            let go = Tensor::randn(y.shape(), &mut rng);
            let gi = conv.backward(&go);
            let (gi_ref, gw_ref, gb_ref) = naive::conv2d_backward_naive(
                x.data(),
                n,
                c,
                hw,
                hw,
                conv.weight.value.data(),
                go.data(),
                oc,
                k,
                stride,
                padding,
            );
            let tag = format!("conv bwd k={k} s={stride} p={padding}");
            let (oh, ow) = (y.shape()[2], y.shape()[3]);
            // Σ|terms| for the weight gradient: the naive backward on |x|,
            // |w|, |go| (lazy; the |w| only feeds gi_abs, which we discard).
            tolerance::assert_matches_reference(
                conv.weight.grad.data(),
                &gw_ref,
                || {
                    let (_, gw_abs, _) = naive::conv2d_backward_naive(
                        &abs_vec(x.data()),
                        n,
                        c,
                        hw,
                        hw,
                        &abs_vec(conv.weight.value.data()),
                        &abs_vec(go.data()),
                        oc,
                        k,
                        stride,
                        padding,
                    );
                    as_f64(&gw_abs)
                },
                n * oh * ow + 1,
                &format!("{tag} gw"),
            );
            assert_bits_eq(conv.bias.grad.data(), &gb_ref, &format!("{tag} gb"));
            assert!(
                max_abs_diff(gi.data(), &gi_ref) < 1e-4,
                "{tag} gi deviates beyond reassociation noise"
            );
        }
    }

    #[test]
    fn depthwise_forward_matches_naive_under_build_contract() {
        let mut rng = SeededRng::new(0xDEE7);
        for &(k, stride, padding) in &GEOMETRIES {
            for &(n, c, hw) in &[(1usize, 1usize, 6usize), (2, 5, 8), (3, 3, 7)] {
                let mut dw = DepthwiseConv2d::new(c, k, stride, padding, &mut rng);
                dw.bias.value = Tensor::randn(&[c], &mut rng);
                let x = Tensor::randn(&[n, c, hw, hw], &mut rng);
                let y = dw.forward(&x, false);
                let expect = naive::depthwise_forward_naive(
                    x.data(),
                    n,
                    c,
                    hw,
                    hw,
                    dw.weight.value.data(),
                    dw.bias.value.data(),
                    k,
                    stride,
                    padding,
                );
                tolerance::assert_matches_reference(
                    y.data(),
                    &expect,
                    || {
                        as_f64(&naive::depthwise_forward_naive(
                            &abs_vec(x.data()),
                            n,
                            c,
                            hw,
                            hw,
                            &abs_vec(dw.weight.value.data()),
                            &abs_vec(dw.bias.value.data()),
                            k,
                            stride,
                            padding,
                        ))
                    },
                    k * k + 1,
                    &format!("dw fwd k={k} s={stride} p={padding} n={n} c={c}"),
                );
            }
        }
    }

    #[test]
    fn depthwise_backward_matches_naive() {
        let mut rng = SeededRng::new(0xDBAC);
        for &(k, stride, padding) in &GEOMETRIES {
            let (n, c, hw) = (2usize, 3usize, 7usize);
            let mut dw = DepthwiseConv2d::new(c, k, stride, padding, &mut rng);
            let x = Tensor::randn(&[n, c, hw, hw], &mut rng);
            let y = dw.forward(&x, true);
            let go = Tensor::randn(y.shape(), &mut rng);
            let gi = dw.backward(&go);
            let (gi_ref, gw_ref, gb_ref) = naive::depthwise_backward_naive(
                x.data(),
                n,
                c,
                hw,
                hw,
                dw.weight.value.data(),
                go.data(),
                k,
                stride,
                padding,
            );
            let tag = format!("dw bwd k={k} s={stride} p={padding}");
            let (oh, ow) = (y.shape()[2], y.shape()[3]);
            tolerance::assert_matches_reference(
                dw.weight.grad.data(),
                &gw_ref,
                || {
                    let (_, gw_abs, _) = naive::depthwise_backward_naive(
                        &abs_vec(x.data()),
                        n,
                        c,
                        hw,
                        hw,
                        &abs_vec(dw.weight.value.data()),
                        &abs_vec(go.data()),
                        k,
                        stride,
                        padding,
                    );
                    as_f64(&gw_abs)
                },
                n * oh * ow + 1,
                &format!("{tag} gw"),
            );
            assert_bits_eq(dw.bias.grad.data(), &gb_ref, &format!("{tag} gb"));
            // col2im orders the scatter by tap rather than by output pixel,
            // so the input gradient is compared numerically.
            assert!(
                max_abs_diff(gi.data(), &gi_ref) < 1e-5,
                "{tag} gi deviates beyond reassociation noise"
            );
        }
    }

    #[test]
    fn kernel_spanning_full_padded_width_matches_naive() {
        // w + 2p == k: the 1x1-output geometry where some im2col taps have an
        // empty valid column range (underflow regression in the stride-1
        // fast path).
        let mut rng = SeededRng::new(0x0F_F5);
        let mut conv = Conv2d::new(2, 3, 7, 1, 2, &mut rng);
        conv.bias.value = Tensor::randn(&[3], &mut rng);
        let x = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 3, 1, 1]);
        let expect = naive::conv2d_forward_naive(
            x.data(),
            2,
            2,
            3,
            3,
            conv.weight.value.data(),
            conv.bias.value.data(),
            3,
            7,
            1,
            2,
        );
        assert_bits_eq(y.data(), &expect, "full-padded-width conv");
        // Backward through the same geometry (col2im side).
        let go = Tensor::randn(y.shape(), &mut rng);
        let gi = conv.backward(&go);
        assert_eq!(gi.shape(), x.shape());
    }

    #[test]
    fn forward_is_identical_across_train_and_eval() {
        // Dropping the input cache in eval mode must not change outputs.
        let mut rng = SeededRng::new(0x7E57);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 6, 6], &mut rng);
        let train = conv.forward(&x, true);
        let eval = conv.forward(&x, false);
        assert_bits_eq(train.data(), eval.data(), "train vs eval forward");
    }
}
